"""LLM geometry and GPU cost models."""

from .kvcache import KvGeometry
from .specs import MODELS, ModelSpec, OPT_13B, OPT_30B, OPT_66B, OPT_175B_4BIT
from .transformer import LayerWork, TransformerCostModel

__all__ = [
    "KvGeometry",
    "LayerWork",
    "MODELS",
    "ModelSpec",
    "OPT_13B",
    "OPT_175B_4BIT",
    "OPT_30B",
    "OPT_66B",
    "TransformerCostModel",
]
