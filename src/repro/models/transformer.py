"""Roofline latency model for transformer execution on the GPU.

Converts :class:`~repro.models.specs.ModelSpec` geometry into the
FLOP and byte counts the :class:`~repro.hw.gpu.GpuEnclave` roofline
consumes. Decode steps are memory-bound (every resident weight byte
is read once per step regardless of batch size); prefill is
compute-bound. This split is what makes FlexGen PCIe-bound and vLLM
compute-bound at low load — the regimes the paper's figures live in.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import ModelSpec

__all__ = ["LayerWork", "TransformerCostModel"]


@dataclass(frozen=True)
class LayerWork:
    """FLOPs and HBM bytes of one kernel-launch batch."""

    flops: float
    bytes_touched: float
    layers: int = 1


class TransformerCostModel:
    """Per-step workload sizing for serving and fine-tuning."""

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec

    # -- inference ---------------------------------------------------------

    def decode_layer(self, batch: int, mean_context: float) -> LayerWork:
        """One layer, one decode step, for a batch of sequences."""
        spec = self.spec
        flops = batch * spec.layer_decode_flops(int(mean_context))
        kv_read = batch * mean_context * spec.kv_bytes_per_token_layer()
        bytes_touched = spec.layer_bytes + kv_read
        return LayerWork(flops, bytes_touched)

    def decode_step(self, batch: int, mean_context: float) -> LayerWork:
        """All layers, one decode step."""
        per_layer = self.decode_layer(batch, mean_context)
        return LayerWork(
            per_layer.flops * self.spec.n_layers,
            per_layer.bytes_touched * self.spec.n_layers,
            layers=self.spec.n_layers,
        )

    def prefill_layer(self, total_prompt_tokens: int) -> LayerWork:
        """One layer ingesting ``total_prompt_tokens`` across the batch."""
        spec = self.spec
        flops = spec.layer_prefill_flops(total_prompt_tokens)
        bytes_touched = spec.layer_bytes + total_prompt_tokens * spec.kv_bytes_per_token_layer()
        return LayerWork(flops, bytes_touched)

    def prefill(self, total_prompt_tokens: int) -> LayerWork:
        per_layer = self.prefill_layer(total_prompt_tokens)
        return LayerWork(
            per_layer.flops * self.spec.n_layers,
            per_layer.bytes_touched * self.spec.n_layers,
            layers=self.spec.n_layers,
        )

    # -- fine-tuning ----------------------------------------------------------

    def finetune_layer_step(self, batch_tokens: int) -> LayerWork:
        """Forward+backward for one layer over a batch of tokens.

        The usual 3× rule: backward costs about twice the forward
        GEMMs. LoRA adds a few percent; ignored.
        """
        forward = self.spec.layer_prefill_flops(batch_tokens)
        bytes_touched = 3 * self.spec.layer_bytes
        return LayerWork(3.0 * forward, bytes_touched)
