"""OPT model family geometry.

All byte and FLOP accounting for the experiments derives from these
specs. Sizes match the paper's statements: OPT-66B needs ≈132 GB of
fp16 weights ("exceeding the 80GB of H100"), OPT-30B ≈60 GB (75 % of
GPU memory), OPT-13B ≈26 GB (32.5 %), and OPT-175B is evaluated
4-bit-quantized.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelSpec", "OPT_13B", "OPT_30B", "OPT_66B", "OPT_175B_4BIT", "MODELS"]


@dataclass(frozen=True)
class ModelSpec:
    """Transformer geometry plus derived sizes."""

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    #: Bytes per weight scalar (2 = fp16, 0.5 = 4-bit quantized).
    dtype_bytes: float = 2.0
    #: Bytes per KV-cache scalar (KV usually stays fp16 even when
    #: weights are quantized).
    kv_dtype_bytes: float = 2.0
    vocab: int = 50272
    max_seq_len: int = 2048

    # -- derived sizes -------------------------------------------------------

    @property
    def layer_params(self) -> int:
        """Parameters in one transformer layer ≈ 12·h² (4·h² attention
        + 8·h² feed-forward), biases and norms ignored."""
        return 12 * self.hidden * self.hidden

    @property
    def layer_bytes(self) -> int:
        return int(self.layer_params * self.dtype_bytes)

    @property
    def embedding_bytes(self) -> int:
        """Token + positional embeddings (kept fp16 in all variants)."""
        return int((self.vocab + self.max_seq_len) * self.hidden * 2)

    @property
    def total_params(self) -> int:
        return self.n_layers * self.layer_params + (self.vocab + self.max_seq_len) * self.hidden

    @property
    def total_bytes(self) -> int:
        return self.n_layers * self.layer_bytes + self.embedding_bytes

    def kv_bytes_per_token_layer(self) -> int:
        """K and V vectors of one token in one layer."""
        return int(2 * self.hidden * self.kv_dtype_bytes)

    def kv_bytes_per_token(self) -> int:
        """K and V vectors of one token across all layers."""
        return self.n_layers * self.kv_bytes_per_token_layer()

    # -- per-layer FLOPs ---------------------------------------------------------

    def layer_decode_flops(self, context_len: int) -> float:
        """FLOPs for one layer processing ONE new token.

        2 FLOPs per parameter for the GEMMs plus the attention over
        the existing context (4·h per cached token for QK^T and AV).
        """
        return 2.0 * self.layer_params + 4.0 * self.hidden * context_len

    def layer_prefill_flops(self, prompt_len: int) -> float:
        """FLOPs for one layer ingesting a ``prompt_len``-token prompt."""
        gemm = 2.0 * self.layer_params * prompt_len
        attention = 2.0 * self.hidden * prompt_len * prompt_len
        return gemm + attention


OPT_13B = ModelSpec("opt-13b", n_layers=40, hidden=5120, n_heads=40)
OPT_30B = ModelSpec("opt-30b", n_layers=48, hidden=7168, n_heads=56)
OPT_66B = ModelSpec("opt-66b", n_layers=64, hidden=9216, n_heads=72)
OPT_175B_4BIT = ModelSpec(
    "opt-175b-4bit", n_layers=96, hidden=12288, n_heads=96, dtype_bytes=0.5
)

MODELS = {spec.name: spec for spec in (OPT_13B, OPT_30B, OPT_66B, OPT_175B_4BIT)}
