"""Paged KV-cache accounting (vLLM-style block geometry).

vLLM partitions each sequence's KV cache into fixed-size blocks of
``block_size`` tokens. :class:`KvGeometry` converts between tokens,
blocks and bytes for a given model, and computes how many blocks fit
in the GPU memory left over after the weights — the quantity that
determines when swapping starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import ModelSpec

__all__ = ["KvGeometry"]


@dataclass(frozen=True)
class KvGeometry:
    """Block geometry of the paged KV cache for one model."""

    spec: ModelSpec
    block_size: int = 16  # tokens per block (vLLM default)

    @property
    def block_bytes(self) -> int:
        """Bytes of one block across ALL layers (the swap unit used by
        request-wise swapping is a whole sequence = many such blocks)."""
        return self.block_size * self.spec.kv_bytes_per_token()

    def blocks_for_tokens(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` tokens (ceiling)."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return -(-tokens // self.block_size)

    def bytes_for_tokens(self, tokens: int) -> int:
        return self.blocks_for_tokens(tokens) * self.block_bytes

    def gpu_block_budget(self, gpu_memory_bytes: int, reserved_bytes: int = 0) -> int:
        """How many KV blocks fit beside the weights (and a reserve for
        activations/workspace) in GPU memory."""
        available = gpu_memory_bytes - self.spec.total_bytes - reserved_bytes
        if available <= 0:
            return 0
        return int(available // self.block_bytes)
