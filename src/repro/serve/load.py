"""Trace-driven open-loop load generation for the serving front end.

Builds on the Poisson/lognormal machinery in
:mod:`repro.workloads.traces`: a :class:`LoadSpec` names a length
distribution (ShareGPT/Alpaca serve presets or any :class:`TraceSpec`)
and an offered rate, and :func:`generate_load` samples the full
arrival sequence up front — open loop, so offered load never adapts
to the service's backlog (the property that makes latency-vs-load
frontiers honest).

:func:`production_rate` converts a concurrent-user population with a
think time into the equivalent open-loop request rate, the scaling
rule used to pick the sweep points in ``bench/serve.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import SeededRng, default_seed
from ..workloads import SHAREGPT_SERVE, TraceSpec, poisson_trace
from .api import TIERS, CompletionRequest

__all__ = ["LoadSpec", "generate_load", "production_rate"]

#: Default traffic mix: mostly interactive chat, some standard API
#: calls, a batch tail.
DEFAULT_TIER_MIX: Tuple[Tuple[str, float], ...] = (
    ("interactive", 0.5),
    ("standard", 0.3),
    ("batch", 0.2),
)


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop workload: distribution × rate × duration."""

    trace: TraceSpec = SHAREGPT_SERVE
    rate: float = 8.0  # offered requests per simulated second
    duration: float = 10.0  # arrival window (simulated seconds)
    tenants: int = 4
    tier_mix: Tuple[Tuple[str, float], ...] = DEFAULT_TIER_MIX
    seed: int = 42

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        total = sum(w for _, w in self.tier_mix)
        if not self.tier_mix or abs(total - 1.0) > 1e-9:
            raise ValueError("tier_mix weights must sum to 1")
        for tier, _ in self.tier_mix:
            if tier not in TIERS:
                raise ValueError(f"unknown tier {tier!r}")


def production_rate(concurrent_users: int, think_time_s: float) -> float:
    """Open-loop rate equivalent to a closed user population.

    ``users / think_time`` is the standard conversion: each simulated
    user issues one request per think time, so 800 users at 100 s
    think time offer 8 req/s.
    """
    if concurrent_users < 1 or think_time_s <= 0:
        raise ValueError("need >= 1 user and a positive think time")
    return concurrent_users / think_time_s


def _pick_tier(mix: Tuple[Tuple[str, float], ...], u: float) -> str:
    acc = 0.0
    for tier, weight in mix:
        acc += weight
        if u < acc:
            return tier
    return mix[-1][0]


def generate_load(
    spec: LoadSpec, seed: Optional[int] = None
) -> List[CompletionRequest]:
    """Sample the full arrival sequence of one load spec.

    Deterministic under (spec, seed); the CLI ``--seed`` override wins
    over both the argument and the spec's own seed, matching every
    other workload generator.
    """
    effective = default_seed(spec.seed if seed is None else seed)
    rng = SeededRng(effective)
    trace = poisson_trace(spec.trace, spec.rate, spec.duration, rng)
    rng_tenant = rng.fork("serve.tenants")
    rng_tier = rng.fork("serve.tiers")
    out: List[CompletionRequest] = []
    for request in trace:
        out.append(CompletionRequest(
            request_id=request.request_id,
            tenant=f"tenant-{rng_tenant.randint(0, spec.tenants - 1)}",
            prompt_tokens=request.prompt_len,
            max_tokens=request.output_len,
            arrival_time=request.arrival_time,
            tier=_pick_tier(spec.tier_mix, rng_tier.random()),
        ))
    return out
