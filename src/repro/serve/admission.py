"""SLO-aware admission control in front of the gateway.

The gateway's own admission queue is a bounded FIFO — correct for a
single-tenant fleet, but a production front end wants more: latency
*targets* (TTFT/TPOT), priority tiers, and deadline-aware shedding so
a request that can no longer meet its target is dropped before it
wastes GPU time. This module supplies that layer as a pluggable
policy the :class:`~repro.serve.frontend.ServeFrontend` consults.

Admission state machine (per request)::

    arrive ── offer ──► ADMITTED ──► gateway (queue/dispatch/...)
                │
                ├─────► HELD ───── release ──► ADMITTED
                │         │
                │         ├── deadline passed ──► SHED("deadline")
                │         └── displaced by a better tier when the
                │             hold queue is full ──► SHED("overload")
                └─────► SHED("overload")   (offered into a full queue
                                            at the worst tier)

:class:`FifoAdmission` admits everything immediately (the gateway's
capacity/timeout shedding still applies), reproducing the plain
cluster behaviour. :class:`SloAdmission` caps the number of requests
in flight at the fleet's outstanding budget and holds the rest in a
priority queue ordered (tier, arrival), so interactive traffic
overtakes batch at the front end — the reordering the gateway's FIFO
cannot do.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .api import TIERS, CompletionRequest

__all__ = ["AdmissionPolicy", "FifoAdmission", "SloAdmission", "SloSpec",
           "make_admission"]

#: Per-tier SLO slack multipliers: interactive requests get the raw
#: target, batch traffic four times it.
_TIER_SLACK = {"interactive": 1.0, "standard": 2.0, "batch": 4.0}


@dataclass(frozen=True)
class SloSpec:
    """Latency targets the service advertises.

    ``ttft_target_s`` / ``tpot_target_s`` are the interactive-tier
    targets; other tiers scale them by the slack table. A held request
    older than ``deadline_factor`` × its TTFT budget can no longer
    meet its target even with an idle fleet, so it is shed.
    """

    ttft_target_s: float = 0.5
    tpot_target_s: float = 0.05
    deadline_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.ttft_target_s <= 0 or self.tpot_target_s <= 0:
            raise ValueError("targets must be positive")
        if self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")

    def ttft_budget(self, tier: str) -> float:
        return self.ttft_target_s * _TIER_SLACK[tier]

    def tpot_budget(self, tier: str) -> float:
        return self.tpot_target_s * _TIER_SLACK[tier]

    def deadline(self, tier: str) -> float:
        """Max hold time before a request is shed as hopeless."""
        return self.deadline_factor * self.ttft_budget(tier)

    def attained(self, tier: str, ttft: float, tpot: float) -> bool:
        """Did one completed request meet its tier's targets?

        ``tpot`` may be nan (single-token completion); only the TTFT
        target applies then.
        """
        if not ttft <= self.ttft_budget(tier):
            return False
        return not tpot > self.tpot_budget(tier)


class AdmissionPolicy(ABC):
    """Decides, per arrival, whether to admit, hold or shed."""

    name = "abstract"

    @abstractmethod
    def offer(self, request: CompletionRequest, now: float) -> str:
        """One arrival: returns ``"admit"``, ``"hold"`` or
        ``"shed:<reason>"``. A held request stays inside the policy
        until :meth:`release` returns it (or :meth:`expire` sheds it).
        """

    def release(self, now: float) -> List[CompletionRequest]:
        """Held requests to admit now (called after any completion)."""
        return []

    def expire(self, now: float) -> List[Tuple[CompletionRequest, str]]:
        """Held requests to shed now, with reasons."""
        return []

    def on_done(self, request: CompletionRequest) -> None:
        """An admitted request left the system (completed or shed)."""

    @property
    def held_count(self) -> int:
        return 0


class FifoAdmission(AdmissionPolicy):
    """Admit everything; the gateway's bounded FIFO does the shedding."""

    name = "fifo"

    def offer(self, request: CompletionRequest, now: float) -> str:
        return "admit"


class SloAdmission(AdmissionPolicy):
    """Priority hold queue + deadline shedding over a fleet budget.

    ``budget`` is the number of requests allowed in flight at the
    gateway (fleet outstanding capacity: replicas × max_outstanding);
    holding the excess here instead of in the gateway's FIFO is what
    lets tiers reorder and deadlines fire before dispatch.
    """

    name = "slo"

    def __init__(
        self,
        slo: SloSpec,
        budget: int,
        hold_capacity: int = 64,
    ) -> None:
        if budget < 1 or hold_capacity < 1:
            raise ValueError("budget and hold_capacity must be >= 1")
        self.slo = slo
        self.budget = budget
        self.hold_capacity = hold_capacity
        self.inflight = 0
        #: (priority, arrival, rid) heap; lazy deletion via _dropped.
        self._held: List[Tuple[int, float, int, CompletionRequest]] = []
        self._dropped: Dict[int, bool] = {}
        #: Held entries displaced by a better-tier newcomer; collected
        #: (and shed) by the next :meth:`expire` sweep.
        self._displaced: List[CompletionRequest] = []

    # -- heap helpers ---------------------------------------------------

    def _push(self, request: CompletionRequest) -> None:
        heapq.heappush(self._held, (
            request.priority, request.arrival_time, request.request_id, request,
        ))

    def _compact(self) -> None:
        while self._held and self._held[0][2] in self._dropped:
            self._dropped.pop(heapq.heappop(self._held)[2])

    @property
    def held_count(self) -> int:
        return len(self._held) - len(self._dropped)

    def _worst(self) -> Optional[Tuple[int, float, int, CompletionRequest]]:
        """The lowest-priority (then youngest) live held entry."""
        live = [e for e in self._held if e[2] not in self._dropped]
        return max(live, key=lambda e: (e[0], e[1], e[2])) if live else None

    # -- policy surface -------------------------------------------------

    def offer(self, request: CompletionRequest, now: float) -> str:
        if self.inflight < self.budget and self.held_count == 0:
            self.inflight += 1
            return "admit"
        if self.held_count >= self.hold_capacity:
            worst = self._worst()
            if worst is None or (request.priority, request.arrival_time) >= (
                worst[0], worst[1]
            ):
                # The newcomer is no better than the worst held entry.
                return "shed:overload"
            # Displace the worst held request in the newcomer's favour.
            self._dropped[worst[2]] = True
            self._push(request)
            self._displaced.append(worst[3])
            return "hold"
        self._push(request)
        return "hold"

    def release(self, now: float) -> List[CompletionRequest]:
        out: List[CompletionRequest] = []
        while self.inflight < self.budget:
            self._compact()
            if not self._held:
                break
            entry = heapq.heappop(self._held)
            self.inflight += 1
            out.append(entry[3])
        return out

    def expire(self, now: float) -> List[Tuple[CompletionRequest, str]]:
        out: List[Tuple[CompletionRequest, str]] = []
        for displaced in self._displaced:
            out.append((displaced, "overload"))
        self._displaced = []
        for entry in list(self._held):
            priority, arrival, rid, request = entry
            if rid in self._dropped:
                continue
            if now - arrival > self.slo.deadline(request.tier):
                self._dropped[rid] = True
                out.append((request, "deadline"))
        self._compact()
        return out

    def on_done(self, request: CompletionRequest) -> None:
        self.inflight = max(0, self.inflight - 1)


def make_admission(
    name: str, slo: SloSpec, budget: int, hold_capacity: int = 64
) -> AdmissionPolicy:
    """Resolve one admission policy by name (``fifo`` / ``slo``)."""
    if name == "fifo":
        return FifoAdmission()
    if name == "slo":
        return SloAdmission(slo, budget=budget, hold_capacity=hold_capacity)
    raise ValueError(f"unknown admission policy {name!r}")
