"""Online serving front end over the confidential cluster.

The last layer of the stack: an OpenAI-style request/response surface
(:mod:`~repro.serve.api`), trace-driven open-loop load generation
(:mod:`~repro.serve.load`), SLO-aware admission control
(:mod:`~repro.serve.admission`), and the :class:`ServeFrontend` that
wires them onto :class:`repro.cluster.Gateway` with per-token
streaming telemetry. :mod:`~repro.serve.pipeline` generalizes the
surface over the offline engines.
"""

from .admission import (
    AdmissionPolicy,
    FifoAdmission,
    SloAdmission,
    SloSpec,
    make_admission,
)
from .api import (
    TIERS,
    CompletionRequest,
    CompletionResponse,
    StreamChunk,
    Usage,
)
from .frontend import ServeFrontend, ServeResult, run_serve
from .load import DEFAULT_TIER_MIX, LoadSpec, generate_load, production_rate
from .pipeline import (
    ClusterPipeline,
    DisaggPipeline,
    FlexGenPipeline,
    PeftPipeline,
    ServingPipeline,
    VllmPipeline,
    make_pipeline,
)

__all__ = [
    "TIERS",
    "DEFAULT_TIER_MIX",
    "AdmissionPolicy",
    "ClusterPipeline",
    "DisaggPipeline",
    "CompletionRequest",
    "CompletionResponse",
    "FifoAdmission",
    "FlexGenPipeline",
    "LoadSpec",
    "PeftPipeline",
    "ServeFrontend",
    "ServeResult",
    "ServingPipeline",
    "SloAdmission",
    "SloSpec",
    "StreamChunk",
    "Usage",
    "VllmPipeline",
    "generate_load",
    "make_admission",
    "make_pipeline",
    "production_rate",
    "run_serve",
]
