"""Pluggable serving pipelines behind one front-end interface.

The front end does not care *which* engine answers a workload — the
online confidential cluster, the offline vLLM substrate, FlexGen
batch inference or PEFT fine-tuning are all "pipelines" with the same
surface: an ``id``, a ``capabilities`` table, and ``serve(load)``
returning a metrics dict. Only pipelines with
``capabilities["streaming"]`` also implement :meth:`stream`, which
yields per-token :class:`~repro.serve.api.StreamChunk` events.

The adapters map one :class:`~repro.serve.load.LoadSpec` onto each
engine's native knobs (rate×duration for vLLM, request count for
FlexGen, step count for PEFT) so capability-comparison tables can
sweep every substrate from a single workload description.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, Optional

from .admission import SloSpec
from .api import StreamChunk
from .load import LoadSpec

__all__ = [
    "ServingPipeline",
    "ClusterPipeline",
    "DisaggPipeline",
    "VllmPipeline",
    "FlexGenPipeline",
    "PeftPipeline",
    "make_pipeline",
]


class ServingPipeline(ABC):
    """Abstract base for serving pipelines."""

    id: str = "abstract"
    capabilities: Dict[str, bool] = {"streaming": False}

    @abstractmethod
    def serve(self, load: LoadSpec) -> Dict[str, Any]:
        """Run one workload to completion; returns a metrics dict."""

    def stream(self, load: LoadSpec) -> Iterator[StreamChunk]:
        """Stream per-token events. Default: raise; override if supported."""
        raise NotImplementedError(
            f"pipeline {self.id!r} does not support streaming "
            f"(capabilities={self.capabilities})"
        )


class ClusterPipeline(ServingPipeline):
    """The online confidential cluster behind SLO-aware admission.

    The only streaming-capable pipeline: per-token chunks come off the
    gateway's listener hooks via :class:`~repro.serve.frontend.ServeFrontend`.
    """

    id = "cluster"
    capabilities = {"streaming": True, "admission": True, "failover": True}

    def __init__(
        self,
        config=None,
        slo: Optional[SloSpec] = None,
        admission: str = "slo",
    ) -> None:
        from ..core import ClusterConfig

        self.config = config if config is not None else ClusterConfig()
        self.slo = slo
        self.admission = admission
        self.last_result = None

    def serve(self, load: LoadSpec) -> Dict[str, Any]:
        from .frontend import run_serve

        self.last_result = run_serve(
            self.config, load, slo=self.slo, admission=self.admission
        )
        return self.last_result.as_dict()

    def stream(self, load: LoadSpec) -> Iterator[StreamChunk]:
        self.serve(load)
        for response in self.last_result.responses:
            for chunk in response.chunks:
                yield chunk


class DisaggPipeline(ServingPipeline):
    """Disaggregated prefill/decode serving with encrypted KV migration.

    Maps a load spec straight onto :func:`repro.disagg.run_disagg`:
    rate × duration drive the Poisson workload, the trace spec rides
    through unchanged, and the returned metrics surface the migration
    plane (chunks, hit rate, per-chunk wire seconds) alongside the
    TTFT/goodput numbers the capability tables compare.
    """

    id = "disagg"
    capabilities = {"streaming": False, "migration": True, "failover": True}

    def __init__(self, config=None) -> None:
        from ..core import DisaggConfig

        self.config = config if config is not None else DisaggConfig()
        self.last_result = None

    def serve(self, load: LoadSpec) -> Dict[str, Any]:
        from ..disagg import run_disagg

        self.last_result = run_disagg(
            self.config, rate=load.rate, duration=load.duration,
            trace=load.trace,
        )
        result = self.last_result
        return {
            "pipeline": self.id,
            "system": self.config.system,
            "completed": result.completed,
            "goodput_rps": result.goodput,
            "p50_ttft_s": result.p50_ttft,
            "p99_ttft_s": result.p99_ttft,
            "migration_chunks": result.migration_chunks,
            "migration_hit_rate": result.migration_hit_rate,
            "migration_s_per_chunk": result.migration_s_per_chunk,
        }


class VllmPipeline(ServingPipeline):
    """Offline adapter over the vLLM-like continuous-batching engine."""

    id = "vllm"
    capabilities = {"streaming": False, "batching": True}

    def __init__(self, system=None, spec=None) -> None:
        from ..bench.systems import pipellm
        from ..models import OPT_13B

        self.system = system if system is not None else pipellm()
        self.spec = spec if spec is not None else OPT_13B

    def serve(self, load: LoadSpec) -> Dict[str, Any]:
        from ..bench.experiments import run_vllm

        result, _ = run_vllm(
            self.system, self.spec, load.trace, load.rate,
            parallel_n=1, duration=load.duration, seed=load.seed,
        )
        return {
            "pipeline": self.id,
            "system": self.system.name,
            "finished": result.finished,
            "mean_normalized_latency_s": result.mean_normalized_latency,
            "swap_outs": result.swap_out_count,
        }


class FlexGenPipeline(ServingPipeline):
    """Offline adapter over FlexGen-style batch inference.

    A load spec's rate × duration becomes the batch's request count;
    the trace's mean lengths pick the synthetic shape.
    """

    id = "flexgen"
    capabilities = {"streaming": False, "offload": True}

    def __init__(self, system=None, spec=None, batch_size: int = 16) -> None:
        from ..bench.systems import pipellm
        from ..models import OPT_13B

        self.system = system if system is not None else pipellm()
        self.spec = spec if spec is not None else OPT_13B
        self.batch_size = batch_size

    def serve(self, load: LoadSpec) -> Dict[str, Any]:
        from ..bench.experiments import run_flexgen
        from ..workloads import SyntheticShape

        n_requests = max(self.batch_size, int(load.rate * load.duration))
        shape = SyntheticShape(
            int(load.trace.mean_prompt), max(4, int(load.trace.mean_output))
        )
        result, _ = run_flexgen(
            self.system, self.spec, shape, self.batch_size, n_requests
        )
        return {
            "pipeline": self.id,
            "system": self.system.name,
            "completed": n_requests,
            "throughput_tps": result.throughput,
        }


class PeftPipeline(ServingPipeline):
    """Offline adapter over PEFT fine-tuning (a training "pipeline").

    Serving a load here means running one optimization step per ~32
    requests of offered work — enough to compare substrate throughput
    under one workload description, which is all the capability table
    needs.
    """

    id = "peft"
    capabilities = {"streaming": False, "training": True}

    def __init__(self, system=None, spec=None, batch_size: int = 8,
                 resident_layers: int = 20) -> None:
        from ..bench.systems import pipellm
        from ..models import OPT_13B

        self.system = system if system is not None else pipellm()
        self.spec = spec if spec is not None else OPT_13B
        self.batch_size = batch_size
        self.resident_layers = resident_layers

    def serve(self, load: LoadSpec) -> Dict[str, Any]:
        from ..bench.experiments import run_peft

        steps = max(1, int(load.rate * load.duration) // 32)
        result, _ = run_peft(
            self.system, self.spec, self.batch_size,
            self.resident_layers, steps, seed=load.seed,
        )
        return {
            "pipeline": self.id,
            "system": self.system.name,
            "steps": steps,
            "step_time_s": result.elapsed / steps,
            "train_tokens_per_s": result.throughput,
        }


def make_pipeline(name: str, **kwargs: Any) -> ServingPipeline:
    """Resolve one pipeline by id."""
    table = {
        "cluster": ClusterPipeline,
        "disagg": DisaggPipeline,
        "vllm": VllmPipeline,
        "flexgen": FlexGenPipeline,
        "peft": PeftPipeline,
    }
    if name not in table:
        raise ValueError(f"unknown pipeline {name!r}; choose from {sorted(table)}")
    return table[name](**kwargs)
