"""OpenAI-style completion request/response model.

The front end speaks the shape production LLM services expose — a
completion request with a token budget and (optionally) streaming,
answered by either a stream of per-token chunks or one final response
object with usage accounting. Payloads are *token counts*, not text:
the simulation cares about lengths and timing, never content, exactly
like the trace stand-ins in :mod:`repro.workloads.traces`.

All timestamps are **simulated seconds**. ``to_dict`` renders the
wire shape (``cmpl-<id>`` ids, ``choices``, ``usage``) so examples and
tests can assert against the familiar schema.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "TIERS",
    "CompletionRequest",
    "CompletionResponse",
    "StreamChunk",
    "Usage",
]

#: Priority tiers, best first. Admission policies order by tier index.
TIERS = ("interactive", "standard", "batch")


@dataclass(frozen=True)
class CompletionRequest:
    """One inbound completion call.

    ``prompt_tokens`` / ``max_tokens`` stand in for the prompt text
    and the completion budget; ``tenant`` is the API key owner the
    gateway runs the per-tenant encrypted session for.
    """

    request_id: int
    tenant: str
    prompt_tokens: int
    max_tokens: int
    arrival_time: float = 0.0
    tier: str = "standard"
    stream: bool = True
    model: str = "opt-13b"

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; choose from {TIERS}")
        if self.prompt_tokens < 1 or self.max_tokens < 1:
            raise ValueError("prompt_tokens and max_tokens must be >= 1")

    @property
    def priority(self) -> int:
        """Lower is more urgent (index into :data:`TIERS`)."""
        return TIERS.index(self.tier)


@dataclass(frozen=True)
class StreamChunk:
    """One server-sent token event of a streaming completion."""

    request_id: int
    index: int  # 1-based token index within the completion
    time: float  # simulated arrival time at the client

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": f"cmpl-{self.request_id}",
            "object": "text_completion.chunk",
            "created": self.time,
            "choices": [{"index": 0, "token_index": self.index}],
        }


@dataclass(frozen=True)
class Usage:
    """Token accounting of one completion."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def to_dict(self) -> Dict[str, int]:
        return {
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.total_tokens,
        }


@dataclass
class CompletionResponse:
    """Terminal outcome of one completion request.

    ``finish_reason`` is ``"stop"`` for a served completion or
    ``"shed:<reason>"`` when admission control or the gateway dropped
    the request (capacity / timeout / deadline / overload / kv-budget).
    TTFT/TPOT are ``nan`` until the first token arrives.
    """

    request: CompletionRequest
    created: float
    finish_reason: str
    usage: Usage
    first_token_time: float = math.nan
    finish_time: float = math.nan
    #: Dispatch/handshake attempts at the gateway (>1 = failover).
    attempts: int = 0
    chunks: List[StreamChunk] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.finish_reason == "stop"

    @property
    def ttft(self) -> float:
        """Time to first token (simulated seconds, nan if never served)."""
        return self.first_token_time - self.request.arrival_time

    @property
    def tpot(self) -> float:
        """Time per output token after the first (nan if not applicable)."""
        n = self.usage.completion_tokens
        if n <= 1 or math.isnan(self.first_token_time):
            return math.nan
        return (self.finish_time - self.first_token_time) / (n - 1)

    @property
    def latency(self) -> float:
        """End-to-end latency (arrival to finish)."""
        return self.finish_time - self.request.arrival_time

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": f"cmpl-{self.request.request_id}",
            "object": "text_completion",
            "created": self.created,
            "model": self.request.model,
            "choices": [{"index": 0, "finish_reason": self.finish_reason}],
            "usage": self.usage.to_dict(),
            "metrics": {
                "ttft_s": self.ttft,
                "tpot_s": self.tpot,
                "latency_s": self.latency,
                "attempts": self.attempts,
                "tier": self.request.tier,
            },
        }
