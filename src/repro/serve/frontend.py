"""The online-serving front end over the confidential cluster.

:class:`ServeFrontend` is the request/response surface in front of
:class:`repro.cluster.Gateway`: it accepts OpenAI-style
:class:`~repro.serve.api.CompletionRequest` arrivals, runs them
through a pluggable admission policy (:mod:`repro.serve.admission`),
streams per-token progress off the gateway's listener hooks, and
folds every request into a :class:`~repro.serve.api.CompletionResponse`
plus the serving metrics production SLOs are written against:

* **TTFT** — arrival to first streamed token (recorded once per
  request, across failover restarts);
* **TPOT** — mean inter-token time after the first;
* **SLO attainment** — fraction of completions inside their tier's
  TTFT/TPOT budgets — and **goodput**, attained completions per
  second of offered-load window.

Streaming telemetry rides the shared span tracer on per-request
``serve.req-<id>`` lanes: one ``stream`` span brackets each delivery
attempt (closed on completion, shedding *or* failover restart, so a
replica crash never leaks an open span), with closed ``token`` spans
marking every inter-token gap. Typed :class:`ServeEvent`\\ s mirror the
same lifecycle on the event bus.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster import Cluster
from ..cluster.replica import ClusterRequest
from ..sim import mean, percentile
from ..telemetry import ServeEvent, TelemetryHub, active_session
from ..tracing import active_collector
from ..workloads import Request
from .admission import SloSpec, make_admission
from .api import CompletionRequest, CompletionResponse, StreamChunk, Usage
from .load import LoadSpec, generate_load

__all__ = ["ServeFrontend", "ServeResult", "run_serve"]

#: A held request is re-examined this long after its deadline passes
#: (strictly after, so the ``>`` comparison in ``expire`` fires).
_DEADLINE_EPS = 1e-9


@dataclass
class _ServeRecord:
    """Front-end bookkeeping for one in-flight request."""

    request: CompletionRequest
    creq: ClusterRequest
    first_token_time: float = math.nan
    #: Last token's simulated time within the current attempt.
    last_token_time: float = math.nan
    #: Tokens streamed in the current delivery attempt (resets on
    #: failover — the replacement replica regenerates the stream).
    attempt_tokens: int = 0
    stream_open: bool = False
    done: bool = False
    chunks: List[StreamChunk] = field(default_factory=list)
    #: Root causal span of the request's trace (None when no
    #: collector is active); closed exactly once, at completion or
    #: shedding, so the DAG never dangles.
    trace_root: Optional[Any] = None
    #: Open admission-hold span (queueing time before release).
    trace_hold: Optional[Any] = None

    @property
    def lane(self) -> str:
        return f"serve.req-{self.request.request_id}"


@dataclass
class ServeResult:
    """Everything one serving run measured."""

    admission: str
    system: str
    trace: str
    rate: float
    duration: float
    offered: int
    completed: int
    shed: int
    attained: int
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    ttfts: List[float] = field(default_factory=list)
    tpots: List[float] = field(default_factory=list)
    failovers: int = 0
    crashes: int = 0
    swap_outs: int = 0
    auth_failures: int = 0
    responses: List[CompletionResponse] = field(default_factory=list)

    @property
    def attainment(self) -> float:
        """Fraction of completed requests inside their SLO budgets."""
        return self.attained / self.completed if self.completed else 0.0

    @property
    def goodput(self) -> float:
        """SLO-attained completions per second of offered-load window."""
        return self.attained / self.duration if self.duration > 0 else 0.0

    @property
    def p50_ttft(self) -> float:
        return percentile(self.ttfts, 50)

    @property
    def p99_ttft(self) -> float:
        return percentile(self.ttfts, 99)

    @property
    def mean_tpot(self) -> float:
        return mean(self.tpots)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "admission": self.admission,
            "system": self.system,
            "trace": self.trace,
            "rate_rps": self.rate,
            "duration_s": self.duration,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "shed_by_reason": dict(self.shed_by_reason),
            "attained": self.attained,
            "attainment": self.attainment,
            "goodput_rps": self.goodput,
            "p50_ttft_s": self.p50_ttft,
            "p99_ttft_s": self.p99_ttft,
            "mean_tpot_s": self.mean_tpot,
            "failovers": self.failovers,
            "crashes": self.crashes,
            "swap_outs": self.swap_outs,
            "auth_failures": self.auth_failures,
        }


class ServeFrontend:
    """OpenAI-style request surface + admission over one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        slo: Optional[SloSpec] = None,
        admission: str = "slo",
        hold_capacity: Optional[int] = None,
        alerts=None,
    ) -> None:
        self.cluster = cluster
        #: Optional :class:`repro.tracing.AlertEngine`; fed one
        #: pass/fail SLO sample per resolved request (completions
        #: report attainment, sheds always count as misses).
        self.alerts = alerts
        self.gateway = cluster.gateway
        self.sim = cluster.sim
        self.config = cluster.config
        self.slo = slo if slo is not None else SloSpec()
        budget = self.config.replicas * self.config.max_outstanding
        self.admission = make_admission(
            admission, self.slo, budget,
            hold_capacity=hold_capacity or self.config.queue_capacity,
        )
        self.gateway.listener = self

        # The serve lane shares the gateway's always-on MetricSet and
        # the simulator's span tracer, so serve.* counters show up in
        # bind_gateway scrapes and stream spans in Chrome exports.
        self.telemetry = TelemetryHub(
            sim=self.sim, metrics=self.gateway.metrics,
            tracer=self.sim.tracer, label="serve",
        )
        session = active_session()
        if session is not None:
            session.register(self.telemetry)
        if self.alerts is not None and self.alerts.hub is None:
            self.alerts.hub = self.telemetry

        self.records: Dict[int, _ServeRecord] = {}
        self.responses: List[CompletionResponse] = []
        self.offered = 0
        self._pumping = False

    # -- intake ----------------------------------------------------------

    def submit(self, request: CompletionRequest) -> None:
        """One arrival: consult admission, then gateway or shed."""
        self.offered += 1
        rec = _ServeRecord(request=request, creq=self._wrap(request))
        self.records[request.request_id] = rec
        collector = active_collector()
        if collector is not None:
            # Mint the request's trace at admission: the root span is
            # the end-to-end request, and the context rides the
            # ClusterRequest through gateway, replica and runtime.
            rec.trace_root = collector.start_trace(
                f"serve.req-{request.request_id}", "request", "request",
                "serve", self.sim.now,
            )
            rec.creq.trace = rec.trace_root
        self._emit("arrive", rec)
        decision = self.admission.offer(request, self.sim.now)
        if decision == "admit":
            self._emit("admit", rec)
            self.gateway.submit(rec.creq)
        elif decision == "hold":
            self._emit("hold", rec)
            if rec.trace_root is not None:
                rec.trace_hold = collector.begin(
                    rec.trace_root, "hold", "hold", "serve", self.sim.now
                )
            self.sim.process(self._deadline_watch(rec))
            self._pump()
        else:
            self._shed_local(rec, decision.split(":", 1)[1])
        self._record_held()

    def _wrap(self, request: CompletionRequest) -> ClusterRequest:
        payload = hashlib.sha256(
            f"{request.tenant}:cmpl{request.request_id}".encode()
        ).digest()[:16]
        return ClusterRequest(
            rid=request.request_id,
            tenant=request.tenant,
            request=Request(
                request_id=request.request_id,
                arrival_time=request.arrival_time,
                prompt_len=request.prompt_tokens,
                output_len=request.max_tokens,
            ),
            submit_time=self.sim.now,
            payload=payload,
        )

    def _deadline_watch(self, rec: _ServeRecord):
        deadline = rec.request.arrival_time + self.slo.deadline(rec.request.tier)
        delay = deadline - self.sim.now + _DEADLINE_EPS
        if delay > 0:
            yield self.sim.timeout(delay)
        if not rec.done:
            self._pump()

    def _pump(self) -> None:
        """Drain the admission policy: shed expired holds, release the
        rest while the fleet budget has room. Re-entrant calls (a
        release that sheds synchronously at the gateway) fold into the
        outer loop."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while True:
                progressed = False
                for request, reason in self.admission.expire(self.sim.now):
                    rec = self.records[request.request_id]
                    if not rec.done:
                        self._shed_local(rec, reason)
                    progressed = True
                for request in self.admission.release(self.sim.now):
                    rec = self.records[request.request_id]
                    if rec.done:
                        self.admission.on_done(request)
                        continue
                    self._emit("admit", rec)
                    self._trace_close(rec.trace_hold)
                    rec.trace_hold = None
                    self.gateway.submit(rec.creq)
                    progressed = True
                if not progressed:
                    break
        finally:
            self._pumping = False
        self._record_held()

    def _trace_close(self, ctx, status: str = "ok") -> None:
        """Close one causal span at the current simulated time."""
        if ctx is None:
            return
        collector = active_collector()
        if collector is not None:
            collector.end(ctx, self.sim.now, status=status)

    # -- gateway listener hooks ------------------------------------------

    def on_token(self, creq: ClusterRequest, replica, index: int) -> None:
        rec = self.records.get(creq.rid)
        if rec is None or rec.done:
            return
        now = self.sim.now
        tracer = self.telemetry.tracer
        if math.isnan(rec.first_token_time):
            rec.first_token_time = now
            self.gateway.metrics.latency("serve.ttft_s").record(
                max(0.0, now - rec.request.arrival_time)
            )
        if rec.attempt_tokens == 0:
            tracer.begin(rec.lane, "stream", now)
            rec.stream_open = True
            self._emit("first-token", rec, token_index=index)
        else:
            tracer.record(rec.lane, "token", rec.last_token_time, now)
            self._emit("token", rec, token_index=index)
        rec.attempt_tokens = index
        rec.last_token_time = now
        if rec.request.stream:
            rec.chunks.append(StreamChunk(creq.rid, index, now))

    def on_requeue(self, creq: ClusterRequest) -> None:
        """Failover (or kv-budget reroute): the stream restarts."""
        rec = self.records.get(creq.rid)
        if rec is None or rec.done:
            return
        if rec.stream_open:
            self.telemetry.tracer.end(rec.lane, "stream", self.sim.now)
            rec.stream_open = False
            self._emit("restart", rec, detail=f"tokens={rec.attempt_tokens}")
        rec.attempt_tokens = 0
        rec.last_token_time = math.nan

    def on_complete(self, creq: ClusterRequest) -> None:
        rec = self.records.get(creq.rid)
        if rec is None or rec.done:
            return
        now = self.sim.now
        rec.done = True
        if rec.stream_open:
            self.telemetry.tracer.end(rec.lane, "stream", now)
            rec.stream_open = False
        tokens = creq.request.output_len
        ttft = rec.first_token_time - rec.request.arrival_time
        tpot = math.nan
        if tokens > 1 and not math.isnan(rec.first_token_time):
            tpot = (now - rec.first_token_time) / (tokens - 1)
            self.gateway.metrics.latency("serve.tpot_s").record(tpot)
        self.gateway.metrics.counter("serve.completed").add()
        attained = self.slo.attained(rec.request.tier, ttft, tpot)
        if attained:
            self.gateway.metrics.counter("serve.slo_attained").add()
        if self.alerts is not None:
            self.alerts.observe_slo(now, attained)
        self._trace_close(rec.trace_root)
        rec.trace_root = None
        self._emit("complete", rec, detail=f"tokens={tokens}")
        self.responses.append(CompletionResponse(
            request=rec.request,
            created=now,
            finish_reason="stop",
            usage=Usage(rec.request.prompt_tokens, tokens),
            first_token_time=rec.first_token_time,
            finish_time=now,
            attempts=creq.attempts,
            chunks=rec.chunks,
        ))
        self.admission.on_done(rec.request)
        self._pump()

    def on_shed(self, creq: ClusterRequest, reason: str) -> None:
        """Gateway-side shed (capacity / timeout / kv-budget)."""
        rec = self.records.get(creq.rid)
        if rec is None or rec.done:
            return
        self._finish_shed(rec, reason)
        self.admission.on_done(rec.request)
        self._pump()

    # -- shedding --------------------------------------------------------

    def _shed_local(self, rec: _ServeRecord, reason: str) -> None:
        """Admission-layer shed: the request never reached the gateway."""
        rec.creq.state = "shed"
        rec.creq.finish_time = self.sim.now
        self._finish_shed(rec, reason)

    def _finish_shed(self, rec: _ServeRecord, reason: str) -> None:
        now = self.sim.now
        rec.done = True
        if rec.stream_open:
            self.telemetry.tracer.end(rec.lane, "stream", now)
            rec.stream_open = False
        self._trace_close(rec.trace_hold)
        rec.trace_hold = None
        self._trace_close(rec.trace_root, status=f"shed:{reason}")
        rec.trace_root = None
        self.gateway.metrics.counter("serve.shed").add()
        self.gateway.metrics.counter(f"serve.shed.{reason}").add()
        if self.alerts is not None:
            self.alerts.observe_slo(now, False)
        self._emit("shed", rec, detail=reason)
        self.responses.append(CompletionResponse(
            request=rec.request,
            created=now,
            finish_reason=f"shed:{reason}",
            usage=Usage(rec.request.prompt_tokens, rec.attempt_tokens),
            first_token_time=rec.first_token_time,
            finish_time=now,
            attempts=rec.creq.attempts,
            chunks=rec.chunks,
        ))

    # -- accounting ------------------------------------------------------

    def _record_held(self) -> None:
        self.gateway.metrics.timeseries("serve.held").record(
            self.sim.now, float(self.admission.held_count)
        )

    def _emit(
        self, action: str, rec: _ServeRecord, token_index: int = -1,
        detail: str = "",
    ) -> None:
        self.telemetry.emit(ServeEvent(
            time=self.sim.now,
            action=action,
            request_id=rec.request.request_id,
            tenant=rec.request.tenant,
            tier=rec.request.tier,
            token_index=token_index,
            detail=detail,
        ))

    # -- execution -------------------------------------------------------

    def run(
        self,
        requests: List[CompletionRequest],
        duration: float,
        until: Optional[float] = None,
    ) -> ServeResult:
        """Drive ``requests`` through the front end and summarize.

        ``duration`` is the offered-load window goodput normalizes
        over (the load spec's arrival window, not the drain time).
        """
        self.sim.process(self._arrivals(
            sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        ))
        if self.config.fail_at is not None:
            self.sim.process(self._fault())
        self.sim.run(until=until)
        return self.result(duration)

    def _arrivals(self, requests: List[CompletionRequest]):
        for request in requests:
            delay = request.arrival_time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.submit(request)

    def _fault(self):
        config = self.config
        yield self.sim.timeout(config.fail_at)
        self.gateway.fail(config.fail_replica)
        if config.recover_after > 0:
            yield self.sim.timeout(config.recover_after)
            self.gateway.recover(config.fail_replica)

    def result(self, duration: float) -> ServeResult:
        """Summarize the run; every offered request must be resolved."""
        ok = [r for r in self.responses if r.ok]
        shed = [r for r in self.responses if not r.ok]
        if len(self.responses) != self.offered:
            raise AssertionError(
                f"{self.offered} offered but {len(self.responses)} resolved "
                "— requests lost untracked"
            )
        shed_by_reason: Dict[str, int] = {}
        for response in shed:
            reason = response.finish_reason.split(":", 1)[1]
            shed_by_reason[reason] = shed_by_reason.get(reason, 0) + 1
        attained = int(
            self.gateway.metrics.counter("serve.slo_attained").value
        )
        return ServeResult(
            admission=self.admission.name,
            system=self.config.system,
            trace="",
            rate=0.0,
            duration=duration,
            offered=self.offered,
            completed=len(ok),
            shed=len(shed),
            attained=attained,
            shed_by_reason=shed_by_reason,
            ttfts=[r.ttft for r in ok if not math.isnan(r.ttft)],
            tpots=[r.tpot for r in ok if not math.isnan(r.tpot)],
            failovers=self.gateway.failovers,
            crashes=sum(r.crashes for r in self.cluster.replicas),
            swap_outs=sum(r.swap_out_count for r in self.cluster.replicas),
            auth_failures=sum(r.auth_failures for r in self.cluster.replicas),
            responses=list(self.responses),
        )


def run_serve(
    config,
    load: LoadSpec,
    slo: Optional[SloSpec] = None,
    admission: str = "slo",
    spec=None,
    params=None,
    seed: Optional[int] = None,
    until: Optional[float] = None,
    alerts=None,
) -> ServeResult:
    """Build a cluster + front end, generate load, run, summarize."""
    from ..models import OPT_13B

    cluster = Cluster(config, spec=spec if spec is not None else OPT_13B,
                      params=params)
    frontend = ServeFrontend(cluster, slo=slo, admission=admission,
                             alerts=alerts)
    requests = generate_load(load, seed=seed)
    result = frontend.run(requests, duration=load.duration, until=until)
    result.trace = load.trace.name
    result.rate = load.rate
    return result
