"""Deterministic fault injection and the policies that survive it.

The fault plane has three layers:

* :class:`FaultPlan` — *what* to inject (rates, magnitudes, live
  window); a frozen, pure-data description.
* :class:`FaultInjector` — *whether this particular opportunity*
  faults, drawn from per-domain seeded RNG streams so schedules are
  replayable and decoupled across subsystems.
* :mod:`repro.faults.policies` — *how the stack survives*: bounded
  exponential-backoff retries (:class:`RetryPolicy`), per-request
  timeouts, and the :class:`DegradationController` state machine that
  trades speculation for in-order encryption during a storm.

Wire a plan through a whole machine with::

    injector = FaultInjector(FaultPlan.storm(0.3), seed=7)
    machine = Machine(CcMode.ENABLED, faults=injector)

and through a cluster via ``ClusterConfig(fault_plan=...)``.
"""

from .injector import FaultInjector
from .plan import FaultPlan
from .policies import DegradationController, FaultPolicy, PipelineMode, RetryPolicy

__all__ = [
    "DegradationController",
    "FaultInjector",
    "FaultPlan",
    "FaultPolicy",
    "PipelineMode",
    "RetryPolicy",
]
