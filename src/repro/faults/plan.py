"""Declarative fault plans: *what* to inject, at which rates, when.

A :class:`FaultPlan` is a frozen bag of injection knobs consumed by
:class:`repro.faults.injector.FaultInjector`. Plans carry no state and
no randomness — the same plan handed to two injectors forked from the
same seed produces bit-identical fault schedules, which is what makes
fault campaigns replayable and the property tests meaningful.

Rates are per-opportunity probabilities (one draw per transfer, per
engine submission, per delivery attempt, ...) except the cluster crash
knob, which is a Poisson rate in crashes per simulated second. The
``start``/``stop`` window bounds *when* the plan is live in simulated
time, so a campaign can model a transient storm and verify the system
recovers after it passes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["FaultPlan"]

_RATE_FIELDS = (
    "pcie_jitter_rate",
    "pcie_drop_rate",
    "engine_stall_rate",
    "tag_corrupt_rate",
    "iv_desync_rate",
    "mispredict_rate",
    "link_jitter_rate",
    "link_drop_rate",
    "link_mispredict_rate",
    "migration_mispredict_rate",
    "migration_drop_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault-injection configuration."""

    name: str = "plan"
    #: Simulated-time window in which the plan is live. ``stop=None``
    #: keeps it live forever.
    start: float = 0.0
    stop: Optional[float] = None

    # -- PCIe link (hw/pcie.py) -----------------------------------------
    #: Probability one DMA picks up extra latency (link retraining,
    #: congestion on the bounce-buffer path).
    pcie_jitter_rate: float = 0.0
    #: Maximum extra latency per jittered DMA; the draw is uniform in
    #: (0, pcie_jitter_s].
    pcie_jitter_s: float = 20e-6
    #: Probability one DMA transiently fails and must be replayed.
    pcie_drop_rate: float = 0.0

    # -- crypto engine (hw/engine.py) -----------------------------------
    #: Probability one worker submission stalls (scheduling hiccup,
    #: cache-thrashing neighbour) for ``engine_stall_s`` extra.
    engine_stall_rate: float = 0.0
    engine_stall_s: float = 200e-6
    #: Service-time multiplier applied to every submission while the
    #: plan is live (1.0 = nominal speed).
    engine_slowdown: float = 1.0

    # -- secure channel (crypto/session.py, core/runtime.py) ------------
    #: Probability one CPU→GPU delivery is tampered in shared memory
    #: (flipped tag bit → GCM reject at the copy engine).
    tag_corrupt_rate: float = 0.0
    #: Probability one swap request is preceded by a phantom TX-IV
    #: consumption, desynchronizing the implicit counters (§4.4).
    iv_desync_rate: float = 0.0

    # -- validator (core/validator.py) ----------------------------------
    #: Probability a staged hit is forcibly turned into a miss,
    #: modeling a wrong sequence prediction.
    mispredict_rate: float = 0.0

    # -- interconnect (hw/interconnect.py) ------------------------------
    #: Probability one inter-GPU hop leg picks up extra latency
    #: (bounce-buffer congestion, copy-engine contention).
    link_jitter_rate: float = 0.0
    #: Maximum extra latency per jittered hop leg; the draw is uniform
    #: in (0, link_jitter_s].
    link_jitter_s: float = 20e-6
    #: Probability one hop leg transiently fails and must be replayed.
    link_drop_rate: float = 0.0
    #: Probability one speculated link hop is forced into a miss,
    #: modeling a wrong collective-schedule prediction.
    link_mispredict_rate: float = 0.0

    # -- KV migration (repro.disagg) ------------------------------------
    #: Probability one speculated migration chunk is forced into a
    #: miss, modeling a wrong migration-schedule prediction.
    migration_mispredict_rate: float = 0.0
    #: Probability one migration chunk is lost on the wire and must be
    #: retransmitted (same ciphertext — no IV is ever re-consumed).
    migration_drop_rate: float = 0.0

    # -- cluster (repro.cluster) ----------------------------------------
    #: Poisson rate of replica crashes (crashes per simulated second).
    replica_crash_rate: float = 0.0
    #: Crash-to-recovery delay for plan-injected crashes (seconds).
    replica_recover_after: float = 5.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.pcie_jitter_s < 0 or self.engine_stall_s < 0 or self.link_jitter_s < 0:
            raise ValueError("fault durations must be non-negative")
        if self.engine_slowdown < 1.0:
            raise ValueError("engine_slowdown must be >= 1.0")
        if self.replica_crash_rate < 0 or self.replica_recover_after < 0:
            raise ValueError("cluster knobs must be non-negative")
        if self.stop is not None and self.stop < self.start:
            raise ValueError("stop must not precede start")

    def active(self, now: float) -> bool:
        """Is the plan live at simulated time ``now``?"""
        if now < self.start:
            return False
        return self.stop is None or now < self.stop

    @property
    def any_faults(self) -> bool:
        """Does the plan inject anything at all?"""
        return (
            any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)
            or self.engine_slowdown > 1.0
            or self.replica_crash_rate > 0.0
        )

    def windowed(self, start: float, stop: Optional[float]) -> "FaultPlan":
        """The same plan confined to a different live window."""
        return replace(self, start=start, stop=stop)

    @classmethod
    def storm(cls, rate: float, start: float = 0.0,
              stop: Optional[float] = None) -> "FaultPlan":
        """A misprediction/desync storm at ``rate`` (the campaign shape).

        ``rate`` drives forced mispredictions directly; desync and tag
        corruption ride along at a quarter of it so every recovery path
        is exercised without desync dominating.
        """
        return cls(
            name=f"storm-{rate:g}",
            start=start,
            stop=stop,
            mispredict_rate=rate,
            iv_desync_rate=rate / 4.0,
            tag_corrupt_rate=rate / 4.0,
        )

    @classmethod
    def migration_storm(cls, rate: float, start: float = 0.0,
                        stop: Optional[float] = None) -> "FaultPlan":
        """A KV-migration storm at ``rate`` (the disagg campaign shape).

        ``rate`` drives forced migration mispredictions so staged
        chunks keep falling back to the serialized path; wire drops
        ride along at a quarter of it to exercise the retransmission
        path (same ciphertext, no fresh IV).
        """
        return cls(
            name=f"migration-storm-{rate:g}",
            start=start,
            stop=stop,
            migration_mispredict_rate=rate,
            migration_drop_rate=rate / 4.0,
        )

    @classmethod
    def link_storm(cls, rate: float, start: float = 0.0,
                   stop: Optional[float] = None) -> "FaultPlan":
        """An inter-GPU link storm at ``rate`` (the parallel campaign shape).

        ``rate`` drives forced link mispredictions; jitter and drops
        ride along at reduced rates so the interconnect's replay path
        is exercised while misses stay the dominant signal for the
        degradation controller.
        """
        return cls(
            name=f"link-storm-{rate:g}",
            start=start,
            stop=stop,
            link_mispredict_rate=rate,
            link_jitter_rate=rate / 2.0,
            link_drop_rate=rate / 4.0,
        )
