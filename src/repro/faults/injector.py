"""The seeded fault-injection plane.

One :class:`FaultInjector` is threaded through a machine at build time
(``Machine(..., faults=injector)``) and consulted at every injection
point: the PCIe link asks about drops and jitter, the crypto engine
about stalls and slowdowns, the runtime about tag corruption and IV
desync, the validator about forced mispredictions, and the cluster
about replica crashes.

Determinism is the whole design:

* every domain draws from its **own** :meth:`SeededRng.fork` stream,
  so e.g. adding a PCIe transfer never perturbs which swap gets a
  corrupted tag;
* decisions depend only on (seed, draw index, sim time vs the plan's
  window) — never on wall-clock or dict ordering;
* :meth:`child` forks a derived injector (same plan, decoupled
  streams) for each cluster replica.

Every fault that actually fires bumps an always-on ``faults.injected.*``
metric and, when a recording session is live, emits an
:class:`~repro.telemetry.events.InjectionEvent` on the machine's hub.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator
from ..sim.rng import SeededRng, default_seed
from ..telemetry import InjectionEvent, RecoveryEvent, TelemetryHub
from .plan import FaultPlan
from .policies import RetryPolicy

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic, per-domain-seeded fault decisions for one machine."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.plan = plan
        self.seed = default_seed(7) if seed is None else seed
        #: Link-level replay policy (used by :class:`repro.hw.pcie.PcieLink`).
        self.retry = retry or RetryPolicy()
        root = SeededRng(self.seed).fork(f"faults:{plan.name}")
        self._rng: Dict[str, SeededRng] = {
            domain: root.fork(domain)
            for domain in (
                "pcie", "engine", "crypto", "validator", "cluster",
                "interconnect", "migration",
            )
        }
        self.sim: Optional[Simulator] = None
        self.telemetry: Optional[TelemetryHub] = None
        #: fault kind -> times it actually fired.
        self.counts: Dict[str, int] = {}
        #: recovery action -> times a policy carried it out.
        self.recoveries: Dict[str, int] = {}

    def bind(self, sim: Simulator, telemetry: Optional[TelemetryHub] = None) -> "FaultInjector":
        """Attach the simulator clock (and optionally a telemetry hub).

        Machines bind their injector at construction; rebinding on a
        replica's next incarnation just swaps the hub.
        """
        self.sim = sim
        if telemetry is not None:
            self.telemetry = telemetry
        return self

    def child(self, label: str) -> "FaultInjector":
        """Derived injector with decoupled streams (cluster replicas)."""
        return FaultInjector(
            self.plan,
            seed=SeededRng(self.seed).fork(f"child:{label}").randint(0, 2**31 - 1),
            retry=self.retry,
        )

    # -- bookkeeping -----------------------------------------------------

    @property
    def injected_total(self) -> int:
        return sum(self.counts.values())

    @property
    def recovery_total(self) -> int:
        return sum(self.recoveries.values())

    @property
    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _live(self) -> bool:
        return self.plan.active(self._now)

    def _fire(self, domain: str, action: str, detail: str = "") -> None:
        self.counts[action] = self.counts.get(action, 0) + 1
        hub = self.telemetry
        if hub is not None:
            hub.metrics.counter(f"faults.injected.{action}").add()
            if hub.enabled:
                hub.emit(InjectionEvent(self._now, domain, action, detail))

    def note_recovery(self, action: str, attempts: int = 0, detail: str = "",
                      request_id: int = -1) -> None:
        """Record one policy reaction (retry, resync, mode change, ...).

        Injection points call this so every recovery is countable and,
        under a recording session, visible on the trace's recovery lane.
        """
        self.recoveries[action] = self.recoveries.get(action, 0) + 1
        hub = self.telemetry
        if hub is not None:
            hub.metrics.counter(f"faults.recovery.{action}").add()
            if hub.enabled:
                hub.emit(RecoveryEvent(self._now, action, attempts, detail, request_id))

    # -- PCIe link -------------------------------------------------------

    def pcie_drop(self, direction: str) -> bool:
        """Should this DMA transiently fail (link-level replay)?"""
        if not self._live() or self.plan.pcie_drop_rate <= 0.0:
            return False
        if self._rng["pcie"].random() < self.plan.pcie_drop_rate:
            self._fire("pcie", "pcie-drop", direction)
            return True
        return False

    def pcie_jitter(self, direction: str) -> float:
        """Extra latency (seconds) to tack onto this DMA; 0 = clean."""
        if not self._live() or self.plan.pcie_jitter_rate <= 0.0:
            return 0.0
        rng = self._rng["pcie"]
        if rng.random() < self.plan.pcie_jitter_rate:
            jitter = rng.uniform(0.0, self.plan.pcie_jitter_s)
            self._fire("pcie", "pcie-jitter", direction)
            return jitter
        return 0.0

    # -- crypto engine ---------------------------------------------------

    def engine_service_time(self, service: float, pool: str) -> float:
        """Service time after slowdown and a possible stall."""
        if not self._live():
            return service
        service *= self.plan.engine_slowdown
        if (self.plan.engine_stall_rate > 0.0
                and self._rng["engine"].random() < self.plan.engine_stall_rate):
            self._fire("engine", "engine-stall", pool)
            service += self.plan.engine_stall_s
        return service

    # -- secure channel --------------------------------------------------

    def corrupt_tag(self) -> bool:
        """Should this CPU→GPU delivery be tampered in shared memory?"""
        if not self._live() or self.plan.tag_corrupt_rate <= 0.0:
            return False
        if self._rng["crypto"].random() < self.plan.tag_corrupt_rate:
            self._fire("crypto", "tag-corrupt")
            return True
        return False

    def desync_iv(self) -> bool:
        """Should a phantom TX-IV consumption desync the counters?"""
        if not self._live() or self.plan.iv_desync_rate <= 0.0:
            return False
        if self._rng["crypto"].random() < self.plan.iv_desync_rate:
            self._fire("crypto", "iv-desync")
            return True
        return False

    # -- validator -------------------------------------------------------

    def mispredict(self) -> bool:
        """Should this staged hit be forced into a miss?"""
        if not self._live() or self.plan.mispredict_rate <= 0.0:
            return False
        if self._rng["validator"].random() < self.plan.mispredict_rate:
            self._fire("validator", "mispredict")
            return True
        return False

    # -- interconnect ----------------------------------------------------

    def link_drop(self, link: str) -> bool:
        """Should this inter-GPU hop leg transiently fail (replay)?"""
        if not self._live() or self.plan.link_drop_rate <= 0.0:
            return False
        if self._rng["interconnect"].random() < self.plan.link_drop_rate:
            self._fire("interconnect", "link-drop", link)
            return True
        return False

    def link_jitter(self, link: str) -> float:
        """Extra latency (seconds) for this hop leg; 0 = clean."""
        if not self._live() or self.plan.link_jitter_rate <= 0.0:
            return 0.0
        rng = self._rng["interconnect"]
        if rng.random() < self.plan.link_jitter_rate:
            jitter = rng.uniform(0.0, self.plan.link_jitter_s)
            self._fire("interconnect", "link-jitter", link)
            return jitter
        return 0.0

    def link_mispredict(self, link: str) -> bool:
        """Should this speculated link hop be forced into a miss?"""
        if not self._live() or self.plan.link_mispredict_rate <= 0.0:
            return False
        if self._rng["interconnect"].random() < self.plan.link_mispredict_rate:
            self._fire("interconnect", "link-mispredict", link)
            return True
        return False

    # -- KV migration ----------------------------------------------------

    def migration_mispredict(self, link: str) -> bool:
        """Should this speculated migration chunk be forced into a miss?"""
        if not self._live() or self.plan.migration_mispredict_rate <= 0.0:
            return False
        if self._rng["migration"].random() < self.plan.migration_mispredict_rate:
            self._fire("migration", "migration-mispredict", link)
            return True
        return False

    def migration_drop(self, link: str) -> bool:
        """Should this migration chunk be lost on the wire (resend)?"""
        if not self._live() or self.plan.migration_drop_rate <= 0.0:
            return False
        if self._rng["migration"].random() < self.plan.migration_drop_rate:
            self._fire("migration", "migration-drop", link)
            return True
        return False

    # -- cluster ---------------------------------------------------------

    def next_crash_interval(self) -> Optional[float]:
        """Seconds until the next plan-scheduled replica crash."""
        if self.plan.replica_crash_rate <= 0.0:
            return None
        return self._rng["cluster"].exponential(self.plan.replica_crash_rate)

    def pick_replica(self, count: int) -> int:
        """Which replica index the next crash hits."""
        return self._rng["cluster"].randint(0, count - 1)

    def record_crash(self, replica: int) -> None:
        """Count a crash the cluster plane carried out for this plan."""
        self._fire("cluster", "replica-crash", f"r{replica}")

    def __repr__(self) -> str:
        return (f"FaultInjector(plan={self.plan.name!r}, seed={self.seed}, "
                f"injected={self.injected_total})")
