"""Policies that survive injected faults: retry, timeout, degradation.

Three pieces, all deterministic and all observable through telemetry:

* :class:`RetryPolicy` — bounded retries with exponential backoff,
  used by the PCIe link for transient DMA failures and by the runtime
  for authentication-failure recovery (§4.4 re-encryption).
* :class:`FaultPolicy` — the runtime-facing bundle: a retry policy,
  an optional per-request timeout, and the degradation thresholds.
* :class:`DegradationController` — the three-state machine dropping
  the pipeline to non-speculative in-order encryption after a
  misprediction/desync storm and re-enabling speculation once the
  observed miss rate recovers:

  .. code-block:: text

      SPECULATIVE --(miss EMA >= enter)--> DEGRADED
      DEGRADED    --(hold elapsed)------> PROBING
      PROBING     --(EMA <= exit)-------> SPECULATIVE
      PROBING     --(EMA still high)----> DEGRADED   (hold restarts)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["DegradationController", "FaultPolicy", "PipelineMode", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient faults."""

    #: Total tries including the first (so 6 = 5 retries).
    max_attempts: int = 6
    #: Backoff before the first retry (seconds).
    base_delay_s: float = 10e-6
    #: Multiplier applied per subsequent retry.
    multiplier: float = 2.0
    #: Backoff ceiling (seconds).
    max_delay_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))


@dataclass(frozen=True)
class FaultPolicy:
    """How a runtime survives faults; all knobs deterministic."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-request watchdog for swap transfers; ``None`` disables it
    #: (the watchdog timer would otherwise pad idle tails of a run).
    request_timeout_s: Optional[float] = None
    #: Miss-rate EMA at/above which speculation is abandoned.
    enter_miss_rate: float = 0.25
    #: Miss-rate EMA at/below which a probe re-enables speculation.
    exit_miss_rate: float = 0.10
    #: EMA smoothing factor (weight of the newest observation).
    ema_alpha: float = 0.15
    #: Observations required before the controller may degrade —
    #: cold-start misses must not read as a storm.
    min_samples: int = 12
    #: Time spent in-order before probing speculation again (seconds).
    degraded_hold_s: float = 0.05
    #: Probe observations before deciding to restore or re-degrade.
    probe_samples: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if not 0.0 <= self.exit_miss_rate <= self.enter_miss_rate <= 1.0:
            raise ValueError("need 0 <= exit_miss_rate <= enter_miss_rate <= 1")
        if self.min_samples < 1 or self.probe_samples < 1:
            raise ValueError("sample counts must be >= 1")
        if self.degraded_hold_s < 0:
            raise ValueError("degraded_hold_s must be non-negative")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")


class PipelineMode(enum.Enum):
    """Degradation state of the speculative pipeline."""

    #: Full speculative pipelined encryption (the paper's fast path).
    SPECULATIVE = "speculative"
    #: Non-speculative in-order encryption; nothing is staged.
    DEGRADED = "degraded"
    #: Speculation re-enabled on trial while the EMA is re-measured.
    PROBING = "probing"


class DegradationController:
    """Miss-rate EMA driving SPECULATIVE / DEGRADED / PROBING.

    The controller is fed one observation per speculation opportunity
    (``observe(ok)``) and polled lazily on request arrivals
    (``poll()``) — no timer process, so an idle machine schedules no
    events. Mode transitions are appended to :attr:`transitions` as
    ``(time, from, to)`` and fanned out to registered listeners (the
    runtime uses this to relinquish the pipeline and emit telemetry).
    """

    def __init__(self, policy: FaultPolicy, clock: Callable[[], float]) -> None:
        self.policy = policy
        self._clock = clock
        self.mode = PipelineMode.SPECULATIVE
        self.miss_ema = 0.0
        self.samples = 0
        self._probe_seen = 0
        self._degraded_since: Optional[float] = None
        self._degraded_acc = 0.0
        self.transitions: List[Tuple[float, str, str]] = []
        self._listeners: List[Callable[[PipelineMode, PipelineMode], None]] = []

    # -- wiring ----------------------------------------------------------

    def on_transition(self, listener: Callable[[PipelineMode, PipelineMode], None]) -> None:
        self._listeners.append(listener)

    @property
    def speculation_enabled(self) -> bool:
        return self.mode is not PipelineMode.DEGRADED

    @property
    def switches(self) -> int:
        """Mode changes so far (a stable run has 0)."""
        return len(self.transitions)

    def degraded_seconds(self) -> float:
        """Total simulated time spent in DEGRADED so far."""
        extra = 0.0
        if self._degraded_since is not None:
            extra = self._clock() - self._degraded_since
        return self._degraded_acc + extra

    # -- state machine ---------------------------------------------------

    def observe(self, ok: bool) -> None:
        """Feed one speculation outcome (True = served as predicted)."""
        alpha = self.policy.ema_alpha
        self.miss_ema = (1.0 - alpha) * self.miss_ema + (0.0 if ok else alpha)
        self.samples += 1
        if self.mode is PipelineMode.SPECULATIVE:
            if (self.samples >= self.policy.min_samples
                    and self.miss_ema >= self.policy.enter_miss_rate):
                self._enter(PipelineMode.DEGRADED)
        elif self.mode is PipelineMode.PROBING:
            self._probe_seen += 1
            if self.miss_ema >= self.policy.enter_miss_rate:
                self._enter(PipelineMode.DEGRADED)
            elif self._probe_seen >= self.policy.probe_samples:
                if self.miss_ema <= self.policy.exit_miss_rate:
                    self._enter(PipelineMode.SPECULATIVE)
                else:
                    self._enter(PipelineMode.DEGRADED)
        # DEGRADED ignores observations: nothing speculative runs, so
        # there is no signal — recovery is time-driven via poll().

    def poll(self) -> None:
        """Time-driven part: DEGRADED → PROBING once the hold expires."""
        if self.mode is PipelineMode.DEGRADED:
            assert self._degraded_since is not None
            if self._clock() - self._degraded_since >= self.policy.degraded_hold_s:
                self._enter(PipelineMode.PROBING)

    def _enter(self, mode: PipelineMode) -> None:
        if mode is self.mode:
            return
        now = self._clock()
        previous = self.mode
        if previous is PipelineMode.DEGRADED and self._degraded_since is not None:
            self._degraded_acc += now - self._degraded_since
            self._degraded_since = None
        self.mode = mode
        if mode is PipelineMode.DEGRADED:
            self._degraded_since = now
        elif mode is PipelineMode.PROBING:
            # A probe judges fresh evidence, not the storm's residue:
            # restart the EMA at the exit threshold so probe_samples
            # clean hits decisively clear it (and misses re-trip it).
            self.miss_ema = self.policy.exit_miss_rate
            self._probe_seen = 0
        self.transitions.append((now, previous.value, mode.value))
        for listener in self._listeners:
            listener(previous, mode)
