"""PipeLLM reproduction: speculative pipelined encryption for
confidential GPU LLM serving (Tan et al., ASPLOS 2025), on a fully
simulated H100 confidential-computing stack.

Public API tour:

* :mod:`repro.cc` — build a machine (``build_machine``) and run the
  baseline runtimes (``CudaContext`` with CC on/off).
* :mod:`repro.core` — :class:`PipeLLMRuntime`, the paper's
  contribution, plus its predictor / validator / pipeline parts.
* :mod:`repro.serving` — FlexGen-, vLLM- and PEFT-like engines that
  run unmodified on any runtime.
* :mod:`repro.bench` — one function per paper figure.
* :mod:`repro.telemetry` — unified observability: per-machine
  :class:`TelemetryHub` (typed events + lifecycle records),
  :func:`recording` to capture whole experiments, and Chrome-trace /
  JSON / CSV / ASCII exporters (``python -m repro trace``).
* :mod:`repro.crypto`, :mod:`repro.hw`, :mod:`repro.sim` — the
  substrates (real AES-GCM, calibrated hardware models, deterministic
  discrete-event simulator).
"""

from .cc import CcMode, CudaContext, DeviceRuntime, Machine, build_machine
from .core import PipeLLMConfig, PipeLLMRuntime
from .hw import GB, HardwareParams, KB, MB, MemoryChunk, default_params
from .models import MODELS, ModelSpec, OPT_13B, OPT_30B, OPT_66B, OPT_175B_4BIT
from .telemetry import TelemetryHub, chrome_trace, recording

__version__ = "1.0.0"

__all__ = [
    "CcMode",
    "CudaContext",
    "DeviceRuntime",
    "GB",
    "HardwareParams",
    "KB",
    "MB",
    "MODELS",
    "Machine",
    "MemoryChunk",
    "ModelSpec",
    "OPT_13B",
    "OPT_175B_4BIT",
    "OPT_30B",
    "OPT_66B",
    "PipeLLMConfig",
    "PipeLLMRuntime",
    "TelemetryHub",
    "__version__",
    "build_machine",
    "chrome_trace",
    "default_params",
    "recording",
]
