"""Fast-path configuration for the simulation kernel.

The functional layer of this repo — AES-GCM over every confidential
transfer, the discrete-event kernel, DH session bring-up — exists to
make the *semantics* of the paper observable (IV monotonicity, tag
authentication, speculation invalidation). None of it affects any
simulated quantity, so it may be swapped for faster machinery as long
as the observable behaviour is bit-identical. This module is the
single switch for that machinery:

* ``crypto_backend`` — which AES-GCM implementation
  :func:`repro.crypto.backend.make_gcm` hands out. ``"reference"`` is
  the pure-Python table-driven implementation pinned to the NIST CAVP
  vectors; ``"fast"`` auto-detects the quickest available backend
  (``cryptography`` hardware AES-GCM, then the numpy-batched
  T-table implementation, then reference). The differential suite in
  ``tests/crypto/test_backend_equivalence.py`` proves every backend
  produces byte-identical ciphertext and tags.
* ``queue`` — the event-queue implementation in
  :class:`repro.sim.core.Simulator`. ``"heap"`` is the original
  binary-heap loop; ``"fast"`` adds a FIFO lane for events scheduled
  at the current timestamp (the dominant case: callback dispatch and
  zero-delay timeouts), preserving the exact ``(when, seq)`` total
  order — proven by ``tests/sim/test_queue_equivalence.py``.
* ``tier_threshold`` — payload-size tiering: functional plaintexts
  larger than this many bytes are replaced on the encryption path by
  a fixed-size authenticated digest while the original bytes ride
  alongside (see :mod:`repro.crypto.tiering`). ``0`` disables
  tiering. Timing, stage spans and per-chunk IV accounting are
  unaffected — only the number of bytes the functional cipher touches
  shrinks.
* ``short_dh_exponent`` — session bring-up uses 256-bit ephemeral DH
  exponents in the RFC 3526 2048-bit group (standard practice per
  RFC 7919 §5.2: the exponent only needs twice the security level)
  instead of full-width 2048-bit exponents, cutting each modexp ~8×.

The **reference profile** reproduces the pre-fast-path behaviour
exactly (full-width exponents, heap queue, no tiering, pure-Python
GCM); it is the conformance oracle the differential harness measures
the fast profile against.

The profile is process-wide mutable state, exactly like the default
seed in :mod:`repro.sim.rng`: the CLI sets it once from
``--crypto-backend`` (or the ``REPRO_FASTPATH`` environment variable)
before any simulation object is built. Tests use
:func:`use_profile` as a context manager.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "FastPathConfig",
    "FAST",
    "REFERENCE",
    "PROFILES",
    "config",
    "configure",
    "use_profile",
]

#: Default payload-tiering threshold (bytes). Chosen above every
#: functional payload the standing bench suite produces, so enabling
#: the fast profile leaves the suite's wire bytes bit-identical; only
#: genuinely bulk payloads (big collectives, Blackwell-scale
#: transfers) are tiered.
DEFAULT_TIER_THRESHOLD = 1024


@dataclass(frozen=True)
class FastPathConfig:
    """One resolved fast-path profile."""

    name: str
    crypto_backend: str      # "reference" | "fast" | "numpy" | "cryptography"
    queue: str               # "heap" | "fast"
    tier_threshold: int      # 0 disables payload tiering
    short_dh_exponent: bool


REFERENCE = FastPathConfig(
    name="reference",
    crypto_backend="reference",
    queue="heap",
    tier_threshold=0,
    short_dh_exponent=False,
)

FAST = FastPathConfig(
    name="fast",
    crypto_backend="fast",
    queue="fast",
    tier_threshold=DEFAULT_TIER_THRESHOLD,
    short_dh_exponent=True,
)

PROFILES = {"reference": REFERENCE, "fast": FAST}

_active: FastPathConfig = PROFILES.get(
    os.environ.get("REPRO_FASTPATH", "fast"), FAST
)


def config() -> FastPathConfig:
    """The active fast-path profile."""
    return _active


def configure(profile, **overrides) -> FastPathConfig:
    """Activate a profile (by name or instance), with field overrides.

    >>> configure("reference").queue
    'heap'
    >>> configure("fast", tier_threshold=64).tier_threshold
    64
    """
    global _active
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown fast-path profile {profile!r}; "
                f"choose from {sorted(PROFILES)}"
            ) from None
    if overrides:
        profile = replace(profile, **overrides)
    _active = profile
    return _active


@contextmanager
def use_profile(profile, **overrides):
    """Context manager scoping a profile change (tests, experiments)."""
    previous = _active
    try:
        yield configure(profile, **overrides)
    finally:
        configure(previous)
