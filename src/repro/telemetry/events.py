"""Typed telemetry events carried by the :class:`TelemetryHub` bus.

Every event is an immutable dataclass stamped with the *simulated*
time it occurred. Components emit the narrowest type that fits:

* :class:`TransferEvent` — one memcpy crossed the runtime API
  (either direction, swap or control traffic);
* :class:`SpeculationEvent` — the speculation pipeline changed state
  (stage / validate / commit / invalidate / evict / relinquish);
* :class:`IvEvent` — one IV of the CPU→GPU stream was consumed, and
  what for (a staged commit, an on-demand encryption, a NOP pad);
* :class:`FaultEvent` — the MPK-style page protection fired;
* :class:`InjectionEvent` — the fault plane injected a fault
  (:mod:`repro.faults`);
* :class:`RecoveryEvent` — a policy reacted to one (retry, resync,
  re-encryption, degradation-mode change, timeout).

``request_id`` ties events back to the per-request lifecycle records
the hub keeps (see :class:`repro.telemetry.hub.RequestRecord`); -1
means the event is not attributable to a single request.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

__all__ = [
    "TelemetryEvent",
    "TransferEvent",
    "SpeculationEvent",
    "IvEvent",
    "FaultEvent",
    "InjectionEvent",
    "RecoveryEvent",
    "ClusterEvent",
    "LinkEvent",
    "ServeEvent",
    "AlertEvent",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class: one timestamped occurrence on the bus."""

    time: float

    @property
    def kind(self) -> str:
        """Short event-type tag used by exporters."""
        return type(self).__name__.replace("Event", "").lower()

    def args(self) -> Dict[str, Any]:
        """All fields except the timestamp, for exporter payloads."""
        out = dataclasses.asdict(self)
        out.pop("time", None)
        return out


@dataclass(frozen=True)
class TransferEvent(TelemetryEvent):
    """One memcpy submitted through a :class:`DeviceRuntime`."""

    direction: str  # "h2d" | "d2h"
    addr: int
    size: int
    tag: str = ""
    request_id: int = -1


@dataclass(frozen=True)
class SpeculationEvent(TelemetryEvent):
    """A state change of the speculative-encryption pipeline."""

    #: "stage" | "validate" | "commit" | "invalidate" | "evict"
    #: | "relinquish" | "defer" | "resume"
    action: str
    addr: int = -1
    size: int = -1
    iv: int = -1
    #: Validation outcome or invalidation reason, when applicable.
    reason: str = ""
    request_id: int = -1


@dataclass(frozen=True)
class IvEvent(TelemetryEvent):
    """One IV of a session stream was consumed."""

    stream: str  # "cpu-tx" (the only instrumented stream today)
    iv: int
    #: "staged" | "ondemand" | "inline" | "nop"
    purpose: str
    request_id: int = -1


@dataclass(frozen=True)
class FaultEvent(TelemetryEvent):
    """A page-protection fault delivered to the runtime."""

    addr: int
    size: int
    access: str  # "write" | "read"
    owners: str = ""


@dataclass(frozen=True)
class InjectionEvent(TelemetryEvent):
    """The fault plane injected one fault (:mod:`repro.faults`)."""

    #: "pcie" | "engine" | "crypto" | "validator" | "cluster"
    #: | "interconnect"
    domain: str
    #: "pcie-drop" | "pcie-jitter" | "engine-stall" | "tag-corrupt"
    #: | "iv-desync" | "mispredict" | "replica-crash" | "link-drop"
    #: | "link-jitter" | "link-mispredict"
    action: str
    detail: str = ""


@dataclass(frozen=True)
class RecoveryEvent(TelemetryEvent):
    """A fault policy reacted: the system survived (or gave up)."""

    #: "retry" | "retry-exhausted" | "auth-recover" | "resync"
    #: | "timeout" | "degrade" | "probe" | "restore"
    action: str
    attempts: int = 0
    detail: str = ""
    request_id: int = -1


@dataclass(frozen=True)
class ClusterEvent(TelemetryEvent):
    """A request- or replica-level state change at the cluster layer.

    Emitted by the gateway (admission, routing, shedding, per-tenant
    handshakes, completions) and the fault injector (crash/recover).
    ``request_id`` is the cluster-wide request id, unrelated to the
    per-machine memcpy lifecycle ids.
    """

    #: "enqueue" | "dispatch" | "handshake" | "complete" | "shed"
    #: | "failover" | "crash" | "recover"
    action: str
    tenant: str = ""
    replica: int = -1
    request_id: int = -1
    #: Shed reason, crash epoch, routing policy note, etc.
    detail: str = ""


@dataclass(frozen=True)
class ServeEvent(TelemetryEvent):
    """A request-level state change at the online-serving layer.

    Emitted by :class:`repro.serve.ServeFrontend` as a request moves
    through the OpenAI-style front end: arrival, admission decision,
    per-token streaming progress, failover restarts and terminal
    completion/shedding. ``token_index`` is 1-based and only
    meaningful for the ``first-token`` / ``token`` actions.
    """

    #: "arrive" | "admit" | "hold" | "first-token" | "token"
    #: | "restart" | "complete" | "shed"
    action: str
    request_id: int = -1
    tenant: str = ""
    #: Priority tier: "interactive" | "standard" | "batch".
    tier: str = ""
    token_index: int = -1
    #: Shed reason, admission policy note, etc.
    detail: str = ""


@dataclass(frozen=True)
class AlertEvent(TelemetryEvent):
    """An alert rule fired (:class:`repro.tracing.alerts.AlertEngine`).

    ``burn_rate`` is the long-window budget-burn multiple for SLO
    rules, or the count/threshold ratio for anomaly-burst rules;
    ``window_s`` is the window the firing was evaluated over.
    """

    rule: str
    severity: str = "page"
    burn_rate: float = 0.0
    window_s: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class LinkEvent(TelemetryEvent):
    """One inter-GPU hop crossed the interconnect.

    ``mode`` says which physical route it took: direct peer-to-peer
    ("p2p", CC disabled) or the CPU bounce buffer ("bounce", CC
    enabled). ``strategy`` records how the bounce crypto was paid:
    inline serialization ("serialized"), a speculative pre-arranged
    IV schedule ("staged"), or a speculation miss that fell back to
    the serialized path ("miss").
    """

    src: int
    dst: int
    nbytes: int
    #: "p2p" | "bounce"
    mode: str
    #: "" (p2p) | "serialized" | "staged" | "miss"
    strategy: str = ""
    collective: str = ""
