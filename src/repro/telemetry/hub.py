"""The telemetry event bus and per-request lifecycle records.

One :class:`TelemetryHub` lives on every :class:`repro.cc.Machine` and
is the single sink all instrumented layers report through: the span
tracer (PCIe / crypto-engine / GPU occupancy), the typed event stream
(:mod:`repro.telemetry.events`) and the per-request lifecycle records
that stitch classify → predict → stage → validate → wire into one
queryable trace per memcpy.

The hub is **disabled by default** and its disabled path is designed
to be nearly free: ``emit`` and ``begin_request`` return after one
attribute check, so benchmark numbers stay honest. Enabling the hub
(directly, or for a whole experiment via :func:`recording`) turns on
span collection and event/record retention.

Counters, by contrast, are *always* live: they are plain
:class:`~repro.sim.stats.MetricSet` counters shared with the machine,
and the runtime's historical statistics attributes are thin properties
over them.
"""

from __future__ import annotations

import contextlib
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple, Type

from ..sim.stats import MetricSet
from ..sim.tracing import SpanTracer
from .events import TelemetryEvent

__all__ = [
    "EventTap",
    "RequestRecord",
    "TelemetryHub",
    "TraceSession",
    "active_session",
    "recording",
]

#: Fixed transfer-size histogram buckets (bytes): 4 KB … 256 MB.
TRANSFER_SIZE_BUCKETS = tuple(float(4096 * 4 ** i) for i in range(9))


@dataclass
class RequestRecord:
    """Lifecycle of one memcpy, from API submission to wire landing.

    Fields are filled in progressively by the runtime as the request
    moves through classification, validation and commit; timestamps
    are simulated seconds (``nan`` until the phase happens).
    """

    request_id: int
    direction: str
    addr: int
    size: int
    submit_time: float
    tag: str = ""
    #: "swap" | "swap-out" | "control"
    kind: str = ""
    #: Prediction stream ("weights" / "kv_cache") for swap traffic.
    swap_class: str = ""
    #: Validation outcome for swap-ins: hit_now/hit_future/stale/miss.
    outcome: str = ""
    #: How the bytes reached the wire: "staged" | "ondemand" |
    #: "inline" | "native" | "async-decrypt" | "sync-decrypt".
    strategy: str = ""
    #: IV of the staged entry this request validated against (-1: none).
    staged_iv: int = -1
    #: IV the ciphertext actually shipped under (-1: not committed yet).
    commit_iv: int = -1
    #: NOPs sent to close the IV gap in front of this request.
    nops_padded: int = 0
    #: The request was suspended to the batch boundary (§5.3).
    deferred: bool = False
    #: Causal trace context bound at submission (the parent span the
    #: completed record is adopted under); None outside tracing runs.
    #: See :mod:`repro.tracing.context`.
    trace: Optional[Any] = None
    api_done_time: float = math.nan
    complete_time: float = math.nan
    #: Exact critical-path intervals ``(stage, start, end)`` recorded
    #: by the runtime's timed halves while the hub is enabled. The
    #: stages of one request are sequential and non-overlapping, and
    #: together tile [submit_time, complete_time] (see
    #: :mod:`repro.observatory.profiler`).
    stages: List[Tuple[str, float, float]] = field(default_factory=list)

    def mark_stage(self, stage: str, start: float, end: float) -> None:
        """Record one critical-path interval; zero-length marks are
        dropped so waterfalls stay readable."""
        if end > start:
            self.stages.append((stage, start, end))

    @property
    def api_latency(self) -> float:
        """Blocking time of the API call (nan until api_done)."""
        return self.api_done_time - self.submit_time

    @property
    def wire_latency(self) -> float:
        """Submission-to-landing time (nan until complete)."""
        return self.complete_time - self.submit_time

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "request_id": self.request_id,
            "direction": self.direction,
            "addr": self.addr,
            "size": self.size,
            "tag": self.tag,
            "kind": self.kind,
            "swap_class": self.swap_class,
            "outcome": self.outcome,
            "strategy": self.strategy,
            "staged_iv": self.staged_iv,
            "commit_iv": self.commit_iv,
            "nops_padded": self.nops_padded,
            "deferred": self.deferred,
            "submit_time": self.submit_time,
            "api_done_time": self.api_done_time,
            "complete_time": self.complete_time,
            "stages": [list(stage) for stage in self.stages],
        }
        if self.trace is not None:
            # Only traced runs carry the linkage keys, so untraced
            # exports (and their golden files) are unchanged.
            out["trace_id"] = self.trace.trace_id
            out["parent_span_id"] = self.trace.span_id
        return out


class EventTap:
    """Bounded event subscriber with drop-oldest backpressure.

    Long campaigns can emit millions of events; a profiler that
    subscribes naively would grow memory without bound. A tap keeps at
    most ``max_events`` of the newest events and counts what it sheds
    in the hub's always-on metrics (``telemetry.tap.dropped_events``)
    so the loss is observable, never silent.
    """

    def __init__(self, hub: "TelemetryHub", max_events: int = 4096) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.hub = hub
        self.max_events = max_events
        self.buffer: Deque[TelemetryEvent] = deque(maxlen=max_events)
        self.seen = 0
        self.dropped = 0

    def __call__(self, event: TelemetryEvent) -> None:
        self.seen += 1
        if len(self.buffer) == self.max_events:
            self.dropped += 1
            self.hub.metrics.counter("telemetry.tap.dropped_events").add(1)
        self.buffer.append(event)

    def __len__(self) -> int:
        return len(self.buffer)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self.buffer)

    def drain(self) -> List[TelemetryEvent]:
        """Return and clear the buffered events (oldest first)."""
        events = list(self.buffer)
        self.buffer.clear()
        return events


class TelemetryHub:
    """Structured event bus for one machine.

    The hub aggregates four kinds of signal:

    * ``metrics`` — always-on counters / latency stats / histograms
      (shared with :attr:`Machine.metrics`);
    * ``tracer`` — lane spans (shared with ``sim.tracer`` so existing
      instrumentation in the resource and hardware layers flows in);
    * ``events`` — the typed event stream, retained only when enabled;
    * ``requests`` — per-request lifecycle records, ditto.
    """

    def __init__(
        self,
        sim=None,
        metrics: Optional[MetricSet] = None,
        tracer: Optional[SpanTracer] = None,
        enabled: bool = False,
        label: str = "",
    ) -> None:
        self.sim = sim
        self.metrics = metrics if metrics is not None else MetricSet()
        self.tracer = tracer if tracer is not None else SpanTracer(enabled=enabled)
        self.label = label
        self.events: List[TelemetryEvent] = []
        self.requests: List[RequestRecord] = []
        self.dropped_events = 0
        #: Retention cap for ``events`` + spans are uncapped; None = no cap.
        self.max_events: Optional[int] = None
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self._next_request_id = 0
        #: Trace context stamped onto records opened while bound (see
        #: :meth:`bound_trace`); None outside causal-tracing runs.
        self._bound_trace = None
        self.enabled = enabled

    # -- enablement -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self.tracer.enabled = self._enabled

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- event bus ------------------------------------------------------

    def emit(self, event: TelemetryEvent) -> None:
        """Publish one event; no-op (one attribute check) when disabled."""
        if not self._enabled:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
        else:
            self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, subscriber: Callable[[TelemetryEvent], None]) -> None:
        """Deliver every subsequent (enabled) event to ``subscriber``."""
        self._subscribers.append(subscriber)

    def tap(self, max_events: int = 4096) -> EventTap:
        """Attach a bounded drop-oldest :class:`EventTap` subscriber."""
        tap = EventTap(self, max_events=max_events)
        self.subscribe(tap)
        return tap

    def events_of(self, event_type: Type[TelemetryEvent]) -> List[TelemetryEvent]:
        """All retained events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, event_type)]

    # -- per-request lifecycle ------------------------------------------

    @contextlib.contextmanager
    def bound_trace(self, ctx):
        """Stamp ``ctx`` onto every record opened inside the block.

        The runtime's memcpy API opens its lifecycle record
        synchronously at the call, so a caller that knows *whose*
        transfer it is issuing (the replica loop, the interconnect)
        binds the request's trace context around the call and the
        record — and, on completion, its causal spans — attach to the
        right request DAG. Binding ``None`` is a no-op, so call sites
        need no tracing-enabled check.
        """
        previous = self._bound_trace
        self._bound_trace = ctx
        try:
            yield
        finally:
            self._bound_trace = previous

    def begin_request(
        self, direction: str, addr: int, size: int, time: float, tag: str = ""
    ) -> Optional[RequestRecord]:
        """Open a lifecycle record; returns None when disabled."""
        if not self._enabled:
            return None
        record = RequestRecord(
            request_id=self._next_request_id,
            direction=direction,
            addr=addr,
            size=size,
            submit_time=time,
            tag=tag,
            trace=self._bound_trace,
        )
        self._next_request_id += 1
        self.requests.append(record)
        return record

    def mark_api_done(self, record: RequestRecord, time: float) -> None:
        record.api_done_time = time

    def mark_complete(self, record: RequestRecord, time: float) -> None:
        record.complete_time = time
        self.metrics.latency(f"telemetry.{record.direction}_wire_s").record(
            max(0.0, record.wire_latency)
        )
        self.metrics.histogram(
            "telemetry.transfer_bytes", TRANSFER_SIZE_BUCKETS
        ).record(float(record.size))
        if record.trace is not None:
            # Lazy import: repro.tracing imports telemetry events, so
            # a module-level import here would be circular.
            from ..tracing import active_collector

            collector = active_collector()
            if collector is not None:
                collector.adopt_record(record, machine=self.label)

    def outcome_counts(self) -> Dict[str, int]:
        """Validation outcome counts over the recorded swap-in requests."""
        counts: Dict[str, int] = {}
        for record in self.requests:
            if record.outcome:
                counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def success_rate(self) -> float:
        """Staged-service fraction recomputed from the request records.

        Matches :attr:`repro.core.validator.Validator.success_rate`
        when the hub was enabled for the machine's whole lifetime.
        """
        counts = self.outcome_counts()
        total = sum(counts.values())
        if not total:
            return 0.0
        return (counts.get("hit_now", 0) + counts.get("hit_future", 0)) / total


class TraceSession:
    """Collects the hubs of every machine built while recording."""

    def __init__(self, max_events_per_hub: Optional[int] = None) -> None:
        self.hubs: List[TelemetryHub] = []
        self.max_events_per_hub = max_events_per_hub
        #: Optional callback invoked with each newly registered hub —
        #: how the flight recorder starts watching machines that boot
        #: mid-run (replica re-attestation after a crash).
        self.on_register: Optional[Callable[[TelemetryHub], None]] = None

    def register(self, hub: TelemetryHub) -> None:
        hub.max_events = self.max_events_per_hub
        hub.enable()
        if not hub.label:
            hub.label = f"machine-{len(self.hubs)}"
        self.hubs.append(hub)
        if self.on_register is not None:
            self.on_register(hub)


_SESSIONS: List[TraceSession] = []


def active_session() -> Optional[TraceSession]:
    """The innermost live :func:`recording` session, if any."""
    return _SESSIONS[-1] if _SESSIONS else None


@contextlib.contextmanager
def recording(max_events_per_hub: Optional[int] = None):
    """Enable telemetry for every machine built inside the block.

    >>> with recording() as session:
    ...     result = fig2_microbenchmark("quick")
    >>> chrome_trace(session.hubs)  # doctest: +SKIP
    """
    session = TraceSession(max_events_per_hub=max_events_per_hub)
    _SESSIONS.append(session)
    try:
        yield session
    finally:
        _SESSIONS.remove(session)
