"""Unified telemetry: event bus, lifecycle records, trace exporters.

The observability layer every other subsystem reports through:

* :class:`TelemetryHub` — per-machine structured event bus (typed
  events + lane spans + per-request lifecycle records), default-off
  with a near-free disabled path;
* :func:`recording` — context manager enabling telemetry for every
  machine built inside it (used by ``python -m repro trace``);
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON,
  flat JSON/CSV metric dumps, and ASCII Gantt rendering.
"""

from .events import (
    AlertEvent,
    ClusterEvent,
    FaultEvent,
    InjectionEvent,
    IvEvent,
    LinkEvent,
    RecoveryEvent,
    ServeEvent,
    SpeculationEvent,
    TelemetryEvent,
    TransferEvent,
)
from .export import (
    ascii_gantt,
    canonical_lane,
    chrome_trace,
    flat_metrics,
    metrics_csv,
)
from .hub import (
    EventTap,
    RequestRecord,
    TelemetryHub,
    TraceSession,
    active_session,
    recording,
)

__all__ = [
    "AlertEvent",
    "ClusterEvent",
    "EventTap",
    "FaultEvent",
    "InjectionEvent",
    "IvEvent",
    "LinkEvent",
    "RecoveryEvent",
    "RequestRecord",
    "ServeEvent",
    "SpeculationEvent",
    "TelemetryEvent",
    "TelemetryHub",
    "TraceSession",
    "TransferEvent",
    "active_session",
    "ascii_gantt",
    "canonical_lane",
    "chrome_trace",
    "flat_metrics",
    "metrics_csv",
    "recording",
]
