"""Exporters: Chrome trace-event JSON, flat JSON/CSV metrics, ASCII.

All exporters read the same :class:`TelemetryHub` state, so every
output format is a view over one event stream:

* :func:`chrome_trace` — the ``trace_event`` JSON format loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev. Each machine (hub)
  becomes one *process*; lanes become named *threads* grouped under
  the canonical names ``pcie`` / ``enc-engine`` / ``gpu-compute`` /
  ``speculation``; typed events become instants and request lifecycle
  records become spans on a ``requests`` lane.
* :func:`flat_metrics` / :func:`metrics_csv` — flat metric dumps for
  ``benchmarks/`` and offline analysis.
* :func:`ascii_gantt` — the existing ASCII Gantt, one chart per hub.
"""

from __future__ import annotations

import io
import math
from typing import Any, Dict, Iterable, List, Sequence

from ..sim.tracing import render_gantt
from .events import (
    AlertEvent,
    ClusterEvent,
    FaultEvent,
    InjectionEvent,
    IvEvent,
    RecoveryEvent,
    SpeculationEvent,
    TransferEvent,
)
from .hub import TelemetryHub

__all__ = [
    "canonical_lane",
    "chrome_trace",
    "event_lane",
    "flat_metrics",
    "metrics_csv",
    "ascii_gantt",
]


def canonical_lane(lane: str) -> str:
    """Map raw tracer lane names onto the canonical lane groups."""
    if lane.startswith("cluster") or lane.startswith("gateway"):
        return "cluster"
    if lane.startswith("serving"):
        return "serving"
    if lane.startswith("pcie"):
        return "pcie"
    if lane.startswith("enc") or lane.startswith("dec"):
        return "enc-engine"
    if lane == "gpu" or lane.startswith("gpu"):
        return "gpu-compute"
    return lane


#: Display order of the canonical lanes in trace viewers.
_LANE_ORDER = (
    "cluster", "serving", "requests", "speculation", "enc-engine", "pcie", "gpu-compute"
)


def _lane_sort_index(lane: str) -> int:
    canonical = canonical_lane(lane)
    try:
        return _LANE_ORDER.index(canonical)
    except ValueError:
        return len(_LANE_ORDER)


_EVENT_LANES = {
    TransferEvent: "transfers",
    SpeculationEvent: "speculation",
    IvEvent: "iv-stream",
    FaultEvent: "faults",
    InjectionEvent: "injected-faults",
    RecoveryEvent: "recovery",
    ClusterEvent: "cluster",
    AlertEvent: "alerts",
}

def event_lane(event) -> str:
    """Telemetry lane one typed event renders on ("events" fallback)."""
    return _EVENT_LANES.get(type(event), "events")


#: µs per simulated second (Chrome trace timestamps are microseconds).
_US = 1e6


def chrome_trace(hubs: Iterable[TelemetryHub]) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from one or more hubs."""
    trace_events: List[Dict[str, Any]] = []
    machines: List[Dict[str, Any]] = []

    for pid, hub in enumerate(hubs):
        label = hub.label or f"machine-{pid}"
        trace_events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
        )

        # Lane → tid mapping. Event lanes are reserved even when a
        # lane has no spans so instants always have a home thread.
        lanes = sorted(set(hub.tracer.lanes()), key=lambda l: (_lane_sort_index(l), l))
        for extra in ("requests", *_EVENT_LANES.values()):
            if extra not in lanes:
                lanes.append(extra)
        tids: Dict[str, int] = {}
        for tid, lane in enumerate(lanes, start=1):
            tids[lane] = tid
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": canonical_lane(lane)}}
            )
            trace_events.append(
                {"name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"sort_index": _lane_sort_index(lane)}}
            )

        for span in hub.tracer.spans:
            trace_events.append(
                {"name": span.label, "cat": canonical_lane(span.lane), "ph": "X",
                 "ts": span.start * _US, "dur": span.duration * _US,
                 "pid": pid, "tid": tids[span.lane], "args": {"lane": span.lane}}
            )

        for event in hub.events:
            lane = event_lane(event)
            trace_events.append(
                {"name": f"{event.kind}:{_event_title(event)}", "cat": event.kind,
                 "ph": "i", "s": "t", "ts": event.time * _US,
                 "pid": pid, "tid": tids.get(lane, 0), "args": event.args()}
            )

        for record in hub.requests:
            end = record.complete_time
            if math.isnan(end):
                end = record.api_done_time
            if math.isnan(end):
                continue  # Still in flight when the run stopped.
            name = record.outcome or record.strategy or record.kind or record.direction
            # A crash can leave api-done records that never landed;
            # their nan timestamps would serialize as bare ``NaN``
            # tokens, which strict JSON parsers reject.
            args = {
                k: (None if isinstance(v, float) and math.isnan(v) else v)
                for k, v in record.as_dict().items()
            }
            trace_events.append(
                {"name": f"{record.direction} {name}".strip(), "cat": "request",
                 "ph": "X", "ts": record.submit_time * _US,
                 "dur": max(0.0, end - record.submit_time) * _US,
                 "pid": pid, "tid": tids["requests"], "args": args}
            )

        machines.append(_hub_summary(hub, label))

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"machines": machines},
    }


def _event_title(event) -> str:
    if isinstance(event, AlertEvent):
        return event.rule
    if isinstance(event, ClusterEvent):
        return event.action
    if isinstance(event, (InjectionEvent, RecoveryEvent)):
        return event.action
    if isinstance(event, SpeculationEvent):
        return event.reason or event.action
    if isinstance(event, IvEvent):
        return event.purpose
    if isinstance(event, FaultEvent):
        return event.access
    if isinstance(event, TransferEvent):
        return event.direction
    return ""


def _hub_summary(hub: TelemetryHub, label: str) -> Dict[str, Any]:
    outcomes = hub.outcome_counts()
    return {
        "label": label,
        "spans": len(hub.tracer.spans),
        "events": len(hub.events),
        "dropped_events": hub.dropped_events,
        "requests": len(hub.requests),
        "outcomes": outcomes,
        "success_rate": hub.success_rate(),
    }


def flat_metrics(hubs: Iterable[TelemetryHub]) -> List[Dict[str, Any]]:
    """Flat per-machine metric dump: counters, latency stats, records."""
    out = []
    for index, hub in enumerate(hubs):
        label = hub.label or f"machine-{index}"
        summary = _hub_summary(hub, label)
        summary["metrics"] = hub.metrics.snapshot()
        summary["requests_detail"] = [r.as_dict() for r in hub.requests]
        out.append(summary)
    return out


def metrics_csv(hubs: Iterable[TelemetryHub]) -> str:
    """``machine,metric,value`` CSV over every hub's metric snapshot."""
    buffer = io.StringIO()
    buffer.write("machine,metric,value\n")
    for index, hub in enumerate(hubs):
        label = hub.label or f"machine-{index}"
        for name, value in sorted(hub.metrics.snapshot().items()):
            buffer.write(f"{label},{name},{value!r}\n")
        for outcome, count in sorted(hub.outcome_counts().items()):
            buffer.write(f"{label},requests.outcome.{outcome},{count}\n")
        buffer.write(f"{label},requests.success_rate,{hub.success_rate()!r}\n")
    return buffer.getvalue()


def ascii_gantt(
    hubs: Iterable[TelemetryHub],
    width: int = 72,
    lane_prefix: Any = None,
) -> str:
    """One ASCII Gantt chart per hub, rendered from the span stream."""
    charts = []
    for index, hub in enumerate(hubs):
        label = hub.label or f"machine-{index}"
        charts.append(f"=== {label} " + "=" * max(1, width - len(label) - 5))
        charts.append(render_gantt(hub.tracer, width=width, lane_prefix=lane_prefix))
    return "\n".join(charts) if charts else "(no machines traced)"
