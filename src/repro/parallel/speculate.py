"""Speculative pre-encryption for inter-GPU link traffic.

Collective schedules are the most predictable traffic in the system:
a ring all-reduce visits the same (src, dst, size) sequence every
layer, every step. The :class:`LinkSpeculator` feeds each source GPU's
outgoing hop sequence into its own :class:`~repro.core.predictor.
SwapPredictor` (the §5.1 hypothesis racer, reused unchanged — a hop to
peer *d* of *n* bytes is "swap-in of chunk (d, n)") and answers, per
hop, whether the host's bounce-buffer crypto was pre-arranged under
the predicted (link, IV) — the staged fast path of
:class:`repro.hw.interconnect.Interconnect` — or must serialize.

A :class:`~repro.faults.policies.DegradationController` rides along:
under a link storm (forced mispredictions from the fault plane) the
miss-rate EMA climbs, speculation parks, and every hop takes the
serialized-but-safe path until the time-driven probe re-enables it.
Parked lookups never ship staged ciphertexts, so IV streams stay
monotone throughout — the storm test's core assertion.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.classify import SwapClass, TransferClassifier
from ..core.predictor import SwapPredictor
from ..faults.policies import DegradationController, FaultPolicy

__all__ = ["LinkSpeculator"]


class LinkSpeculator:
    """Per-source-GPU schedule prediction for link hops."""

    def __init__(
        self,
        clock: Callable[[], float],
        policy: Optional[FaultPolicy] = None,
        faults=None,
        sabotage: Optional[str] = None,
        warmup: int = 8,
    ) -> None:
        self.clock = clock
        #: Per-source lookups whose outcome does not feed the
        #: degradation EMA: a cold detector's first misses say nothing
        #: about the environment, and letting them trip DEGRADED would
        #: park speculation for the whole hold window at start-up.
        self.warmup = warmup
        #: Optional :class:`repro.faults.FaultInjector` for forced
        #: link mispredictions (the storm campaigns).
        self.faults = faults
        self.sabotage = sabotage
        self.controller = DegradationController(policy or FaultPolicy(), clock)
        # One classifier + predictor per source GPU: each GPU's
        # outgoing hop sequence is its own deterministic schedule;
        # mixing sources would make the learned pattern depend on how
        # concurrent steps interleave.
        self._classifiers: Dict[int, TransferClassifier] = {}
        self._predictors: Dict[int, SwapPredictor] = {}
        self._seen: Dict[int, int] = {}
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.parked = 0

    def _predictor(self, src: int) -> SwapPredictor:
        if src not in self._predictors:
            classifier = TransferClassifier(swap_threshold=1)
            self._classifiers[src] = classifier
            self._predictors[src] = SwapPredictor(classifier, sabotage=self.sabotage)
        return self._predictors[src]

    def lookup(self, src: int, dst: int, nbytes: int) -> bool:
        """One hop is about to cross the fabric: was it pre-arranged?

        Always feeds the observation (the predictor keeps learning the
        schedule even while parked); returns True only when the
        prediction matched *and* the degradation controller currently
        allows speculation.
        """
        self.controller.poll()
        predictor = self._predictor(src)
        # Link hops are repetitive, strictly ordered traffic — the
        # weights-class hypotheses (repetitive/Markov) fit exactly.
        self._classifiers[src].register_weight_size(nbytes)
        predicted = predictor.predict(1, SwapClass.WEIGHTS)
        hit = bool(predicted) and predicted[0].key == (dst, nbytes)
        predictor.observe_swap_in(dst, nbytes)
        if hit and self.faults is not None and self.faults.link_mispredict(f"{src}->{dst}"):
            hit = False
        self.lookups += 1
        self._seen[src] = self._seen.get(src, 0) + 1
        if not self.controller.speculation_enabled:
            # Parked: nothing was staged, the hop serializes. The EMA
            # is not fed — recovery out of DEGRADED is time-driven.
            self.parked += 1
            self.misses += 1
            return False
        if self._seen[src] > self.warmup:
            self.controller.observe(hit)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
