"""Pipeline-parallel execution over the encrypted interconnect.

GPipe-style layer partitioning: GPU *i* owns a contiguous slice of the
model's layers, microbatches stream through the stages, and each
stage-to-stage handoff ships one activation tensor across the fabric
(P2P with CC off, the bounce bridge with CC on).

Two schedules:

* **gpipe** — all microbatches flow forward through the pipeline,
  then (for fine-tuning) all gradients flow backward. Simple, with
  the classic bubble at each end.
* **1f1b** — each stage warms up with at most ``n_stages − stage``
  forwards, then alternates one-forward-one-backward, bounding
  in-flight activations. Same total work, smaller bubble.

Inference runs the forward path only. Stages are simulator processes
coupled by :class:`~repro.sim.resources.Store` queues, so the
pipeline's natural overlap (stage 2 computing microbatch 1 while
stage 1 computes microbatch 2) falls out of the event engine, and the
activation hops contend for links and crypto pools exactly like any
other fabric traffic.

Pipeline parallelism moves far fewer bytes per FLOP than tensor
parallelism (one activation per microbatch per boundary vs two
all-reduces per layer), so its collapse under CC is mild — the
campaign shows the contrast between the two regimes.
"""

from __future__ import annotations

import hashlib
from typing import List

from ..models.specs import ModelSpec
from ..models.transformer import LayerWork, TransformerCostModel
from ..sim import Store
from .collectives import ParallelResult, decode_ints, encode_ints

__all__ = ["PipelineParallelEngine"]


class PipelineParallelEngine:
    """Microbatched pipeline over N stage GPUs."""

    def __init__(
        self,
        machine,
        spec: ModelSpec,
        microbatches: int = 4,
        microbatch_tokens: int = 256,
        schedule: str = "gpipe",
        label: str = "",
    ) -> None:
        if schedule not in ("gpipe", "1f1b"):
            raise ValueError("schedule must be 'gpipe' or '1f1b'")
        if microbatches < 1:
            raise ValueError("microbatches must be >= 1")
        self.machine = machine
        self.spec = spec
        self.microbatches = microbatches
        self.microbatch_tokens = microbatch_tokens
        self.schedule = schedule
        self.label = label or ("cc" if machine.cc_enabled else "nocc")
        self.cost = TransformerCostModel(spec)
        self.n = len(machine.gpus)
        # Contiguous layer slices; earlier stages absorb the remainder.
        base, extra = divmod(spec.n_layers, self.n)
        self.stage_layers = [base + (1 if i < extra else 0) for i in range(self.n)]
        #: One microbatch's activation tensor at a stage boundary.
        self.activation_bytes = int(
            microbatch_tokens * spec.hidden * spec.dtype_bytes
        )
        self._digest = hashlib.sha256()
        self.tokens_processed = 0

    # -- per-stage work ---------------------------------------------------

    def _forward_work(self, stage: int) -> LayerWork:
        layers = self.stage_layers[stage]
        per_layer = self.cost.prefill_layer(self.microbatch_tokens)
        return LayerWork(per_layer.flops * layers, per_layer.bytes_touched * layers,
                         layers=layers)

    def _backward_work(self, stage: int) -> LayerWork:
        # Backward ≈ 2× the forward GEMMs; weights touched twice.
        forward = self._forward_work(stage)
        return LayerWork(2.0 * forward.flops, 2.0 * forward.bytes_touched,
                         layers=forward.layers)

    def _ship(self, src: int, dst: int, mb: int, direction: str):
        """One activation/gradient handoff; returns the fabric event."""
        payload = encode_ints([mb + 1, src + 1, dst + 1, 1 if direction == "fwd" else -1])
        return self.machine.interconnect.transfer(
            src, dst, payload, nbytes=self.activation_bytes,
            tag=f"pp.{direction}.mb{mb}.s{dst}", collective=f"pp.{direction}",
        )

    # -- stage processes --------------------------------------------------

    def _stage(self, stage: int, fwd_in: Store, fwd_out, bwd_in, bwd_out,
               train: bool):
        gpu = self.machine.gpus[stage]
        fwd_work = self._forward_work(stage)
        bwd_work = self._backward_work(stage)
        m = self.microbatches
        fwd_done = 0
        bwd_done = 0
        # 1F1B: at most (n - stage) forwards may be in flight ahead of
        # the backwards; GPipe: all forwards first.
        window = (self.n - stage) if self.schedule == "1f1b" else m
        while fwd_done < m or (train and bwd_done < m):
            run_fwd = fwd_done < m and (
                not train or fwd_done - bwd_done < window or bwd_in is None
            )
            if run_fwd:
                mb = yield fwd_in.get()
                yield gpu.compute(fwd_work.flops, fwd_work.bytes_touched,
                                  layers=fwd_work.layers)
                if fwd_out is not None:
                    delivered = yield self._ship(stage, stage + 1, mb, "fwd")
                    self._digest.update(b"pp:fwd:" + delivered)
                    fwd_out.put(mb)
                else:
                    # Last stage: the microbatch's tokens are done (for
                    # inference) or turn around into the backward pass.
                    self._digest.update(f"pp:out:{mb}:{stage}".encode())
                    if not train:
                        self.tokens_processed += self.microbatch_tokens
                    elif bwd_in is not None:
                        bwd_in.put(mb)
                fwd_done += 1
                continue
            # Backward step (training only).
            mb = yield bwd_in.get()
            yield gpu.compute(bwd_work.flops, bwd_work.bytes_touched,
                              layers=bwd_work.layers)
            if stage > 0:
                delivered = yield self._ship(stage, stage - 1, mb, "bwd")
                self._digest.update(b"pp:bwd:" + delivered)
                bwd_out.put(mb)
            else:
                self._digest.update(f"pp:grad:{mb}".encode())
                self.tokens_processed += self.microbatch_tokens
            bwd_done += 1

    def _launch(self, train: bool) -> None:
        sim = self.machine.sim
        n = self.n
        fwd_queues: List[Store] = [Store(sim) for _ in range(n)]
        bwd_queues: List[Store] = [Store(sim) for _ in range(n)] if train else [None] * n
        for mb in range(self.microbatches):
            fwd_queues[0].put(mb)
        for stage in range(n):
            fwd_out = fwd_queues[stage + 1] if stage + 1 < n else None
            bwd_in = bwd_queues[stage] if train else None
            bwd_out = bwd_queues[stage - 1] if train and stage > 0 else None
            sim.process(self._stage(stage, fwd_queues[stage], fwd_out,
                                    bwd_in, bwd_out, train))

    # -- entry points -----------------------------------------------------

    def _run(self, train: bool) -> ParallelResult:
        machine = self.machine
        start = machine.sim.now
        self._launch(train)
        machine.run()
        fabric = machine.interconnect
        return ParallelResult(
            mode="pp",
            system=self.label,
            n_gpus=self.n,
            tokens=self.tokens_processed,
            elapsed_s=machine.sim.now - start,
            checksum=self._digest.hexdigest(),
            hops=fabric.hops if fabric else 0,
            p2p_bytes=fabric.p2p_bytes if fabric else 0,
            bounce_bytes=fabric.bounce_bytes if fabric else 0,
            spec_hit_rate=fabric.hit_rate() if fabric else 0.0,
        )

    def run_inference(self) -> ParallelResult:
        """Stream every microbatch forward through the pipeline."""
        return self._run(train=False)

    def run_finetune_step(self) -> ParallelResult:
        """One optimizer step: forwards + backwards per the schedule."""
        return self._run(train=True)
