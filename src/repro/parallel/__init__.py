"""Multi-GPU parallel inference over the encrypted interconnect.

The deployment shape where PipeLLM's bottleneck is most severe:
under GPU confidential computing, peer-to-peer transfers are
forbidden and every inter-GPU hop bounces through CPU AES-GCM
(:mod:`repro.hw.interconnect`). This package layers on top of it:

* :class:`Communicator` — send / ring all-reduce / ring all-gather
  with deterministic schedules;
* :class:`LinkSpeculator` — the §5 predictor applied to link traffic,
  with a degradation controller that parks speculation under storms;
* :class:`TensorParallelEngine` — Megatron-style sharded decode, two
  all-reduces per layer (the link-bound regime);
* :class:`PipelineParallelEngine` — GPipe/1F1B microbatching (the
  compute-bound contrast).

Run the campaign with ``python -m repro parallel``.
"""

from .collectives import Communicator, ParallelResult, decode_ints, encode_ints
from .pp import PipelineParallelEngine
from .speculate import LinkSpeculator
from .tp import TensorParallelEngine

__all__ = [
    "Communicator",
    "LinkSpeculator",
    "ParallelResult",
    "PipelineParallelEngine",
    "TensorParallelEngine",
    "decode_ints",
    "encode_ints",
]
