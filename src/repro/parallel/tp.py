"""Tensor-parallel decoding over the encrypted interconnect.

Megatron-style layer sharding: every GPU holds 1/N of each layer's
weights, computes its shard of the attention and MLP GEMMs, and the
shards are merged with **two ring all-reduces per layer** (one after
attention, one after the MLP). Decode is memory-bound, so sharding
cuts per-GPU HBM traffic by N — near-linear scaling with CC off.

Under CC the all-reduce hops ride the serialized bridge: per layer,
2·2·(N−1) bounce hops whose inline CPU AES contends on the host's
crypto pools. At realistic activation sizes this erases the compute
win entirely (multi-GPU *slower* than one GPU) — until the link
speculator stages the bounce crypto off the critical path, which is
the campaign's headline recovery.

Functionally each all-reduce sums one small int vector per GPU
(stand-ins for the activation shards, sized by the *logical*
activation bytes); the reduced values feed a running SHA-256 whose
digest makes same-seed runs byte-comparable end to end.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..models.specs import ModelSpec
from ..models.transformer import TransformerCostModel
from .collectives import Communicator, ParallelResult

__all__ = ["TensorParallelEngine"]


class TensorParallelEngine:
    """Decode loop with per-layer sharded compute + ring all-reduces."""

    def __init__(
        self,
        machine,
        spec: ModelSpec,
        batch: int = 32,
        mean_context: int = 512,
        label: str = "",
    ) -> None:
        self.machine = machine
        self.spec = spec
        self.batch = batch
        self.mean_context = mean_context
        self.label = label or ("cc" if machine.cc_enabled else "nocc")
        self.cost = TransformerCostModel(spec)
        self.n = len(machine.gpus)
        self.comm: Optional[Communicator] = (
            Communicator(machine) if self.n > 1 else None
        )
        #: One activation tensor crossing the fabric per all-reduce.
        self.activation_bytes = int(batch * spec.hidden * spec.dtype_bytes)
        self._digest = hashlib.sha256()
        self.tokens_decoded = 0

    # -- the decode loop -------------------------------------------------

    def _decode_layers(self, step: int):
        sim = self.machine.sim
        work = self.cost.decode_layer(self.batch, self.mean_context)
        for layer in range(self.spec.n_layers):
            # Every GPU runs its 1/N shard of the layer concurrently.
            yield sim.all_of([
                gpu.compute(work.flops / self.n, work.bytes_touched / self.n)
                for gpu in self.machine.gpus
            ])
            if self.comm is None:
                self._digest.update(f"tp:{step}:{layer}:solo".encode())
                continue
            # Two merges per layer (post-attention, post-MLP), each a
            # ring all-reduce of the activation tensor.
            for phase in ("attn", "mlp"):
                shards = [
                    [step + 1, layer + 1, gpu_index + 1, len(phase)]
                    for gpu_index in range(self.n)
                ]
                reduced = yield self.comm.all_reduce(
                    shards, self.activation_bytes, collective=f"tp.{phase}"
                )
                expected = [sum(col) for col in zip(*shards)]
                assert all(vec == expected for vec in reduced), \
                    "ring all-reduce diverged from the arithmetic sum"
                self._digest.update(
                    f"tp:{step}:{layer}:{phase}:{reduced[0]}".encode()
                )

    def _main(self, output_tokens: int):
        for step in range(output_tokens):
            yield from self._decode_layers(step)
            self.tokens_decoded += self.batch

    def run(self, output_tokens: int = 4) -> ParallelResult:
        """Decode ``output_tokens`` steps; returns the run's result."""
        machine = self.machine
        start = machine.sim.now
        machine.sim.process(self._main(output_tokens))
        machine.run()
        fabric = machine.interconnect
        return ParallelResult(
            mode="tp",
            system=self.label,
            n_gpus=self.n,
            tokens=self.tokens_decoded,
            elapsed_s=machine.sim.now - start,
            checksum=self._digest.hexdigest(),
            hops=fabric.hops if fabric else 0,
            p2p_bytes=fabric.p2p_bytes if fabric else 0,
            bounce_bytes=fabric.bounce_bytes if fabric else 0,
            spec_hit_rate=fabric.hit_rate() if fabric else 0.0,
        )
