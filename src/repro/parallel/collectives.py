"""Collective communication primitives over the encrypted interconnect.

Implements the deterministic schedules multi-GPU inference lives on —
point-to-point ``send``, ring ``all_reduce`` (reduce-scatter followed
by all-gather, the bandwidth-optimal schedule every NCCL-like library
uses) and ring ``all_gather`` — on top of
:class:`repro.hw.interconnect.Interconnect`.

Collectives are *functional*: values are vectors of Python ints,
encoded big-endian (8 bytes, signed) so every hop ships real bytes
through the per-link AES-GCM sessions and the reduced result can be
checked against the arithmetic sum exactly. Timing follows the
*logical* tensor size (``nbytes``), passed separately, since a few
stand-in ints model a multi-megabyte activation.

Every ring step launches all of its hops concurrently and barriers on
the step (``all_of``), exactly like a synchronous collective kernel:
the step takes as long as its slowest link, and under CC the hops
contend for the host's crypto pools — the serialized-bridge collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim import Event

__all__ = ["Communicator", "ParallelResult", "decode_ints", "encode_ints"]

_INT_BYTES = 8


def encode_ints(values: List[int]) -> bytes:
    """Big-endian 8-byte signed encoding (the wire format of a vector)."""
    return b"".join(
        int(v).to_bytes(_INT_BYTES, "big", signed=True) for v in values
    )


def decode_ints(payload: bytes) -> List[int]:
    if len(payload) % _INT_BYTES:
        raise ValueError("payload is not a whole number of encoded ints")
    return [
        int.from_bytes(payload[i : i + _INT_BYTES], "big", signed=True)
        for i in range(0, len(payload), _INT_BYTES)
    ]


@dataclass
class ParallelResult:
    """Outcome of one parallel-engine run (TP or PP)."""

    mode: str
    system: str
    n_gpus: int
    tokens: int
    elapsed_s: float
    #: Hex digest over every reduced/delivered value, in schedule
    #: order — bit-identical across same-seed runs.
    checksum: str
    hops: int
    p2p_bytes: int
    bounce_bytes: int
    spec_hit_rate: float

    @property
    def throughput(self) -> float:
        """Tokens per simulated second."""
        return self.tokens / self.elapsed_s if self.elapsed_s > 0 else 0.0


class Communicator:
    """Collective schedules for one machine's GPUs."""

    def __init__(self, machine) -> None:
        if machine.interconnect is None:
            raise ValueError("Communicator requires a multi-GPU machine")
        self.machine = machine
        self.sim = machine.sim
        self.interconnect = machine.interconnect
        self.n = len(machine.gpus)
        self.steps = 0

    # -- point to point --------------------------------------------------

    def send(self, src: int, dst: int, values: List[int], nbytes: int = 0,
             tag: str = "", collective: str = "send") -> Event:
        """Ship a vector from ``src`` to ``dst``; event value = the
        delivered vector."""
        done = self.interconnect.transfer(
            src, dst, encode_ints(values), nbytes=nbytes or len(values) * _INT_BYTES,
            tag=tag, collective=collective,
        )
        return self.sim.process(self._decode_after(done))

    def _decode_after(self, done: Event):
        payload = yield done
        return decode_ints(payload)

    # -- ring all-reduce -------------------------------------------------

    def all_reduce(self, vectors: List[List[int]], nbytes: int,
                   collective: str = "all_reduce") -> Event:
        """Elementwise-sum ``vectors`` (one per GPU) across the ring.

        The completion event's value is the per-GPU result list; all
        entries equal the arithmetic sum. ``nbytes`` is the logical
        tensor size; each of the 2·(N−1) ring steps moves one segment
        (``nbytes / N``) per GPU concurrently.
        """
        return self.sim.process(self._all_reduce(vectors, nbytes, collective))

    def _all_reduce(self, vectors: List[List[int]], nbytes: int, collective: str):
        n = self.n
        if len(vectors) != n:
            raise ValueError("need exactly one vector per GPU")
        length = len(vectors[0])
        if any(len(v) != length for v in vectors):
            raise ValueError("vectors must have equal length")
        work = [list(v) for v in vectors]
        if n == 1:
            return work
        bounds = [i * length // n for i in range(n + 1)]
        seg_nbytes = max(1, nbytes // n)

        # Reduce-scatter: after step s, GPU (i+1) holds the partial sum
        # of segment (i−s) over s+1 contributors; after N−1 steps GPU i
        # owns the fully reduced segment (i+1) mod N.
        for step in range(n - 1):
            hops = []
            for i in range(n):
                seg = (i - step) % n
                dst = (i + 1) % n
                data = work[i][bounds[seg]:bounds[seg + 1]]
                done = self.interconnect.transfer(
                    i, dst, encode_ints(data), nbytes=seg_nbytes, collective=collective,
                )
                hops.append((dst, seg, done))
            yield self.sim.all_of([done for _, _, done in hops])
            self.steps += 1
            for dst, seg, done in hops:
                arrived = decode_ints(done.value)
                base = bounds[seg]
                for offset, value in enumerate(arrived):
                    work[dst][base + offset] += value

        # All-gather: circulate each fully reduced segment around the
        # ring so every GPU ends with the complete sum.
        for step in range(n - 1):
            hops = []
            for i in range(n):
                seg = (i + 1 - step) % n
                dst = (i + 1) % n
                data = work[i][bounds[seg]:bounds[seg + 1]]
                done = self.interconnect.transfer(
                    i, dst, encode_ints(data), nbytes=seg_nbytes, collective=collective,
                )
                hops.append((dst, seg, done))
            yield self.sim.all_of([done for _, _, done in hops])
            self.steps += 1
            for dst, seg, done in hops:
                work[dst][bounds[seg]:bounds[seg + 1]] = decode_ints(done.value)
        return work

    # -- ring all-gather -------------------------------------------------

    def all_gather(self, blocks: List[List[int]], nbytes: int,
                   collective: str = "all_gather") -> Event:
        """Collect every GPU's block on every GPU (ring schedule).

        The event's value is a per-GPU list of the N blocks in GPU
        order. ``nbytes`` is the logical size of ONE block.
        """
        return self.sim.process(self._all_gather(blocks, nbytes, collective))

    def _all_gather(self, blocks: List[List[int]], nbytes: int, collective: str):
        n = self.n
        if len(blocks) != n:
            raise ValueError("need exactly one block per GPU")
        out: List[List[List[int]]] = [
            [list(blocks[j]) if j == i else [] for j in range(n)] for i in range(n)
        ]
        for step in range(n - 1):
            hops = []
            for i in range(n):
                block = (i - step) % n
                dst = (i + 1) % n
                done = self.interconnect.transfer(
                    i, dst, encode_ints(out[i][block]),
                    nbytes=max(1, nbytes), collective=collective,
                )
                hops.append((dst, block, done))
            yield self.sim.all_of([done for _, _, done in hops])
            self.steps += 1
            for dst, block, done in hops:
                out[dst][block] = decode_ints(done.value)
        return out
