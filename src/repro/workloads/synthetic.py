"""Synthetic fixed-length workloads (FlexGen-style, §7.1).

The paper evaluates FlexGen with synthetic datasets at fixed
(input, output) shapes — (32, 128) and (256, 32) — and 1000 requests
per test case, batched for maximum throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .requests import Request

__all__ = ["SyntheticShape", "FLEXGEN_32_128", "FLEXGEN_256_32", "synthetic_requests"]


@dataclass(frozen=True)
class SyntheticShape:
    """A fixed (prompt, output) token shape."""

    prompt_len: int
    output_len: int

    @property
    def label(self) -> str:
        return f"in{self.prompt_len}/out{self.output_len}"


FLEXGEN_32_128 = SyntheticShape(prompt_len=32, output_len=128)
FLEXGEN_256_32 = SyntheticShape(prompt_len=256, output_len=32)


def synthetic_requests(shape: SyntheticShape, count: int) -> List[Request]:
    """``count`` identical requests arriving at time zero."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [
        Request(
            request_id=i,
            arrival_time=0.0,
            prompt_len=shape.prompt_len,
            output_len=shape.output_len,
        )
        for i in range(count)
    ]
