"""Request and batch types shared by all workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["Request", "FineTuneBatch"]


@dataclass
class Request:
    """One inference request as the serving engine sees it."""

    request_id: int
    arrival_time: float
    prompt_len: int
    output_len: int
    #: Parallel-sampling width: how many output sequences share the
    #: prompt (vLLM's ``n`` parameter; the paper sweeps 2/4/6).
    parallel_n: int = 1

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_len <= 0:
            raise ValueError("prompt_len and output_len must be positive")
        if self.parallel_n < 1:
            raise ValueError("parallel_n must be >= 1")

    @property
    def total_output_tokens(self) -> int:
        return self.output_len * self.parallel_n


@dataclass
class FineTuneBatch:
    """One fine-tuning micro-batch (sequences already tokenized)."""

    batch_id: int
    seq_lens: List[int] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return sum(self.seq_lens)
