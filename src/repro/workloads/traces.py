"""Synthetic stand-ins for the paper's request traces.

The paper drives vLLM with ShareGPT and Alpaca (§7.1) under Poisson
arrivals. We have neither dataset offline; what the swap behaviour
actually depends on is the *token-length distribution* (long
conversations create the KV pressure; short instructions don't) and
the arrival process. The generators below sample clamped lognormal
lengths matching the published summary statistics of each dataset
(ShareGPT: mean ≈161 input / ≈338 output tokens; Alpaca: ≈19 input /
≈58 output — the numbers reported in the vLLM paper both works build
on), which preserves the relevant behaviour per the substitution rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

from ..sim import SeededRng
from .requests import Request

__all__ = [
    "TraceSpec",
    "SHAREGPT",
    "ALPACA",
    "SHAREGPT_SERVE",
    "ALPACA_SERVE",
    "generate_trace",
    "poisson_trace",
]


@dataclass(frozen=True)
class TraceSpec:
    """Length distribution of one dataset (clamped lognormal)."""

    name: str
    mean_prompt: float
    sigma_prompt: float
    max_prompt: int
    mean_output: float
    sigma_output: float
    max_output: int

    def _params(self, mean: float, sigma_log: float) -> float:
        """Lognormal mu for a target arithmetic mean."""
        return math.log(mean) - 0.5 * sigma_log * sigma_log

    def sample_prompt(self, rng: SeededRng) -> int:
        mu = self._params(self.mean_prompt, self.sigma_prompt)
        return rng.lognormal_int(mu, self.sigma_prompt, 4, self.max_prompt)

    def sample_output(self, rng: SeededRng) -> int:
        mu = self._params(self.mean_output, self.sigma_output)
        return rng.lognormal_int(mu, self.sigma_output, 4, self.max_output)


SHAREGPT = TraceSpec(
    name="sharegpt",
    mean_prompt=161.0, sigma_prompt=1.0, max_prompt=1024,
    mean_output=338.0, sigma_output=0.8, max_output=1024,
)

ALPACA = TraceSpec(
    name="alpaca",
    mean_prompt=19.0, sigma_prompt=0.8, max_prompt=128,
    mean_output=58.0, sigma_output=0.7, max_output=256,
)

#: Online-serving presets: the same published length statistics, with
#: outputs clamped to interactive completion sizes so a latency
#: frontier sweep (many rates × systems × policies) simulates in
#: seconds. ShareGPT keeps its long, heavy-tailed prompts — the KV
#: pressure that makes the CC-vs-PipeLLM gap visible — while Alpaca
#: stays short-instruction shaped.
SHAREGPT_SERVE = TraceSpec(
    name="sharegpt-serve",
    mean_prompt=161.0, sigma_prompt=1.0, max_prompt=512,
    mean_output=48.0, sigma_output=0.8, max_output=128,
)

ALPACA_SERVE = TraceSpec(
    name="alpaca-serve",
    mean_prompt=19.0, sigma_prompt=0.8, max_prompt=128,
    mean_output=24.0, sigma_output=0.7, max_output=64,
)


def generate_trace(
    spec: TraceSpec,
    count: int,
    rng: SeededRng,
    parallel_n: int = 1,
) -> List[Request]:
    """Sample ``count`` requests with zero arrival times (batch mode)."""
    rng_p = rng.fork(f"{spec.name}.prompt")
    rng_o = rng.fork(f"{spec.name}.output")
    return [
        Request(
            request_id=i,
            arrival_time=0.0,
            prompt_len=spec.sample_prompt(rng_p),
            output_len=spec.sample_output(rng_o),
            parallel_n=parallel_n,
        )
        for i in range(count)
    ]


def poisson_trace(
    spec: TraceSpec,
    rate: float,
    duration: float,
    rng: SeededRng,
    parallel_n: int = 1,
) -> List[Request]:
    """Poisson arrivals at ``rate`` req/s for ``duration`` seconds."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng_a = rng.fork(f"{spec.name}.arrivals")
    rng_p = rng.fork(f"{spec.name}.prompt")
    rng_o = rng.fork(f"{spec.name}.output")
    requests: List[Request] = []
    t = 0.0
    index = 0
    while True:
        t += rng_a.exponential(rate)
        if t >= duration:
            break
        requests.append(
            Request(
                request_id=index,
                arrival_time=t,
                prompt_len=spec.sample_prompt(rng_p),
                output_len=spec.sample_output(rng_o),
                parallel_n=parallel_n,
            )
        )
        index += 1
    return requests
