"""Fine-tuning batches: an ultrachat-like stand-in (§7.1).

The paper fine-tunes with LoRA on the ultrachat dataset (~6k
sequences per epoch). Only the token volume per micro-batch matters
for the offloading traffic, so we sample conversation lengths from a
clamped lognormal with ultrachat-like statistics (multi-turn chats,
mean ≈1.1k tokens).
"""

from __future__ import annotations

from typing import List

from ..sim import SeededRng
from .requests import FineTuneBatch

__all__ = ["ultrachat_batches"]

_MEAN_TOKENS = 1100.0
_SIGMA = 0.6
_MAX_TOKENS = 2048


def ultrachat_batches(
    n_batches: int,
    batch_size: int,
    rng: SeededRng,
) -> List[FineTuneBatch]:
    """Sample ``n_batches`` micro-batches of ``batch_size`` sequences."""
    if n_batches <= 0 or batch_size <= 0:
        raise ValueError("n_batches and batch_size must be positive")
    import math

    mu = math.log(_MEAN_TOKENS) - 0.5 * _SIGMA * _SIGMA
    stream = rng.fork("ultrachat")
    return [
        FineTuneBatch(
            batch_id=b,
            seq_lens=[
                stream.lognormal_int(mu, _SIGMA, 64, _MAX_TOKENS)
                for _ in range(batch_size)
            ],
        )
        for b in range(n_batches)
    ]
