"""Workload generators: synthetic shapes, trace stand-ins, fine-tuning."""

from .finetune import ultrachat_batches
from .requests import FineTuneBatch, Request
from .synthetic import (
    FLEXGEN_256_32,
    FLEXGEN_32_128,
    SyntheticShape,
    synthetic_requests,
)
from .traces import ALPACA, SHAREGPT, TraceSpec, generate_trace, poisson_trace

__all__ = [
    "ALPACA",
    "FLEXGEN_256_32",
    "FLEXGEN_32_128",
    "FineTuneBatch",
    "Request",
    "SHAREGPT",
    "SyntheticShape",
    "TraceSpec",
    "generate_trace",
    "poisson_trace",
    "synthetic_requests",
    "ultrachat_batches",
]
