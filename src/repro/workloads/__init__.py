"""Workload generators: synthetic shapes, trace stand-ins, fine-tuning."""

from .finetune import ultrachat_batches
from .requests import FineTuneBatch, Request
from .synthetic import (
    FLEXGEN_256_32,
    FLEXGEN_32_128,
    SyntheticShape,
    synthetic_requests,
)
from .traces import (
    ALPACA,
    ALPACA_SERVE,
    SHAREGPT,
    SHAREGPT_SERVE,
    TraceSpec,
    generate_trace,
    poisson_trace,
)

__all__ = [
    "ALPACA",
    "ALPACA_SERVE",
    "FLEXGEN_256_32",
    "FLEXGEN_32_128",
    "FineTuneBatch",
    "Request",
    "SHAREGPT",
    "SHAREGPT_SERVE",
    "SyntheticShape",
    "TraceSpec",
    "generate_trace",
    "poisson_trace",
    "synthetic_requests",
    "ultrachat_batches",
]
