"""GPU attestation: proving the DH peer is a genuine, unmodified GPU.

A Diffie–Hellman exchange alone protects against passive observers but
not against an active hypervisor impersonating the GPU. On the H100
the driver therefore verifies an SPDM *attestation report*: the GPU
signs its firmware measurements plus the handshake transcript with a
device key whose certificate chains to NVIDIA's root.

The simulation keeps the structure and the failure modes while
replacing the ECDSA certificate chain with an HMAC scheme rooted in a
:class:`RootOfTrust` (the "manufacturer") that provisions each device
with a secret and publishes the corresponding verification records —
the same trust topology, symmetric instead of asymmetric:

* a report over the wrong transcript (MITM) does not verify;
* tampered measurements (modified firmware) do not verify;
* a report from an unprovisioned device does not verify;
* replaying an old report against a fresh handshake does not verify
  (the transcript contains both nonces).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["AttestationError", "AttestationReport", "GpuDevice", "RootOfTrust"]


class AttestationError(Exception):
    """The attestation report failed verification."""


@dataclass(frozen=True)
class AttestationReport:
    """What the GPU returns for a measurement request."""

    device_id: str
    measurements: Tuple[bytes, ...]
    transcript: bytes
    mac: bytes


class RootOfTrust:
    """The manufacturer: provisions devices, verifies their reports."""

    def __init__(self, name: str = "nvidia-root") -> None:
        self.name = name
        self._device_secrets: Dict[str, bytes] = {}

    def provision(self, device_id: str) -> bytes:
        """Install a device secret at 'manufacturing time'."""
        if device_id in self._device_secrets:
            raise ValueError(f"device {device_id} already provisioned")
        secret = hashlib.sha256(f"{self.name}:{device_id}".encode()).digest()
        self._device_secrets[device_id] = secret
        return secret

    def verify(self, report: AttestationReport, expected_measurements=None) -> None:
        """Check a report; raises :class:`AttestationError` on any defect."""
        secret = self._device_secrets.get(report.device_id)
        if secret is None:
            raise AttestationError(f"unknown device {report.device_id}")
        expected_mac = _report_mac(secret, report.measurements, report.transcript)
        if not hmac.compare_digest(expected_mac, report.mac):
            raise AttestationError("report MAC mismatch (tampered or replayed)")
        if expected_measurements is not None and tuple(expected_measurements) != report.measurements:
            raise AttestationError("measurements do not match the golden values")


def _report_mac(secret: bytes, measurements, transcript: bytes) -> bytes:
    payload = b"attest-v1" + b"".join(measurements) + transcript
    return hmac.new(secret, payload, hashlib.sha256).digest()


@dataclass
class GpuDevice:
    """The device-side attester."""

    device_id: str
    secret: bytes
    #: Firmware/VBIOS measurement registers (extended at boot).
    measurements: Tuple[bytes, ...] = field(
        default_factory=lambda: (
            hashlib.sha256(b"h100-vbios-1.0").digest(),
            hashlib.sha256(b"h100-cc-firmware-1.0").digest(),
        )
    )

    def attest(self, transcript: bytes) -> AttestationReport:
        """Sign the measurements bound to this handshake's transcript."""
        return AttestationReport(
            device_id=self.device_id,
            measurements=self.measurements,
            transcript=transcript,
            mac=_report_mac(self.secret, self.measurements, transcript),
        )

    def with_tampered_firmware(self) -> "GpuDevice":
        """A compromised device: same secret, different measurements."""
        return GpuDevice(
            self.device_id,
            self.secret,
            measurements=(hashlib.sha256(b"evil-firmware").digest(),) + self.measurements[1:],
        )


GOLDEN_MEASUREMENTS = GpuDevice("_", b"").measurements
