"""Payload-size tiering: bulk transfers encrypt a digest, not the body.

The simulation separates *timing* (charged from logical transfer
sizes) from *function* (real AES-GCM over small stand-in payloads).
Most payloads are a few dozen bytes, but bulk scenarios — large
collectives, Blackwell-scale activations — can push multi-kilobyte
functional payloads through the pure-crypto layer, where they buy no
additional semantic coverage: one IV is consumed per message whether
the cipher touched 64 bytes or 64 kilobytes.

Tiering caps that cost. Above the active profile's
``tier_threshold`` (see :mod:`repro.fastpath`), the encryption path
substitutes a fixed-size *authenticated digest* of the payload as the
functional plaintext; the original bytes ride alongside the
ciphertext the same way ciphertext rides through untrusted shared
memory. The receiving endpoint verifies the GCM tag over the digest,
recomputes the digest of the carried bytes, and only then releases
the payload — so every corruption that GCM would have caught is still
caught:

* flipped tag or digest-ciphertext bit → GCM tag mismatch, exactly
  as before;
* flipped carried-payload bit → digest mismatch, surfaced as the same
  :class:`AuthenticationError`.

What tiering deliberately does **not** change: stage timings (driven
by ``nbytes_logical``), per-chunk IV accounting (still one IV per
message per direction), audit verdicts, and any payload at or below
the threshold — those keep their exact pre-tiering wire bytes.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional, Tuple

from .. import fastpath
from .gcm import AuthenticationError

__all__ = ["DIGEST_BYTES", "payload_digest", "shrink", "expand"]

_MAGIC = b"tier1"

#: Size of a tiered functional plaintext: magic + 64-bit length +
#: SHA-256 digest.
DIGEST_BYTES = len(_MAGIC) + 8 + 32


def payload_digest(payload: bytes) -> bytes:
    """The fixed-size functional stand-in for a bulk payload."""
    return _MAGIC + struct.pack(">Q", len(payload)) + hashlib.sha256(payload).digest()


def shrink(plaintext: bytes) -> Tuple[bytes, Optional[bytes]]:
    """``(functional_plaintext, carried)`` for the encryption path.

    Payloads at or below the active threshold pass through untouched
    (``carried is None``) and produce bit-identical wire bytes to a
    run without tiering.
    """
    threshold = fastpath.config().tier_threshold
    if threshold and len(plaintext) > threshold:
        return payload_digest(plaintext), bytes(plaintext)
    return plaintext, None


def expand(functional_plaintext: bytes, carried: Optional[bytes]) -> bytes:
    """Reverse of :func:`shrink` after a successful GCM decrypt.

    Raises :class:`AuthenticationError` when the carried bytes do not
    match the authenticated digest — the tiered analogue of a
    tampered-ciphertext tag failure.
    """
    if carried is None:
        return functional_plaintext
    if functional_plaintext != payload_digest(carried):
        raise AuthenticationError("tiered payload digest mismatch")
    return carried
