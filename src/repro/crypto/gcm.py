"""AES-GCM authenticated encryption (NIST SP 800-38D).

This is the cipher mode used by NVIDIA Confidential Computing for all
CPU↔GPU transfers. GCM is the crux of the paper's technical problem:
every encryption consumes a unique 96-bit IV, and on the H100 the IV
is an implicitly synchronized incrementing counter — so speculatively
encrypting the *wrong* data burns an IV and invalidates every
pre-encrypted ciphertext queued behind it (§4.1, §5.3).

The GHASH field multiply is implemented directly over GF(2^128);
correctness is pinned to the NIST test vectors in
``tests/crypto/test_gcm.py``.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from .aes import AES, BLOCK_SIZE

__all__ = ["AesGcm", "AuthenticationError", "TAG_SIZE", "iv_from_counter"]

TAG_SIZE = 16
_R = 0xE1000000000000000000000000000000  # GHASH reduction polynomial.


class AuthenticationError(Exception):
    """Raised when a GCM tag fails to verify.

    In the simulation this is what an IV desynchronization between the
    CVM and the GPU copy engine *looks like*: the receiver derives a
    different counter stream and the tag check fails.
    """


def iv_from_counter(counter: int) -> bytes:
    """Map the channel's integer IV counter to a 96-bit GCM nonce.

    The paper describes the H100 IV as "a unique integer ... increments
    by one with each encryption" (§4.1); we encode it big-endian into
    the 12-byte nonce.
    """
    if counter < 0 or counter >= 1 << 96:
        raise ValueError("IV counter out of range for a 96-bit nonce")
    return counter.to_bytes(12, "big")


def _ghash_mul(x: int, h: int) -> int:
    """Multiply two elements of GF(2^128) per SP 800-38D §6.3."""
    z = 0
    v = h
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _int_from_block(block: bytes) -> int:
    return int.from_bytes(block, "big")


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR ``data`` with ``keystream`` (same length) as one big integer.

    Equivalent to the per-byte loop but runs in C; the CTR layer XORs
    whole payloads, so this keeps even the reference backend usable on
    multi-kilobyte messages.
    """
    n = len(data)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(n, "big")


def _block_from_int(value: int) -> bytes:
    return value.to_bytes(16, "big")


class AesGcm:
    """AES-GCM with 96-bit nonces and 128-bit tags.

    >>> gcm = AesGcm(bytes(16))
    >>> ct, tag = gcm.encrypt(iv_from_counter(1), b"secret", b"")
    >>> gcm.decrypt(iv_from_counter(1), ct, tag, b"")
    b'secret'
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self._h = _int_from_block(self._aes.encrypt_block(bytes(16)))
        self._tables = self._build_ghash_tables(self._h)

    # -- internals --------------------------------------------------------

    @staticmethod
    def _build_ghash_tables(h: int):
        """Per-key byte tables: ``tables[p][b] = (b << 8·(15-p)) · H``.

        Built from the 128 values ``H·x^i`` (each obtained by one
        shift/reduce step), so construction costs ~4k XORs and each
        GHASH block multiply collapses to 16 lookups.
        """
        hbits = [0] * 128
        v = h
        for i in range(128):
            hbits[i] = v
            if v & 1:
                v = (v >> 1) ^ _R
            else:
                v >>= 1
        tables = []
        for position in range(16):
            base = hbits[8 * position : 8 * position + 8]
            row = [0] * 256
            for b in range(256):
                acc = 0
                for j in range(8):
                    if b & (0x80 >> j):
                        acc ^= base[j]
                row[b] = acc
            tables.append(row)
        return tables

    def _mul_h(self, x: int) -> int:
        """Table-driven multiply of ``x`` by the hash key H."""
        tables = self._tables
        y = 0
        for position in range(16):
            y ^= tables[position][(x >> (8 * (15 - position))) & 0xFF]
        return y

    def _ghash(self, aad: bytes, ciphertext: bytes) -> int:
        y = 0
        for chunk in _padded_blocks(aad):
            y = self._mul_h(y ^ _int_from_block(chunk))
        for chunk in _padded_blocks(ciphertext):
            y = self._mul_h(y ^ _int_from_block(chunk))
        lengths = struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        return self._mul_h(y ^ _int_from_block(lengths))

    def _ctr_stream(self, j0: int, nbytes: int) -> bytes:
        out = bytearray()
        counter = j0
        while len(out) < nbytes:
            counter = (counter & ~0xFFFFFFFF) | ((counter + 1) & 0xFFFFFFFF)
            out.extend(self._aes.encrypt_block(_block_from_int(counter)))
        return bytes(out[:nbytes])

    @staticmethod
    def _j0(nonce: bytes) -> int:
        if len(nonce) != 12:
            raise ValueError("this implementation requires a 96-bit nonce")
        return _int_from_block(nonce + b"\x00\x00\x00\x01")

    # -- public API --------------------------------------------------------

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> Tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)`` for ``plaintext`` under ``nonce``."""
        j0 = self._j0(nonce)
        keystream = self._ctr_stream(j0, len(plaintext))
        ciphertext = _xor_bytes(plaintext, keystream)
        s = self._ghash(aad, ciphertext)
        tag = _block_from_int(s ^ _int_from_block(self._aes.encrypt_block(_block_from_int(j0))))
        return ciphertext, tag

    def decrypt(
        self,
        nonce: bytes,
        ciphertext: bytes,
        tag: bytes,
        aad: bytes = b"",
    ) -> bytes:
        """Verify ``tag`` and return the plaintext.

        Raises :class:`AuthenticationError` on any mismatch — wrong
        nonce (IV desync), tampered ciphertext, or wrong AAD.
        """
        j0 = self._j0(nonce)
        s = self._ghash(aad, ciphertext)
        expected = _block_from_int(
            s ^ _int_from_block(self._aes.encrypt_block(_block_from_int(j0)))
        )
        if not _constant_time_eq(expected, tag):
            raise AuthenticationError("GCM tag mismatch")
        keystream = self._ctr_stream(j0, len(ciphertext))
        return _xor_bytes(ciphertext, keystream)

    def try_decrypt(
        self,
        nonce: bytes,
        ciphertext: bytes,
        tag: bytes,
        aad: bytes = b"",
    ) -> Optional[bytes]:
        """Like :meth:`decrypt` but returns None instead of raising."""
        try:
            return self.decrypt(nonce, ciphertext, tag, aad)
        except AuthenticationError:
            return None


def _padded_blocks(data: bytes):
    """Yield 16-byte blocks of ``data``, zero-padding the final block."""
    for offset in range(0, len(data), BLOCK_SIZE):
        chunk = data[offset : offset + BLOCK_SIZE]
        if len(chunk) < BLOCK_SIZE:
            chunk = chunk + bytes(BLOCK_SIZE - len(chunk))
        yield chunk


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
