"""Incrementing Initialization-Vector streams.

NVIDIA CC synchronizes a starting IV between the CVM and the GPU at
session setup; afterwards *both sides increment independently* after
each transfer in a direction (§2.2, Figure 1). An :class:`IvStream` is
one side's view of one direction's counter. Desynchronization —
exactly what a mispredicted speculative encryption causes — is directly
observable as a GCM authentication failure.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .gcm import iv_from_counter

__all__ = ["IvStream", "IvExhaustedError"]


class IvExhaustedError(Exception):
    """The 96-bit counter space ran out (practically unreachable)."""


class IvStream:
    """A monotone IV counter for one direction of a secure channel.

    The stream distinguishes *peeking* (what IV would the next
    encryption use — needed by the speculative predictor) from
    *consuming* (an encryption actually happened; the hardware
    counter advanced).
    """

    MAX = (1 << 96) - 1

    def __init__(self, start: int = 1, name: str = "iv") -> None:
        if start < 0:
            raise ValueError("IV counter must be non-negative")
        self.name = name
        self._next = start
        self.consumed = 0
        self._consume_hooks: List[Callable[[int], None]] = []

    def on_consume(self, hook: Callable[[int], None]) -> None:
        """Observe every consumed counter value (IV audits, tests)."""
        self._consume_hooks.append(hook)

    @property
    def current(self) -> int:
        """The IV the *next* encryption on this stream will consume."""
        return self._next

    def peek(self, ahead: int = 0) -> int:
        """IV that the (1+ahead)-th future encryption would consume."""
        if ahead < 0:
            raise ValueError("ahead must be non-negative")
        return self._next + ahead

    def consume(self) -> int:
        """Advance the counter by one; returns the IV just consumed."""
        if self._next >= self.MAX:
            raise IvExhaustedError(self.name)
        value = self._next
        self._next += 1
        self.consumed += 1
        for hook in self._consume_hooks:
            hook(value)
        return value

    def advance_to(self, target: int) -> int:
        """Jump the counter forward to ``target``; returns steps skipped.

        Used by tests to model explicit resynchronization. Moving
        backwards is forbidden — IVs must never repeat.
        """
        if target < self._next:
            raise ValueError("IV streams can never move backwards")
        skipped = target - self._next
        self._next = target
        return skipped

    def nonce(self, counter: int) -> bytes:
        """Encode an integer counter as the 96-bit GCM nonce."""
        return iv_from_counter(counter)

    def __repr__(self) -> str:
        return f"IvStream({self.name}, next={self._next})"
