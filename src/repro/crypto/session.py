"""Secure-session abstraction binding keys and per-direction IV streams.

A :class:`SecureSession` models the shared state negotiated between
the CVM and the GPU at boot: one AES-GCM key and two independent IV
counters, one per transfer direction (host→device and device→host).
The two endpoints (:class:`SessionEndpoint`) each hold their *own*
counters; the protocol only works while both sides' counters agree,
which is the invariant PipeLLM's NOP padding and pipeline
relinquishing exist to maintain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .backend import make_gcm
from .gcm import AuthenticationError, iv_from_counter
from .ivstream import IvStream
from .tiering import expand, shrink

__all__ = ["SecureSession", "SessionEndpoint", "EncryptedMessage", "tamper_tag"]


@dataclass(frozen=True)
class EncryptedMessage:
    """A ciphertext as it crosses the (untrusted) shared memory.

    The IV is *not* carried on the wire — both endpoints derive it from
    their local counters, exactly as on the H100 (§2.2). We keep the
    counter value used by the sender purely for introspection in tests
    and traces; the receiver never reads it.

    ``carried`` is only set for payload-tiered messages (see
    :mod:`repro.crypto.tiering`): the bulk payload bytes riding
    outside the cipher, bound to it by the authenticated digest the
    ciphertext actually encrypts.
    """

    ciphertext: bytes
    tag: bytes
    sender_iv: int
    nbytes_logical: int
    carried: Optional[bytes] = None


def tamper_tag(message: EncryptedMessage) -> EncryptedMessage:
    """Flip one tag bit: the in-transit corruption the fault plane injects.

    Shared memory is outside the TCB, so an attacker (or a bit flip)
    can mutate the ciphertext or tag at will; GCM guarantees the
    receiver notices. The flipped copy is what goes on the wire — the
    sender's original message object is untouched.
    """
    tag = bytes([message.tag[0] ^ 0x01]) + message.tag[1:]
    return EncryptedMessage(
        message.ciphertext, tag, message.sender_iv, message.nbytes_logical,
        message.carried,
    )


class SessionEndpoint:
    """One side of the channel (the CVM, or the GPU copy engine)."""

    def __init__(self, name: str, key: bytes, tx_start_iv: int, rx_start_iv: int) -> None:
        self.name = name
        self.key = bytes(key)
        self._gcm = make_gcm(self.key)
        self.tx_iv = IvStream(tx_start_iv, name=f"{name}.tx")
        self.rx_iv = IvStream(rx_start_iv, name=f"{name}.rx")

    def attach_audit(self, audit) -> None:
        """Report every consumed (key, stream, IV) to an IV audit.

        ``audit`` needs an ``observe(key, stream, iv)`` method —
        :class:`repro.cluster.tenant.ClusterIvAudit` fits. Consumption
        is exactly one observation per wire message per direction, so
        the audit proves no (key, IV) pair ever reaches the channel
        twice.
        """
        self.tx_iv.on_consume(lambda iv: audit.observe(self.key, self.tx_iv.name, iv))
        self.rx_iv.on_consume(lambda iv: audit.observe(self.key, self.rx_iv.name, iv))

    # -- sending -----------------------------------------------------------

    def encrypt_next(self, plaintext: bytes, nbytes_logical: int = 0) -> EncryptedMessage:
        """Encrypt with this endpoint's next TX IV (consuming it)."""
        counter = self.tx_iv.consume()
        functional, carried = shrink(plaintext)
        ciphertext, tag = self._gcm.encrypt(iv_from_counter(counter), functional)
        return EncryptedMessage(
            ciphertext, tag, counter, nbytes_logical or len(plaintext), carried
        )

    def encrypt_with_iv(self, plaintext: bytes, counter: int, nbytes_logical: int = 0) -> EncryptedMessage:
        """Encrypt with an explicit (speculative) IV, *not* consuming the stream.

        This is what PipeLLM's pipeline does: it guesses the counter a
        future transfer will use. Whether the guess was right is only
        learned when the ciphertext is committed to the channel.
        """
        functional, carried = shrink(plaintext)
        ciphertext, tag = self._gcm.encrypt(iv_from_counter(counter), functional)
        return EncryptedMessage(
            ciphertext, tag, counter, nbytes_logical or len(plaintext), carried
        )

    def commit_tx_iv(self) -> int:
        """Advance the TX counter because a ciphertext was put on the wire."""
        return self.tx_iv.consume()

    # -- receiving ----------------------------------------------------------

    def decrypt_next(self, message: EncryptedMessage) -> bytes:
        """Decrypt with this endpoint's next RX IV (consuming it).

        Raises :class:`AuthenticationError` if the sender used a
        different counter — i.e. the streams desynchronized — or, for
        a tiered message, if the carried bytes fail their
        authenticated digest.
        """
        counter = self.rx_iv.consume()
        plaintext = self._gcm.decrypt(
            iv_from_counter(counter), message.ciphertext, message.tag
        )
        return expand(plaintext, message.carried)


class SecureSession:
    """Factory producing a matched pair of endpoints.

    >>> session = SecureSession(key=bytes(16))
    >>> cpu, gpu = session.endpoints()
    >>> msg = cpu.encrypt_next(b"weights")
    >>> gpu.decrypt_next(msg)
    b'weights'
    """

    def __init__(self, key: bytes, h2d_start_iv: int = 1, d2h_start_iv: int = 1) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("key must be 16, 24 or 32 bytes")
        self.key = bytes(key)
        self.h2d_start_iv = h2d_start_iv
        self.d2h_start_iv = d2h_start_iv

    def endpoints(
        self, cpu_name: str = "cpu", gpu_name: str = "gpu"
    ) -> Tuple[SessionEndpoint, SessionEndpoint]:
        """Return the (cpu, gpu) endpoint pair with synchronized IVs.

        Names feed the endpoints' IV-stream labels; multi-GPU machines
        pass per-link names so audit lanes stay distinguishable.
        """
        cpu = SessionEndpoint(
            cpu_name, self.key, tx_start_iv=self.h2d_start_iv, rx_start_iv=self.d2h_start_iv
        )
        gpu = SessionEndpoint(
            gpu_name, self.key, tx_start_iv=self.d2h_start_iv, rx_start_iv=self.h2d_start_iv
        )
        return cpu, gpu


# Re-exported for convenience of callers catching channel auth failures.
AuthenticationError = AuthenticationError
