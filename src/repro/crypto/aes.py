"""Pure-Python AES block cipher (FIPS-197).

The H100's confidential-computing channel encrypts CPU↔GPU traffic
with AES-GCM (§2.2 of the paper). This module provides the AES-128 /
AES-192 / AES-256 block primitive used by :mod:`repro.crypto.gcm`.

The implementation is a straightforward, table-driven encryption-only
core plus the inverse cipher for tests. It is deliberately simple and
readable rather than fast — transfers in the simulation carry small
*payloads* (the timing layer charges cost from logical sizes), so
throughput of the Python cipher is irrelevant; only its correctness
matters for the IV/replay semantics the paper relies on.

Known-answer tests against the FIPS-197 vectors live in
``tests/crypto/test_aes.py``.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

# -- S-box construction (computed once at import) -----------------------


def _build_sbox() -> Tuple[bytes, bytes]:
    """Build the AES S-box and its inverse from GF(2^8) arithmetic."""

    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    # Multiplicative inverses via exponentiation tables.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    exp[255] = exp[0]

    def gf_inv(a: int) -> int:
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        inverse = gf_inv(value)
        affine = inverse
        for shift in (1, 2, 3, 4):
            affine ^= ((inverse << shift) | (inverse >> (8 - shift))) & 0xFF
        affine ^= 0x63
        sbox[value] = affine
        inv_sbox[affine] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiply used by (Inv)MixColumns."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


def _build_ttables():
    """Combined SubBytes+ShiftRows+MixColumns lookup tables.

    ``T0[x]`` packs the MixColumns contribution of an input byte in
    row 0: ``(2·S[x], S[x], S[x], 3·S[x])`` as one 32-bit word;
    T1..T3 are the row-1..3 variants. One AES round then reduces to
    16 table lookups — the classic software optimization, which keeps
    the functional crypto layer fast enough for full serving traces.
    """
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        a = _SBOX[x]
        a2 = _gmul(a, 2)
        a3 = _gmul(a, 3)
        t0.append((a2 << 24) | (a << 16) | (a << 8) | a3)
        t1.append((a3 << 24) | (a2 << 16) | (a << 8) | a)
        t2.append((a << 24) | (a3 << 16) | (a2 << 8) | a)
        t3.append((a << 24) | (a << 16) | (a3 << 8) | a2)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_ttables()


class AES:
    """AES block cipher with 128/192/256-bit keys.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length: {len(key)}")
        self.key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        # Round keys as big-endian 32-bit column words for the
        # table-driven fast path.
        self._rk_words = [
            [int.from_bytes(bytes(rk[4 * c : 4 * c + 4]), "big") for c in range(4)]
            for rk in self._round_keys
        ]

    # -- key schedule ----------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group words into 16-byte round keys (column-major state order).
        round_keys = []
        for round_index in range(self._rounds + 1):
            chunk = words[4 * round_index : 4 * round_index + 4]
            round_keys.append([b for word in chunk for b in word])
        return round_keys

    # -- round transforms --------------------------------------------------

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # State is column-major: byte (row r, col c) lives at 4*c + r.
        for row in range(1, 4):
            values = [state[4 * col + row] for col in range(4)]
            values = values[row:] + values[:row]
            for col in range(4):
                state[4 * col + row] = values[col]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for row in range(1, 4):
            values = [state[4 * col + row] for col in range(4)]
            values = values[-row:] + values[:-row]
            for col in range(4):
                state[4 * col + row] = values[col]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
            state[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
            state[4 * col + 1] = _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
            state[4 * col + 2] = _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
            state[4 * col + 3] = _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)

    # -- block operations ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (table-driven fast path)."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be exactly 16 bytes")
        rk = self._rk_words
        c0 = int.from_bytes(block[0:4], "big") ^ rk[0][0]
        c1 = int.from_bytes(block[4:8], "big") ^ rk[0][1]
        c2 = int.from_bytes(block[8:12], "big") ^ rk[0][2]
        c3 = int.from_bytes(block[12:16], "big") ^ rk[0][3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        for round_index in range(1, self._rounds):
            k = rk[round_index]
            n0 = t0[c0 >> 24] ^ t1[(c1 >> 16) & 0xFF] ^ t2[(c2 >> 8) & 0xFF] ^ t3[c3 & 0xFF] ^ k[0]
            n1 = t0[c1 >> 24] ^ t1[(c2 >> 16) & 0xFF] ^ t2[(c3 >> 8) & 0xFF] ^ t3[c0 & 0xFF] ^ k[1]
            n2 = t0[c2 >> 24] ^ t1[(c3 >> 16) & 0xFF] ^ t2[(c0 >> 8) & 0xFF] ^ t3[c1 & 0xFF] ^ k[2]
            n3 = t0[c3 >> 24] ^ t1[(c0 >> 16) & 0xFF] ^ t2[(c1 >> 8) & 0xFF] ^ t3[c2 & 0xFF] ^ k[3]
            c0, c1, c2, c3 = n0, n1, n2, n3
        sbox = _SBOX
        k = rk[self._rounds]
        o0 = ((sbox[c0 >> 24] << 24) | (sbox[(c1 >> 16) & 0xFF] << 16)
              | (sbox[(c2 >> 8) & 0xFF] << 8) | sbox[c3 & 0xFF]) ^ k[0]
        o1 = ((sbox[c1 >> 24] << 24) | (sbox[(c2 >> 16) & 0xFF] << 16)
              | (sbox[(c3 >> 8) & 0xFF] << 8) | sbox[c0 & 0xFF]) ^ k[1]
        o2 = ((sbox[c2 >> 24] << 24) | (sbox[(c3 >> 16) & 0xFF] << 16)
              | (sbox[(c0 >> 8) & 0xFF] << 8) | sbox[c1 & 0xFF]) ^ k[2]
        o3 = ((sbox[c3 >> 24] << 24) | (sbox[(c0 >> 16) & 0xFF] << 16)
              | (sbox[(c1 >> 8) & 0xFF] << 8) | sbox[c2 & 0xFF]) ^ k[3]
        return (
            o0.to_bytes(4, "big") + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big") + o3.to_bytes(4, "big")
        )

    def encrypt_block_reference(self, block: bytes) -> bytes:
        """Readable FIPS-197 round-by-round cipher; pins the fast path."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be exactly 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self._rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (used only by tests; GCM is CTR-based)."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be exactly 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for round_index in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
