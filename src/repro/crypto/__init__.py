"""Cryptographic substrate: AES, AES-GCM, IV streams, secure sessions."""

from .aes import AES, BLOCK_SIZE
from .attestation import (
    AttestationError,
    AttestationReport,
    GOLDEN_MEASUREMENTS,
    GpuDevice,
    RootOfTrust,
)
from .handshake import (
    DhKeyPair,
    HandshakeMessage,
    SessionHandshake,
    derive_link_session,
    hkdf,
)
from .gcm import AesGcm, AuthenticationError, TAG_SIZE, iv_from_counter
from .ivstream import IvExhaustedError, IvStream
from .session import EncryptedMessage, SecureSession, SessionEndpoint, tamper_tag

__all__ = [
    "AES",
    "AttestationError",
    "AttestationReport",
    "DhKeyPair",
    "GOLDEN_MEASUREMENTS",
    "GpuDevice",
    "HandshakeMessage",
    "RootOfTrust",
    "SessionHandshake",
    "derive_link_session",
    "hkdf",
    "AesGcm",
    "AuthenticationError",
    "BLOCK_SIZE",
    "EncryptedMessage",
    "IvExhaustedError",
    "IvStream",
    "SecureSession",
    "SessionEndpoint",
    "tamper_tag",
    "TAG_SIZE",
    "iv_from_counter",
]
