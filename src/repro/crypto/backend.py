"""Pluggable AES-GCM backends behind one functional interface.

Every confidential byte in the simulation flows through
:class:`repro.crypto.session.SessionEndpoint`, which asks this module
for a GCM object via :func:`make_gcm`. Three interchangeable backends
implement the same ``encrypt / decrypt / try_decrypt`` surface:

``reference``
    The pure-Python table-driven :class:`repro.crypto.gcm.AesGcm`,
    pinned block-for-block to the NIST CAVP vectors. It is the
    conformance oracle: every other backend must be byte-identical to
    it (``tests/crypto/test_backend_equivalence.py``), and it is the
    baseline the wall-clock floor in ``tests/bench/test_wallclock.py``
    is measured against.

``numpy``
    Batched T-table AES-CTR: all counter blocks of a message are
    pushed through the AES rounds as vectorized uint32 lanes, and the
    per-key GHASH tables are built with a Gray-code recurrence (one
    XOR per entry instead of eight). Dependency-gated on numpy;
    byte-identical to the reference by construction (same tables,
    same field math).

``cryptography``
    The ``cryptography`` package's AESGCM (hardware AES-NI /
    CLMUL via OpenSSL) — fastest by ~2 orders of magnitude.
    Dependency-gated; AES-GCM is fully deterministic so its output is
    byte-identical to the reference for every (key, nonce, aad,
    plaintext).

``fast`` resolves to the first available backend in the order
``cryptography → numpy → reference``.

GCM objects are stateless, so :func:`make_gcm` memoizes them per
(backend, key): the two endpoints of every :class:`SecureSession`
share one instance, and a re-handshaked session (same seed, e.g.
across bench campaigns) skips key-schedule and GHASH-table setup
entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import fastpath
from .aes import AES, _SBOX, _T0, _T1, _T2, _T3
from .gcm import AesGcm, AuthenticationError, _R

__all__ = [
    "CryptographyGcm",
    "NumpyGcm",
    "available_backends",
    "backend_available",
    "make_gcm",
    "resolve_backend",
]

#: Auto-detect order for the ``fast`` alias.
FAST_ORDER = ("cryptography", "numpy", "reference")

#: Below this many CTR blocks the scalar T-table path beats numpy's
#: fixed per-call array overhead; batching only pays off for bulk
#: payloads.
NUMPY_MIN_BLOCKS = 8


# -- numpy backend -------------------------------------------------------

_np = None
_NP_TABLES: Optional[tuple] = None


def _numpy():
    global _np
    if _np is None:
        import numpy  # gated: backend reports unavailable without it

        _np = numpy
    return _np


def _np_tables():
    """The AES T-tables and S-box as numpy arrays (built once)."""
    global _NP_TABLES
    if _NP_TABLES is None:
        np = _numpy()
        _NP_TABLES = (
            np.array(_T0, dtype=np.uint32),
            np.array(_T1, dtype=np.uint32),
            np.array(_T2, dtype=np.uint32),
            np.array(_T3, dtype=np.uint32),
            np.frombuffer(_SBOX, dtype=np.uint8).astype(np.uint32),
        )
    return _NP_TABLES


def _ctr_blocks_numpy(aes: AES, j0: int, nblocks: int) -> bytes:
    """AES-CTR keystream for counters ``j0+1 .. j0+nblocks``, batched.

    Identical to ``nblocks`` sequential ``encrypt_block`` calls: the
    same T-tables, the same round keys, the same 32-bit counter wrap
    on the low word — just with every block in one vector lane.
    """
    np = _numpy()
    t0, t1, t2, t3, sbox = _np_tables()
    rk = aes._rk_words
    low = j0 & 0xFFFFFFFF
    c0 = np.full(nblocks, ((j0 >> 96) & 0xFFFFFFFF) ^ rk[0][0], dtype=np.uint32)
    c1 = np.full(nblocks, ((j0 >> 64) & 0xFFFFFFFF) ^ rk[0][1], dtype=np.uint32)
    c2 = np.full(nblocks, ((j0 >> 32) & 0xFFFFFFFF) ^ rk[0][2], dtype=np.uint32)
    counters = (np.arange(1, nblocks + 1, dtype=np.uint64) + np.uint64(low)) & np.uint64(0xFFFFFFFF)
    c3 = counters.astype(np.uint32) ^ np.uint32(rk[0][3])
    for round_index in range(1, aes._rounds):
        k = rk[round_index]
        n0 = t0[c0 >> 24] ^ t1[(c1 >> 16) & 0xFF] ^ t2[(c2 >> 8) & 0xFF] ^ t3[c3 & 0xFF] ^ k[0]
        n1 = t0[c1 >> 24] ^ t1[(c2 >> 16) & 0xFF] ^ t2[(c3 >> 8) & 0xFF] ^ t3[c0 & 0xFF] ^ k[1]
        n2 = t0[c2 >> 24] ^ t1[(c3 >> 16) & 0xFF] ^ t2[(c0 >> 8) & 0xFF] ^ t3[c1 & 0xFF] ^ k[2]
        n3 = t0[c3 >> 24] ^ t1[(c0 >> 16) & 0xFF] ^ t2[(c1 >> 8) & 0xFF] ^ t3[c2 & 0xFF] ^ k[3]
        c0, c1, c2, c3 = n0, n1, n2, n3
    k = rk[aes._rounds]
    o0 = ((sbox[c0 >> 24] << 24) | (sbox[(c1 >> 16) & 0xFF] << 16)
          | (sbox[(c2 >> 8) & 0xFF] << 8) | sbox[c3 & 0xFF]) ^ np.uint32(k[0])
    o1 = ((sbox[c1 >> 24] << 24) | (sbox[(c2 >> 16) & 0xFF] << 16)
          | (sbox[(c3 >> 8) & 0xFF] << 8) | sbox[c0 & 0xFF]) ^ np.uint32(k[1])
    o2 = ((sbox[c2 >> 24] << 24) | (sbox[(c3 >> 16) & 0xFF] << 16)
          | (sbox[(c0 >> 8) & 0xFF] << 8) | sbox[c1 & 0xFF]) ^ np.uint32(k[2])
    o3 = ((sbox[c3 >> 24] << 24) | (sbox[(c0 >> 16) & 0xFF] << 16)
          | (sbox[(c1 >> 8) & 0xFF] << 8) | sbox[c2 & 0xFF]) ^ np.uint32(k[3])
    out = np.empty((nblocks, 4), dtype=">u4")
    out[:, 0] = o0
    out[:, 1] = o1
    out[:, 2] = o2
    out[:, 3] = o3
    return out.tobytes()


class NumpyGcm(AesGcm):
    """AES-GCM with batched CTR lanes and Gray-code GHASH setup.

    Subclasses the reference so the tag path (GHASH chain, J0
    encryption, constant-time compare) is *shared code*, not a
    reimplementation — only the keystream batching and the per-key
    table construction differ, and both are exact.
    """

    @staticmethod
    def _build_ghash_tables(h: int):
        """Same tables as the reference, via the Gray-code recurrence.

        ``row[b] = row[b ^ lsb(b)] ^ base[bit(lsb)]`` builds each
        256-entry row with one XOR per entry instead of up to eight,
        which makes per-key setup ~6× cheaper while producing
        bit-identical tables.
        """
        hbits = [0] * 128
        v = h
        for i in range(128):
            hbits[i] = v
            if v & 1:
                v = (v >> 1) ^ _R
            else:
                v >>= 1
        tables = []
        for position in range(16):
            base = hbits[8 * position : 8 * position + 8]
            row = [0] * 256
            for b in range(1, 256):
                lsb = b & -b
                row[b] = row[b ^ lsb] ^ base[8 - lsb.bit_length()]
            tables.append(row)
        return tables

    def _ctr_stream(self, j0: int, nbytes: int) -> bytes:
        nblocks = -(-nbytes // 16)
        if nblocks < NUMPY_MIN_BLOCKS:
            return super()._ctr_stream(j0, nbytes)
        return _ctr_blocks_numpy(self._aes, j0, nblocks)[:nbytes]


# -- cryptography backend ------------------------------------------------


class CryptographyGcm:
    """AES-GCM via the ``cryptography`` package (OpenSSL AES-NI)."""

    def __init__(self, key: bytes) -> None:
        from cryptography.hazmat.primitives.ciphers.aead import AESGCM

        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length: {len(key)}")
        self._aead = AESGCM(bytes(key))

    @staticmethod
    def _check_nonce(nonce: bytes) -> None:
        if len(nonce) != 12:
            raise ValueError("this implementation requires a 96-bit nonce")

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> Tuple[bytes, bytes]:
        self._check_nonce(nonce)
        blob = self._aead.encrypt(nonce, bytes(plaintext), bytes(aad))
        return blob[:-16], blob[-16:]

    def decrypt(self, nonce: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        self._check_nonce(nonce)
        if len(tag) != 16:
            raise AuthenticationError("GCM tag mismatch")
        from cryptography.exceptions import InvalidTag

        try:
            return self._aead.decrypt(nonce, bytes(ciphertext) + bytes(tag), bytes(aad))
        except InvalidTag:
            raise AuthenticationError("GCM tag mismatch") from None

    def try_decrypt(self, nonce: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> Optional[bytes]:
        try:
            return self.decrypt(nonce, ciphertext, tag, aad)
        except AuthenticationError:
            return None


# -- registry ------------------------------------------------------------

_FACTORIES = {
    "reference": AesGcm,
    "numpy": NumpyGcm,
    "cryptography": CryptographyGcm,
}

_availability: Dict[str, bool] = {"reference": True}


def backend_available(name: str) -> bool:
    """True if ``name`` can be instantiated in this environment."""
    if name == "fast":
        return True
    if name not in _FACTORIES:
        return False
    cached = _availability.get(name)
    if cached is not None:
        return cached
    try:
        if name == "numpy":
            _numpy()
        elif name == "cryptography":
            from cryptography.hazmat.primitives.ciphers.aead import AESGCM  # noqa: F401
        ok = True
    except ImportError:
        ok = False
    _availability[name] = ok
    return ok


def available_backends() -> List[str]:
    """Concrete backends usable here, in fast-alias resolution order."""
    return [name for name in FAST_ORDER if backend_available(name)]


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend name (or the active profile's) to a concrete one.

    ``"fast"`` picks the quickest available implementation; asking for
    a gated backend whose dependency is missing raises so the caller
    can fall back explicitly rather than silently changing speed class.
    """
    name = name or fastpath.config().crypto_backend
    if name == "fast":
        return available_backends()[0]
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown crypto backend {name!r}; choose from "
            f"{sorted(_FACTORIES)} or 'fast'"
        )
    if not backend_available(name):
        raise RuntimeError(f"crypto backend {name!r} is not available here")
    return name


_CACHE_MAX = 1024
_gcm_cache: "OrderedDict[Tuple[str, bytes], object]" = OrderedDict()


def make_gcm(key: bytes, backend: Optional[str] = None):
    """A GCM object for ``key`` under the active (or given) backend.

    Instances are stateless and memoized per (backend, key); the cache
    is bounded FIFO so long-running multi-tenant scenarios cannot grow
    it without bound.
    """
    name = resolve_backend(backend)
    cache_key = (name, bytes(key))
    gcm = _gcm_cache.get(cache_key)
    if gcm is None:
        gcm = _FACTORIES[name](key)
        _gcm_cache[cache_key] = gcm
        if len(_gcm_cache) > _CACHE_MAX:
            _gcm_cache.popitem(last=False)
    return gcm
