"""SPDM-style secure-session establishment (CVM driver ↔ GPU).

The paper assumes the CC channel simply exists: "the initial IV is
synchronized during system initialization" (§2.2). On real hardware
that initialization is an SPDM exchange between the confidential VM's
driver and the GPU: the two sides run an authenticated key exchange,
derive the AES-GCM session key and the starting IVs from the shared
secret, and bind everything to the handshake transcript.

This module implements that bring-up concretely enough that its
failure modes are observable:

* finite-field Diffie–Hellman (the RFC 3526 2048-bit MODP group) for
  the shared secret;
* HKDF-SHA256 for key and IV derivation, salted with both nonces and
  bound to the transcript hash;
* transcript binding — a man-in-the-middle who substitutes either
  public key produces endpoints whose very first transfer fails GCM
  authentication.

Device *authentication* (proving the responder is a genuine GPU, not
just any DH peer) is layered on top by :mod:`repro.crypto.attestation`.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Tuple

from .. import fastpath
from .session import SecureSession

__all__ = [
    "DhKeyPair",
    "HandshakeMessage",
    "SessionHandshake",
    "derive_link_session",
    "hkdf",
]

# RFC 3526, group 14 (2048-bit MODP).
_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_G = 2


def hkdf(secret: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """HKDF-SHA256 (RFC 5869) extract-and-expand."""
    if length <= 0 or length > 255 * 32:
        raise ValueError("invalid HKDF output length")
    prk = hmac.new(salt or b"\x00" * 32, secret, hashlib.sha256).digest()
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_link_session(root_key: bytes, link: str) -> SecureSession:
    """Derive one inter-GPU link's :class:`SecureSession` from a root key.

    Multi-GPU machines need an independent AES-GCM key and IV pair per
    *directed link leg* (GPU→bounce-buffer and bounce-buffer→GPU are
    separate channels with separate counters). All of them chain off
    the machine's session key via HKDF with a per-link info string, so

    * two legs (or two links) never share a (key, IV) space, and
    * both ends of the handshake derive identical link keys without
      any additional message exchange — exactly how SPDM secondary
      sessions are keyed off the primary session secret.

    ``link`` is a stable label such as ``"link:0->1:up"``.
    """
    okm = hkdf(
        root_key,
        salt=b"pipellm-interconnect",
        info=b"cc-link:" + link.encode(),
        length=16 + 8,
    )
    key = okm[:16]
    h2d_iv = 1 + int.from_bytes(okm[16:20], "big") % (1 << 32)
    d2h_iv = 1 + int.from_bytes(okm[20:24], "big") % (1 << 32)
    return SecureSession(key, h2d_start_iv=h2d_iv, d2h_start_iv=d2h_iv)


# Key generation and shared-secret computation are pure functions of
# their inputs, and deterministic seeding means scenarios re-derive the
# same handful of key pairs over and over (every bench campaign re-runs
# the same seeded bring-up). Memoizing the modexps is therefore
# behaviour-preserving caching, not an approximation. Bounded so a
# pathological scenario cannot grow them without limit.
_CACHE_MAX = 4096
_keypair_cache: Dict[Tuple[bytes, bool], "DhKeyPair"] = {}
_secret_cache: Dict[Tuple[int, int], bytes] = {}


@dataclass(frozen=True)
class DhKeyPair:
    """A Diffie–Hellman key pair over the MODP group."""

    private: int
    public: int

    @classmethod
    def generate(cls, seed: bytes) -> "DhKeyPair":
        """Deterministic key generation from a seed (the simulation has
        no OS entropy source; callers pass per-endpoint seeds).

        Under the fast profile the private exponent is 256 bits instead
        of full group width — standard short-exponent DH (RFC 7919
        §5.2: the exponent only needs twice the target security level),
        which cuts each modexp ~8×. Exponent width changes the derived
        keys, so it is part of the profile, never silently mixed.
        """
        short = fastpath.config().short_dh_exponent
        cache_key = (bytes(seed), short)
        cached = _keypair_cache.get(cache_key)
        if cached is not None:
            return cached
        digest = hashlib.sha256(b"dh-private:" + seed).digest()
        if short:
            # Top bit forced so the exponent is always exactly 256 bits.
            private = int.from_bytes(digest, "big") | (1 << 255)
        else:
            private = int.from_bytes(digest * 8, "big") % (_P - 3) + 2
        pair = cls(private, pow(_G, private, _P))
        if len(_keypair_cache) < _CACHE_MAX:
            _keypair_cache[cache_key] = pair
        return pair

    def shared_secret(self, peer_public: int) -> bytes:
        if not 2 <= peer_public <= _P - 2:
            raise ValueError("peer public key out of range")
        cache_key = (self.private, peer_public)
        cached = _secret_cache.get(cache_key)
        if cached is not None:
            return cached
        secret = pow(peer_public, self.private, _P)
        result = secret.to_bytes((_P.bit_length() + 7) // 8, "big")
        if len(_secret_cache) < _CACHE_MAX:
            _secret_cache[cache_key] = result
        return result


@dataclass(frozen=True)
class HandshakeMessage:
    """One side's key-exchange contribution (what crosses the bus)."""

    role: str           # "driver" or "gpu"
    public_key: int
    nonce: bytes


class SessionHandshake:
    """Two-message key exchange producing a :class:`SecureSession`.

    Usage::

        driver = SessionHandshake("driver", seed=b"host-seed")
        gpu = SessionHandshake("gpu", seed=b"device-seed")
        driver_session = driver.complete(gpu.message())
        gpu_session = gpu.complete(driver.message())
        # Both sides now derive the SAME key and starting IVs.
    """

    _KEY_BYTES = 16
    _IV_SPACE = 1 << 32  # Starting IVs land in a 32-bit window.

    def __init__(self, role: str, seed: bytes) -> None:
        if role not in ("driver", "gpu"):
            raise ValueError("role must be 'driver' or 'gpu'")
        self.role = role
        self.keypair = DhKeyPair.generate(seed + role.encode())
        self.nonce = hashlib.sha256(b"nonce:" + seed + role.encode()).digest()[:16]

    def message(self) -> HandshakeMessage:
        """The contribution this side sends over the (untrusted) bus."""
        return HandshakeMessage(self.role, self.keypair.public, self.nonce)

    def transcript(self, peer: HandshakeMessage) -> bytes:
        """Order-independent transcript hash binding both contributions."""
        driver, gpu = (self.message(), peer) if self.role == "driver" else (peer, self.message())
        material = (
            b"pipellm-cc-v1"
            + driver.public_key.to_bytes(256, "big")
            + driver.nonce
            + gpu.public_key.to_bytes(256, "big")
            + gpu.nonce
        )
        return hashlib.sha256(material).digest()

    def derive(self, peer: HandshakeMessage):
        """Derive (key, h2d_start_iv, d2h_start_iv) from the exchange."""
        if peer.role == self.role:
            raise ValueError("handshake requires one driver and one gpu")
        shared = self.keypair.shared_secret(peer.public_key)
        transcript = self.transcript(peer)
        okm = hkdf(shared, salt=transcript, info=b"cc-session", length=self._KEY_BYTES + 8)
        key = okm[: self._KEY_BYTES]
        h2d_iv = 1 + int.from_bytes(okm[self._KEY_BYTES : self._KEY_BYTES + 4], "big") % self._IV_SPACE
        d2h_iv = 1 + int.from_bytes(okm[self._KEY_BYTES + 4 :], "big") % self._IV_SPACE
        return key, h2d_iv, d2h_iv

    def complete(self, peer: HandshakeMessage) -> SecureSession:
        """Finish the handshake: a session with synchronized IVs."""
        key, h2d_iv, d2h_iv = self.derive(peer)
        return SecureSession(key, h2d_start_iv=h2d_iv, d2h_start_iv=d2h_iv)

    def complete_link(self, peer: HandshakeMessage, link: str) -> SecureSession:
        """Derive one inter-GPU link's session from this handshake.

        Both sides compute the same link key because both chain the
        same HKDF off the handshake-derived session key — no extra
        round trip per link (see :func:`derive_link_session`).
        """
        key, _, _ = self.derive(peer)
        return derive_link_session(key, link)
