"""Span tracing and ASCII timeline rendering.

The paper's §4.1 figure contrasts NVIDIA CC (encrypt → transfer →
compute serialized on the critical path) with PipeLLM (encryption
pipelined off it). :class:`SpanTracer` records named spans from any
instrumented component and :func:`render_gantt` draws them as an ASCII
Gantt chart, so that illustration can be *regenerated from an actual
simulation* rather than drawn by hand — see ``examples/timeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Span", "SpanTracer", "render_gantt"]


@dataclass(frozen=True)
class Span:
    """One closed interval of activity on a named lane."""

    lane: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects spans; inert (and nearly free) unless enabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        # Stack of open start times per (lane, label): concurrent
        # same-label spans on one lane nest instead of overwriting.
        self._open: Dict[tuple, List[float]] = {}

    def record(self, lane: str, label: str, start: float, end: float) -> None:
        """Record a closed span directly."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError("span ends before it starts")
        self.spans.append(Span(lane, label, start, end))

    def begin(self, lane: str, label: str, now: float) -> None:
        """Open a span; close it with :meth:`end`. Nesting is LIFO."""
        if self.enabled:
            self._open.setdefault((lane, label), []).append(now)

    def end(self, lane: str, label: str, now: float) -> None:
        stack = self._open.get((lane, label))
        if not stack:
            return
        start = stack.pop()
        if not stack:
            del self._open[(lane, label)]
        if self.enabled:
            self.record(lane, label, start, now)

    def open_depth(self, lane: str, label: str) -> int:
        """How many spans are currently open under (lane, label)."""
        return len(self._open.get((lane, label), ()))

    def lanes(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.lane not in seen:
                seen.append(span.lane)
        return seen

    def busy_time(self, lane: str) -> float:
        """Total (possibly overlapping) span time on one lane."""
        return sum(span.duration for span in self.spans if span.lane == lane)


def render_gantt(
    tracer: SpanTracer,
    width: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
    lanes: Optional[Sequence[str]] = None,
    lane_prefix: Optional[str] = None,
) -> str:
    """Render spans as an ASCII Gantt chart.

    Each lane becomes one row; spans are drawn with the first letter of
    their label. Overlap within a lane shows as ``#``. ``lane_prefix``
    keeps only lanes whose name starts with the prefix (ignored when an
    explicit ``lanes`` list is given).
    """
    spans = tracer.spans
    if not spans:
        return "(no spans recorded)"
    t0 = start if start is not None else min(s.start for s in spans)
    t1 = end if end is not None else max(s.end for s in spans)
    if t1 <= t0:
        return "(empty time window)"
    if lanes:
        lane_names = list(lanes)
    else:
        lane_names = tracer.lanes()
        if lane_prefix is not None:
            lane_names = [l for l in lane_names if l.startswith(lane_prefix)]
    if not lane_names:
        return "(no matching lanes)"
    label_width = max(len(name) for name in lane_names) + 2
    scale = width / (t1 - t0)

    lines = []
    header = " " * label_width + f"t={t0 * 1e3:.2f}ms" + " " * 4 + f"(span {1e3 * (t1 - t0):.2f} ms)"
    lines.append(header)
    for lane in lane_names:
        cells = [" "] * width
        for span in spans:
            if span.lane != lane or span.end < t0 or span.start > t1:
                continue
            lo = max(0, int((span.start - t0) * scale))
            hi = min(width - 1, int((span.end - t0) * scale))
            glyph = (span.label[:1] or "*").lower()
            for i in range(lo, hi + 1):
                cells[i] = glyph if cells[i] == " " else "#"
        lines.append(lane.ljust(label_width) + "".join(cells))
    return "\n".join(lines)
