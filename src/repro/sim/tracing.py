"""Span tracing and ASCII timeline rendering.

The paper's §4.1 figure contrasts NVIDIA CC (encrypt → transfer →
compute serialized on the critical path) with PipeLLM (encryption
pipelined off it). :class:`SpanTracer` records named spans from any
instrumented component and :func:`render_gantt` draws them as an ASCII
Gantt chart, so that illustration can be *regenerated from an actual
simulation* rather than drawn by hand — see ``examples/timeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Span", "SpanTracer", "render_gantt"]


@dataclass(frozen=True)
class Span:
    """One closed interval of activity on a named lane."""

    lane: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects spans; inert (and nearly free) unless enabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self._open: Dict[tuple, float] = {}

    def record(self, lane: str, label: str, start: float, end: float) -> None:
        """Record a closed span directly."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError("span ends before it starts")
        self.spans.append(Span(lane, label, start, end))

    def begin(self, lane: str, label: str, now: float) -> None:
        """Open a span; close it with :meth:`end`."""
        if self.enabled:
            self._open[(lane, label)] = now

    def end(self, lane: str, label: str, now: float) -> None:
        start = self._open.pop((lane, label), None)
        if self.enabled and start is not None:
            self.record(lane, label, start, now)

    def lanes(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.lane not in seen:
                seen.append(span.lane)
        return seen

    def busy_time(self, lane: str) -> float:
        """Total (possibly overlapping) span time on one lane."""
        return sum(span.duration for span in self.spans if span.lane == lane)


def render_gantt(
    tracer: SpanTracer,
    width: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
    lanes: Optional[Sequence[str]] = None,
) -> str:
    """Render spans as an ASCII Gantt chart.

    Each lane becomes one row; spans are drawn with the first letter of
    their label. Overlap within a lane shows as ``#``.
    """
    spans = tracer.spans
    if not spans:
        return "(no spans recorded)"
    t0 = start if start is not None else min(s.start for s in spans)
    t1 = end if end is not None else max(s.end for s in spans)
    if t1 <= t0:
        return "(empty time window)"
    lane_names = list(lanes) if lanes else tracer.lanes()
    label_width = max(len(name) for name in lane_names) + 2
    scale = width / (t1 - t0)

    lines = []
    header = " " * label_width + f"t={t0 * 1e3:.2f}ms" + " " * 4 + f"(span {1e3 * (t1 - t0):.2f} ms)"
    lines.append(header)
    for lane in lane_names:
        cells = [" "] * width
        for span in spans:
            if span.lane != lane or span.end < t0 or span.start > t1:
                continue
            lo = max(0, int((span.start - t0) * scale))
            hi = min(width - 1, int((span.end - t0) * scale))
            glyph = (span.label[:1] or "*").lower()
            for i in range(lo, hi + 1):
                cells[i] = glyph if cells[i] == " " else "#"
        lines.append(lane.ljust(label_width) + "".join(cells))
    return "\n".join(lines)
