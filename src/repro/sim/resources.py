"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the hardware and serving models need:

* :class:`Resource` — a counting semaphore (e.g. PCIe link slots,
  encryption worker threads).
* :class:`Store` — an unbounded FIFO queue of items (e.g. the
  speculative-encryption work queue).
* :class:`BandwidthPipe` — a serially-shared channel where each job
  occupies the channel for ``bytes / bandwidth`` seconds (e.g. a PCIe
  direction, the CPU-side AES engine in single-stream mode).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from .core import Event, Simulator


class Resource:
    """A counting semaphore with FIFO granting order.

    Usage inside a process::

        req = resource.acquire()
        yield req
        try:
            ...                      # hold the resource
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of acquire requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that succeeds once a slot is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (FIFO)."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items


class BandwidthPipe:
    """A channel that serializes jobs at a fixed bandwidth.

    Each job of ``nbytes`` occupies the pipe for
    ``latency + nbytes / bandwidth`` seconds; concurrent submitters
    queue in FIFO order. This models a DMA engine or a single
    encryption stream where byte streams cannot interleave.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "pipe",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._busy_until = 0.0
        self.bytes_moved = 0
        self.jobs_done = 0

    def busy_time(self) -> float:
        """Seconds of occupancy accumulated so far (including future)."""
        return self._busy_until

    def duration_of(self, nbytes: int) -> float:
        """Service time for a job of ``nbytes`` (excluding queueing)."""
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: int) -> Event:
        """Submit a job; the returned event fires when the job finishes.

        Queueing is modelled by tracking the pipe's ``busy_until``
        horizon: a new job starts at ``max(now, busy_until)``.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = max(self.sim.now, self._busy_until)
        finish = start + self.duration_of(nbytes)
        self._busy_until = finish
        self.bytes_moved += nbytes
        self.jobs_done += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.record(self.name, "xfer", start, finish)
        return self.sim.timeout(finish - self.sim.now, value=nbytes)

    def transfer_proc(self, nbytes: int) -> Generator[Event, None, int]:
        """Process-style helper: ``yield from pipe.transfer_proc(n)``."""
        yield self.transfer(nbytes)
        return nbytes


class WorkerPool:
    """N identical workers pulling jobs from a two-level priority queue.

    Jobs are ``(service_time, done_event, payload)`` tuples; the pool
    models the CPU encryption/decryption thread pools where the paper
    sweeps thread counts (Fig. 9). Urgent jobs (critical-path
    on-demand crypto) overtake queued speculative work, but never
    preempt a job already in service — matching real threads.
    """

    def __init__(self, sim: Simulator, workers: int, name: str = "pool") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sim = sim
        self.name = name
        self.workers = workers
        self._high: Deque[Tuple[float, Event, Any]] = deque()
        self._low: Deque[Tuple[float, Event, Any]] = deque()
        self._idle: Deque[Event] = deque()
        self.jobs_done = 0
        self.busy_seconds = 0.0
        for index in range(workers):
            sim.process(self._worker_loop(index))

    def submit(
        self,
        service_time: float,
        payload: Any = None,
        urgent: bool = False,
        front: bool = False,
    ) -> Event:
        """Enqueue a job taking ``service_time`` seconds on one worker.

        ``urgent`` selects the high-priority queue; ``front`` pushes
        the job ahead of its queue (LIFO service — e.g. decrypting the
        most recent swap-out first, since LIFO resume needs it first).
        """
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        done = self.sim.event()
        job = (service_time, done, payload)
        if self._idle:
            self._idle.popleft().succeed(job)
        else:
            queue = self._high if urgent else self._low
            if front:
                queue.appendleft(job)
            else:
                queue.append(job)
        return done

    @property
    def queue_len(self) -> int:
        return len(self._high) + len(self._low)

    def _next_job(self):
        if self._high:
            return self._high.popleft()
        if self._low:
            return self._low.popleft()
        return None

    def _worker_loop(self, _index: int) -> Generator[Event, None, None]:
        while True:
            job = self._next_job()
            if job is None:
                gate = self.sim.event()
                self._idle.append(gate)
                job = yield gate
            service_time, done, payload = job
            started = self.sim.now
            yield self.sim.timeout(service_time)
            self.busy_seconds += service_time
            self.jobs_done += 1
            if self.sim.tracer.enabled:
                self.sim.tracer.record(f"{self.name}[{_index}]", "job", started, self.sim.now)
            done.succeed(payload)
