"""Deterministic random-number helpers.

Every stochastic component (arrival processes, trace length sampling,
payload generation) draws from a :class:`SeededRng` created from an
explicit seed so that simulations — and therefore every figure in
EXPERIMENTS.md — are exactly reproducible.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import List, Optional, Sequence

__all__ = ["SeededRng", "default_seed", "set_default_seed"]

#: Process-wide seed override, set by the CLI's ``--seed`` option so a
#: whole experiment (every workload generator and engine it builds) is
#: reproducible from the command line. None = each call site's own
#: built-in default applies.
_SEED_OVERRIDE: Optional[int] = None


def set_default_seed(seed: Optional[int]) -> None:
    """Install (or with None, clear) the process-wide seed override."""
    global _SEED_OVERRIDE
    if seed is not None and seed < 0:
        raise ValueError("seed must be non-negative")
    _SEED_OVERRIDE = seed


def default_seed(fallback: int) -> int:
    """The effective seed: the CLI override if set, else ``fallback``."""
    return _SEED_OVERRIDE if _SEED_OVERRIDE is not None else fallback


class SeededRng:
    """Thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent stream keyed by a label.

        Forking keeps component streams decoupled: adding draws in one
        workload generator does not perturb another. The derivation
        uses CRC32 (not ``hash``, whose string salting differs across
        processes) so forked streams are stable run to run.
        """
        derived = zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
        return SeededRng(derived & 0x7FFFFFFF)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, seq: List) -> None:
        self._rng.shuffle(seq)

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival sample for a Poisson process."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return -math.log(1.0 - self._rng.random()) / rate

    def lognormal_int(self, mean_log: float, sigma_log: float, low: int, high: int) -> int:
        """Clamped integer lognormal sample (token-length modelling)."""
        value = int(round(self._rng.lognormvariate(mean_log, sigma_log)))
        return max(low, min(high, value))

    def bytes(self, n: int) -> bytes:
        """Deterministic pseudo-random payload bytes."""
        return bytes(self._rng.getrandbits(8) for _ in range(n))
