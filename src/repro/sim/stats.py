"""Measurement helpers: counters, latency accumulators, time series.

All benchmark figures are computed from these primitives so that every
experiment reports through the same machinery (mean / percentile /
throughput definitions are written once).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100])."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    frac = rank - low
    value = data[low] * (1.0 - frac) + data[high] * frac
    # Clamp against floating-point drift past the observed extremes.
    return min(max(value, data[0]), data[-1])


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Accumulates individual latency samples and summarizes them."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return mean(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p(50),
            "p90": self.p(90),
            "p99": self.p(99),
            "max": max(self.samples) if self.samples else 0.0,
        }


class TimeSeries:
    """(time, value) samples, e.g. queue depth or bandwidth over time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def time_weighted_mean(self, horizon: Optional[float] = None) -> float:
        """Mean of a piecewise-constant signal over its recorded span.

        ``horizon`` bounds the averaging window: segments past it are
        clipped (a horizon earlier than the last sample truncates the
        tail), and a horizon past the last sample extends it at the
        final value.
        """
        if not self.points:
            return 0.0
        start = self.points[0][0]
        end = horizon if horizon is not None else self.points[-1][0]
        if end <= start:
            return self.points[0][1]
        total = 0.0
        for (t0, v0), (t1, _v1) in zip(self.points, self.points[1:]):
            if t0 >= end:
                break
            total += v0 * (min(t1, end) - t0)
        last_t, last_v = self.points[-1]
        if end > last_t:
            total += last_v * (end - last_t)
        return total / (end - start)


class Histogram:
    """Fixed-bucket histogram: counts of samples per upper bound.

    ``bounds`` are inclusive upper edges in increasing order; samples
    above the last bound land in an implicit overflow bucket.
    """

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = sorted(float(b) for b in bounds)
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bounds must be distinct")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(ordered)
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """``{"le_<bound>": count, ..., "overflow": count}``."""
        out: Dict[str, int] = {}
        for bound, count in zip(self.bounds, self.counts):
            out[f"le_{bound:g}"] = count
        out["overflow"] = self.counts[-1]
        return out


class MetricSet:
    """A registry of named metrics owned by one simulation run."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.latencies: Dict[str, LatencyStat] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self.latencies:
            self.latencies[name] = LatencyStat(name)
        return self.latencies[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        if name not in self.histograms:
            if bounds is None:
                raise ValueError(f"histogram {name!r} needs bounds on first use")
            self.histograms[name] = Histogram(name, bounds)
        return self.histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every metric, for reports and exporters.

        Latency stats contribute mean/count plus p50/p99; histograms
        contribute per-bucket counts.
        """
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = float(counter.value)
        for name, stat in self.latencies.items():
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.count"] = float(stat.count)
            out[f"{name}.p50"] = stat.p(50)
            out[f"{name}.p99"] = stat.p(99)
        for name, hist in self.histograms.items():
            out[f"{name}.count"] = float(hist.total)
            out[f"{name}.mean"] = hist.mean
            for bucket, count in hist.bucket_counts().items():
                out[f"{name}.bucket.{bucket}"] = float(count)
        return out
