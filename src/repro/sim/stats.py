"""Measurement helpers: counters, latency accumulators, time series.

All benchmark figures are computed from these primitives so that every
experiment reports through the same machinery (mean / percentile /
throughput definitions are written once).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100])."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    frac = rank - low
    value = data[low] * (1.0 - frac) + data[high] * frac
    # Clamp against floating-point drift past the observed extremes.
    return min(max(value, data[0]), data[-1])


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Accumulates individual latency samples and summarizes them."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return mean(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p(50),
            "p90": self.p(90),
            "p99": self.p(99),
            "max": max(self.samples) if self.samples else 0.0,
        }


class TimeSeries:
    """(time, value) samples, e.g. queue depth or bandwidth over time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def time_weighted_mean(self, horizon: Optional[float] = None) -> float:
        """Mean of a piecewise-constant signal over its recorded span."""
        if not self.points:
            return 0.0
        end = horizon if horizon is not None else self.points[-1][0]
        total = 0.0
        for (t0, v0), (t1, _v1) in zip(self.points, self.points[1:]):
            total += v0 * (t1 - t0)
        last_t, last_v = self.points[-1]
        if end > last_t:
            total += last_v * (end - last_t)
        span = end - self.points[0][0]
        return total / span if span > 0 else self.points[-1][1]


class MetricSet:
    """A registry of named metrics owned by one simulation run."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.latencies: Dict[str, LatencyStat] = {}
        self.series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self.latencies:
            self.latencies[name] = LatencyStat(name)
        return self.latencies[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counter values and latency means, for reports."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = float(counter.value)
        for name, stat in self.latencies.items():
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.count"] = float(stat.count)
        return out
