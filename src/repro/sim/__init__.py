"""Deterministic discrete-event simulation substrate for the PipeLLM repro."""

from .core import (
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import BandwidthPipe, Resource, Store, WorkerPool
from .rng import SeededRng, default_seed, set_default_seed
from .stats import Counter, Histogram, LatencyStat, MetricSet, TimeSeries, mean, percentile
from .tracing import Span, SpanTracer, render_gantt

__all__ = [
    "BandwidthPipe",
    "Condition",
    "Counter",
    "Event",
    "Histogram",
    "Interrupt",
    "LatencyStat",
    "MetricSet",
    "Process",
    "Resource",
    "SeededRng",
    "default_seed",
    "set_default_seed",
    "SimulationError",
    "Span",
    "SpanTracer",
    "Simulator",
    "Store",
    "Timeout",
    "TimeSeries",
    "WorkerPool",
    "mean",
    "percentile",
    "render_gantt",
]
