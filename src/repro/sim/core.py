"""Discrete-event simulation kernel.

A small, deterministic, dependency-free simulator in the style of
SimPy: *processes* are Python generators that ``yield`` events; the
:class:`Simulator` advances virtual time and resumes processes when the
events they wait on trigger.

Design goals:

* **Determinism** — given the same seed and the same process creation
  order, a simulation always produces the same schedule. Events that
  trigger at the same timestamp are processed in insertion order.
* **Zero dependencies** — the kernel uses only ``heapq`` and
  ``itertools``.
* **Small surface** — everything the PipeLLM models need (timeouts,
  one-shot events, ``all_of``/``any_of`` combinators, preemptible-free
  resources, FIFO stores) and nothing else.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from .. import fastpath


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling all registered callbacks at the current
    simulation time. Waiting on an already-triggered event resumes the
    waiter immediately (at the current time), which makes events safe
    to use as completion handles.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see the exception raised."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._dispatch(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event triggers.

        If the event has already triggered the callback is scheduled
        immediately (still through the event queue, preserving
        determinism).
        """
        if self.callbacks is None:
            # Already dispatched: schedule a zero-delay firing.
            self.sim._schedule_callback(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule(sim.now + delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator yields :class:`Event` instances. When a yielded event
    succeeds, the process resumes with ``event.value``; when it fails,
    the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("process() requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        sim._schedule_callback(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        self.sim._schedule_callback(
            lambda: self._resume(None, Interrupt(cause)) if not self.triggered else None
        )

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # Stale wake-up (e.g. interrupted while waiting).
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded non-event: {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Condition(Event):
    """Base for :func:`Simulator.all_of` / :func:`Simulator.any_of`."""

    __slots__ = ("_events", "_need_all", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], need_all: bool) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._need_all = need_all
        self._pending = 0
        for event in self._events:
            if event.triggered:
                continue
            self._pending += 1
            event.add_callback(self._on_child)
        if self._satisfied():
            # Trigger through the queue so waiters always see a
            # consistent "register first, fire later" order.
            sim._schedule_callback(self._maybe_fire)

    def _satisfied(self) -> bool:
        done = sum(1 for e in self._events if e.triggered)
        if self._need_all:
            return done == len(self._events)
        return done >= 1 or not self._events

    def _maybe_fire(self) -> None:
        if self.triggered or not self._satisfied():
            return
        failures = [e.value for e in self._events if e.triggered and not e.ok]
        if failures:
            self.fail(failures[0])
        else:
            self.succeed([e.value for e in self._events if e.triggered])

    def _on_child(self, _event: Event) -> None:
        self._maybe_fire()


class Simulator:
    """The event loop: a priority queue of timestamped callbacks.

    Two queue implementations are selectable via ``queue`` (default:
    the active :mod:`repro.fastpath` profile):

    ``"heap"``
        The original single binary heap of ``(when, seq, func, args)``.

    ``"fast"``
        The heap plus a FIFO lane for callbacks scheduled at the
        *current* timestamp — the dominant case (event dispatch,
        zero-delay timeouts, process start-ups), which the heap path
        pays two ``heapq`` operations and a tuple build for. The FIFO
        preserves the exact ``(when, seq)`` total order: while the
        kernel is processing time ``t``, every entry still in the heap
        at time ``t`` was scheduled *before* the clock reached ``t``
        (later ones go to the FIFO), so heap-resident ``t`` entries
        always precede FIFO entries in sequence order — the drain
        order below. ``tests/sim/test_queue_equivalence.py`` holds the
        two implementations bit-identical over adversarial schedules.
    """

    def __init__(self, queue: Optional[str] = None) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._fifo: deque = deque()
        self._seq = 0
        queue = queue or fastpath.config().queue
        if queue not in ("heap", "fast"):
            raise ValueError(f"unknown queue implementation {queue!r}")
        self.queue_impl = queue
        self._fast = queue == "fast"
        # Optional span tracer (see repro.sim.tracing); disabled by
        # default so instrumented components stay overhead-free.
        from .tracing import SpanTracer

        self.tracer = SpanTracer(enabled=False)

    # -- scheduling ----------------------------------------------------

    def _schedule(self, when: float, func: Callable, *args: Any) -> None:
        if self._fast and when == self.now:
            self._fifo.append((func, args))
        else:
            self._seq += 1
            heapq.heappush(self._queue, (when, self._seq, func, args))

    def _schedule_callback(self, func: Callable) -> None:
        if self._fast:
            self._fifo.append((func, ()))
        else:
            self._seq += 1
            heapq.heappush(self._queue, (self.now, self._seq, func, ()))

    def _dispatch(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            if self._fast:
                fifo = self._fifo
                for callback in callbacks:
                    fifo.append((callback, (event,)))
            else:
                for callback in callbacks:
                    self._schedule(self.now, callback, event)

    # -- public API ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Launch a generator as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *all* of ``events`` have triggered."""
        return Condition(self, events, need_all=True)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *any* of ``events`` has triggered."""
        return Condition(self, events, need_all=False)

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced exactly to it
        even if the queue drains earlier.
        """
        if self._fast:
            self._run_fast(until)
        else:
            self._run_heap(until)
        if until is not None and self.now < until:
            self.now = until

    def _run_heap(self, until: Optional[float]) -> None:
        """The original event loop: one binary heap, total order by
        ``(when, seq)``. Kept verbatim as the differential baseline."""
        while self._queue:
            when, _tie, func, args = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self.now = when
            func(*args)

    def _run_fast(self, until: Optional[float]) -> None:
        """Heap + current-time FIFO drain, same total order as the heap.

        Order per timestamp: heap entries at ``now`` first (scheduled
        before the clock reached ``now``, hence lower sequence
        numbers), then the FIFO in insertion order, then advance the
        clock. The FIFO is provably empty whenever the clock advances
        or the loop exits on the ``until`` horizon.
        """
        queue = self._queue
        fifo = self._fifo
        pop = heapq.heappop
        while True:
            if until is not None and self.now > until:
                break
            if queue and queue[0][0] <= self.now:
                _when, _tie, func, args = pop(queue)
                func(*args)
                continue
            if fifo:
                func, args = fifo.popleft()
                func(*args)
                continue
            if not queue:
                break
            when = queue[0][0]
            if until is not None and when > until:
                break
            _when, _tie, func, args = pop(queue)
            self.now = when
            func(*args)

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled callback, or None if idle."""
        if self._fifo:
            return self.now
        return self._queue[0][0] if self._queue else None
