"""Discrete-event simulation kernel.

A small, deterministic, dependency-free simulator in the style of
SimPy: *processes* are Python generators that ``yield`` events; the
:class:`Simulator` advances virtual time and resumes processes when the
events they wait on trigger.

Design goals:

* **Determinism** — given the same seed and the same process creation
  order, a simulation always produces the same schedule. Events that
  trigger at the same timestamp are processed in insertion order.
* **Zero dependencies** — the kernel uses only ``heapq`` and
  ``itertools``.
* **Small surface** — everything the PipeLLM models need (timeouts,
  one-shot events, ``all_of``/``any_of`` combinators, preemptible-free
  resources, FIFO stores) and nothing else.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling all registered callbacks at the current
    simulation time. Waiting on an already-triggered event resumes the
    waiter immediately (at the current time), which makes events safe
    to use as completion handles.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see the exception raised."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._dispatch(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event triggers.

        If the event has already triggered the callback is scheduled
        immediately (still through the event queue, preserving
        determinism).
        """
        if self.callbacks is None:
            # Already dispatched: schedule a zero-delay firing.
            self.sim._schedule_callback(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule(sim.now + delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator yields :class:`Event` instances. When a yielded event
    succeeds, the process resumes with ``event.value``; when it fails,
    the exception is thrown into the generator.
    """

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("process() requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        sim._schedule_callback(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        self.sim._schedule_callback(
            lambda: self._resume(None, Interrupt(cause)) if not self.triggered else None
        )

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # Stale wake-up (e.g. interrupted while waiting).
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded non-event: {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Condition(Event):
    """Base for :func:`Simulator.all_of` / :func:`Simulator.any_of`."""

    def __init__(self, sim: "Simulator", events: Iterable[Event], need_all: bool) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._need_all = need_all
        self._pending = 0
        for event in self._events:
            if event.triggered:
                continue
            self._pending += 1
            event.add_callback(self._on_child)
        if self._satisfied():
            # Trigger through the queue so waiters always see a
            # consistent "register first, fire later" order.
            sim._schedule_callback(self._maybe_fire)

    def _satisfied(self) -> bool:
        done = sum(1 for e in self._events if e.triggered)
        if self._need_all:
            return done == len(self._events)
        return done >= 1 or not self._events

    def _maybe_fire(self) -> None:
        if self.triggered or not self._satisfied():
            return
        failures = [e.value for e in self._events if e.triggered and not e.ok]
        if failures:
            self.fail(failures[0])
        else:
            self.succeed([e.value for e in self._events if e.triggered])

    def _on_child(self, _event: Event) -> None:
        self._maybe_fire()


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._counter = itertools.count()
        # Optional span tracer (see repro.sim.tracing); disabled by
        # default so instrumented components stay overhead-free.
        from .tracing import SpanTracer

        self.tracer = SpanTracer(enabled=False)

    # -- scheduling ----------------------------------------------------

    def _schedule(self, when: float, func: Callable, *args: Any) -> None:
        heapq.heappush(self._queue, (when, next(self._counter), func, args))

    def _schedule_callback(self, func: Callable) -> None:
        self._schedule(self.now, func)

    def _dispatch(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                self._schedule(self.now, callback, event)

    # -- public API ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Launch a generator as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *all* of ``events`` have triggered."""
        return Condition(self, events, need_all=True)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *any* of ``events`` has triggered."""
        return Condition(self, events, need_all=False)

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced exactly to it
        even if the queue drains earlier.
        """
        while self._queue:
            when, _tie, func, args = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self.now = when
            func(*args)
        if until is not None and self.now < until:
            self.now = until

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled callback, or None if idle."""
        return self._queue[0][0] if self._queue else None
