"""GPU enclave model: device memory, copy engine, roofline compute.

The H100 enclave owns three things PipeLLM interacts with:

* **Device memory** — 80 GB; allocation accounting drives the swap
  pressure that every experiment depends on.
* **Copy engine** — the hardware unit that decrypts incoming AES-GCM
  ciphertext at line rate with the GPU-side synchronized IV (§2.2).
  We model it functionally with a real :class:`SessionEndpoint`; its
  decrypt *time* is folded into the CC DMA path (it runs at line rate
  and is never the bottleneck per Fig. 2).
* **Compute** — a roofline: compute-bound prefill/fine-tune kernels run
  at an effective FLOP rate; memory-bound decode kernels at effective
  HBM bandwidth; each layer invocation pays a fixed kernel overhead.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..crypto import AuthenticationError, EncryptedMessage, SessionEndpoint
from ..sim import Event, Simulator
from .memory import MemoryChunk
from .params import HardwareParams

__all__ = ["GpuEnclave", "GpuOutOfMemory"]


class GpuOutOfMemory(MemoryError):
    """Device allocation exceeded the enclave's capacity."""


class GpuEnclave:
    """Device-side half of the confidential-computing machine model."""

    def __init__(
        self,
        sim: Simulator,
        params: HardwareParams,
        endpoint: Optional[SessionEndpoint] = None,
        lane: str = "gpu",
    ) -> None:
        self.sim = sim
        self.params = params
        self.endpoint = endpoint  # None when CC is disabled.
        self.lane = lane  # Tracer lane; "gpu1", "gpu2", ... on multi-GPU machines.
        self.capacity = params.gpu_memory_bytes
        self.used = 0
        self._allocations: Dict[str, int] = {}
        # Functional device memory: tag -> plaintext payload.
        self._contents: Dict[str, bytes] = {}
        self.auth_failures = 0
        self.busy_until = 0.0
        self.compute_seconds = 0.0

    # -- device memory accounting -----------------------------------------

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def alloc(self, tag: str, nbytes: int) -> None:
        """Reserve ``nbytes`` of device memory under ``tag``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.used + nbytes > self.capacity:
            raise GpuOutOfMemory(
                f"alloc {tag}: need {nbytes}, free {self.free} of {self.capacity}"
            )
        self._allocations[tag] = self._allocations.get(tag, 0) + nbytes
        self.used += nbytes

    def free_alloc(self, tag: str) -> int:
        """Release the allocation under ``tag``; returns bytes freed."""
        nbytes = self._allocations.pop(tag, 0)
        self.used -= nbytes
        self._contents.pop(tag, None)
        return nbytes

    def allocation(self, tag: str) -> int:
        return self._allocations.get(tag, 0)

    # -- copy engine (functional) ---------------------------------------------

    def receive_ciphertext(self, chunk: MemoryChunk, message: EncryptedMessage) -> bytes:
        """Decrypt an incoming message with the GPU's next RX IV.

        This is the hardware copy engine: any IV desynchronization
        surfaces here as :class:`AuthenticationError` — the observable
        consequence of committing a mispredicted ciphertext (§4.1).
        """
        if self.endpoint is None:
            raise RuntimeError("receive_ciphertext requires CC mode")
        try:
            plaintext = self.endpoint.decrypt_next(message)
        except AuthenticationError:
            self.auth_failures += 1
            raise
        self._contents[chunk.tag] = plaintext
        return plaintext

    def receive_plaintext(self, chunk: MemoryChunk) -> None:
        """CC-disabled path: payload lands directly in device memory."""
        self._contents[chunk.tag] = chunk.payload

    def send_ciphertext(self, chunk: MemoryChunk) -> EncryptedMessage:
        """Encrypt device data for a D2H transfer (GPU TX IV consumed).

        The copy engine encrypts at line rate; cost is folded into the
        CC DMA path, so only the functional side lives here.
        """
        if self.endpoint is None:
            raise RuntimeError("send_ciphertext requires CC mode")
        payload = self._contents.get(chunk.tag, chunk.payload)
        return self.endpoint.encrypt_next(payload, nbytes_logical=chunk.size)

    def read_plaintext(self, tag: str) -> Optional[bytes]:
        """Inspect device memory contents (tests / examples)."""
        return self._contents.get(tag)

    def store_plaintext(self, tag: str, payload: bytes) -> None:
        """Place plaintext directly in device memory (kernel output, or
        an interconnect delivery that already paid its crypto cost)."""
        self._contents[tag] = payload

    # -- compute roofline -----------------------------------------------------

    def compute_time(self, flops: float, bytes_touched: float, layers: int = 1) -> float:
        """Roofline kernel time for one launch batch."""
        gpu = self.params.gpu
        compute = flops / gpu.flops
        memory = bytes_touched / gpu.hbm_bandwidth
        return max(compute, memory) + layers * gpu.kernel_overhead

    def compute(self, flops: float, bytes_touched: float, layers: int = 1) -> Event:
        """Occupy the (serial) GPU for the roofline duration.

        The GPU executes one kernel stream; concurrent submissions
        queue, which is how memcpy-wait-induced idle gaps become
        visible end to end.
        """
        duration = self.compute_time(flops, bytes_touched, layers)
        start = max(self.sim.now, self.busy_until)
        finish = start + duration
        self.busy_until = finish
        self.compute_seconds += duration
        if self.sim.tracer.enabled:
            self.sim.tracer.record(self.lane, "compute", start, finish)
        return self.sim.timeout(finish - self.sim.now)
