"""Host (CVM) memory with page-granular protection and fault hooks.

PipeLLM's validator (§5.2) write-protects the plaintext pages backing
every speculatively encrypted chunk using MPK/PKU, so that an in-place
update by the application raises a page fault and invalidates the
stale ciphertext. The asynchronous decryptor (§5.4) similarly revokes
*read and write* access to not-yet-decrypted swap-out destinations.

:class:`HostMemory` reproduces exactly that contract:

* a bump allocator hands out page-aligned :class:`Region` objects that
  carry a small functional ``payload`` alongside their logical ``size``;
* ``protect()`` revokes read and/or write permission for a page range
  on behalf of an *owner* token;
* every ``read``/``write`` checks permissions and dispatches a
  :class:`PageFault` to registered handlers. A handler must clear the
  offending protection (like a real fault handler re-enabling access);
  if no handler does, :class:`AccessViolation` is raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "AccessViolation",
    "HostMemory",
    "MemoryChunk",
    "PageFault",
    "Region",
]


class AccessViolation(Exception):
    """An access hit a protected page and no fault handler resolved it."""


@dataclass(frozen=True)
class MemoryChunk:
    """The unit of a CPU↔GPU transfer.

    ``addr``/``size`` describe the logical transfer (what the cost
    models and the PipeLLM classifier see); ``payload`` is the small
    real byte content that flows through the functional crypto layer.
    """

    addr: int
    size: int
    payload: bytes
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size < len(self.payload):
            raise ValueError("logical size smaller than payload")

    @property
    def end(self) -> int:
        return self.addr + self.size

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.end


@dataclass
class Region:
    """An allocated host-memory range."""

    addr: int
    size: int
    tag: str
    payload: bytearray

    @property
    def end(self) -> int:
        return self.addr + self.size

    def chunk(self) -> MemoryChunk:
        """Snapshot this region as a transferable chunk."""
        return MemoryChunk(self.addr, self.size, bytes(self.payload), self.tag)


@dataclass(frozen=True)
class PageFault:
    """Delivered to fault handlers on a protected access."""

    addr: int
    size: int
    is_write: bool
    owners: Tuple[str, ...]


@dataclass
class _Protection:
    owner: str
    addr: int
    size: int
    deny_read: bool
    deny_write: bool

    def covers(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size


class HostMemory:
    """CVM private memory: allocator + MPK/PKU-style protection model."""

    def __init__(self, capacity: int = 1 << 40, page_size: int = 4096) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        self.capacity = capacity
        self.page_size = page_size
        self._cursor = page_size  # keep address 0 unused
        #: Live (allocated, not yet freed) bytes — what counts against
        #: capacity. Addresses are never reused, but address space is
        #: not memory.
        self.used_bytes = 0
        self._regions: Dict[int, Region] = {}
        self._protections: List[_Protection] = []
        self._fault_handlers: List[Callable[[PageFault], None]] = []
        self._free_handlers: List[Callable[[Region], None]] = []
        self.fault_count = 0

    # -- allocation --------------------------------------------------------

    def allocate(self, size: int, tag: str = "", payload: Optional[bytes] = None) -> Region:
        """Allocate a page-aligned region of ``size`` logical bytes."""
        if size <= 0:
            raise ValueError("size must be positive")
        aligned = -(-size // self.page_size) * self.page_size
        if self.used_bytes + aligned > self.capacity:
            raise MemoryError(f"host memory exhausted ({self.capacity} bytes)")
        region = Region(self._cursor, size, tag, bytearray(payload or b""))
        self._regions[region.addr] = region
        self._cursor += aligned
        self.used_bytes += aligned
        return region

    def free(self, region: Region) -> None:
        """Release a region (protection entries on it are dropped too)."""
        if self._regions.pop(region.addr, None) is not None:
            aligned = -(-region.size // self.page_size) * self.page_size
            self.used_bytes -= aligned
        self._protections = [p for p in self._protections if not p.covers(region.addr, region.size)]
        for handler in self._free_handlers:
            handler(region)

    def on_free(self, handler: Callable[[Region], None]) -> None:
        """Register a callback fired whenever a region is freed.

        PipeLLM uses this to drop speculative ciphertext whose source
        plaintext no longer exists (e.g. a KV region consumed by its
        swap-in).
        """
        self._free_handlers.append(handler)

    def region_at(self, addr: int) -> Region:
        """Look up the region starting exactly at ``addr``."""
        try:
            return self._regions[addr]
        except KeyError:
            raise KeyError(f"no region at address {addr:#x}") from None

    def regions(self) -> List[Region]:
        return list(self._regions.values())

    # -- protection ---------------------------------------------------------

    def protect(
        self,
        addr: int,
        size: int,
        owner: str,
        deny_read: bool = False,
        deny_write: bool = True,
    ) -> None:
        """Revoke access to [addr, addr+size) on behalf of ``owner``."""
        if not (deny_read or deny_write):
            raise ValueError("protection must deny at least one access mode")
        self._protections.append(_Protection(owner, addr, size, deny_read, deny_write))

    def unprotect(self, owner: str, addr: Optional[int] = None, size: Optional[int] = None) -> int:
        """Drop protections held by ``owner``; optionally range-limited.

        Returns the number of protection entries removed.
        """
        def keep(p: _Protection) -> bool:
            if p.owner != owner:
                return True
            if addr is not None and size is not None and not p.covers(addr, size):
                return True
            return False

        before = len(self._protections)
        self._protections = [p for p in self._protections if keep(p)]
        return before - len(self._protections)

    def protections_on(self, addr: int, size: int) -> List[str]:
        """Owners of protections overlapping the given range."""
        return [p.owner for p in self._protections if p.covers(addr, size)]

    def is_protected(self, addr: int, size: int, for_write: bool) -> bool:
        for p in self._protections:
            if p.covers(addr, size) and (p.deny_write if for_write else p.deny_read):
                return True
        return False

    def on_fault(self, handler: Callable[[PageFault], None]) -> None:
        """Register a fault handler (called in registration order)."""
        self._fault_handlers.append(handler)

    def _check_access(self, addr: int, size: int, is_write: bool) -> None:
        if not self.is_protected(addr, size, for_write=is_write):
            return
        owners = tuple(self.protections_on(addr, size))
        self.fault_count += 1
        fault = PageFault(addr, size, is_write, owners)
        for handler in self._fault_handlers:
            handler(fault)
        if self.is_protected(addr, size, for_write=is_write):
            raise AccessViolation(
                f"{'write' if is_write else 'read'} to protected range "
                f"[{addr:#x}, +{size}) not resolved by any fault handler "
                f"(owners: {owners})"
            )

    # -- access ---------------------------------------------------------------

    def read(self, addr: int) -> bytes:
        """Read a region's payload (checks read permission)."""
        region = self.region_at(addr)
        self._check_access(region.addr, region.size, is_write=False)
        return bytes(region.payload)

    def write(self, addr: int, payload: bytes) -> None:
        """Overwrite a region's payload (checks write permission)."""
        region = self.region_at(addr)
        self._check_access(region.addr, region.size, is_write=True)
        region.payload = bytearray(payload)

    def chunk_at(self, addr: int) -> MemoryChunk:
        """Snapshot a region as a transfer chunk via a *checked* read.

        Unlike :meth:`Region.chunk`, this goes through the permission
        check, so touching a region whose plaintext is still pending
        asynchronous decryption faults and lands the data first —
        exactly the usage-before-decryption path of §5.4.
        """
        region = self.region_at(addr)
        payload = self.read(addr)
        return MemoryChunk(region.addr, region.size, payload, region.tag)

    def write_silent(self, addr: int, payload: bytes) -> None:
        """Store a payload bypassing protection checks.

        Used by the runtime itself (e.g. the asynchronous decryptor
        landing plaintext into a still-revoked destination); never by
        application code.
        """
        self.region_at(addr).payload = bytearray(payload)
