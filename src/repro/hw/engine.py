"""CPU cryptographic engine: worker-thread pools with calibrated cost.

The paper's bottleneck is that CUDA's CC path runs AES-GCM on *one*
CPU thread inside the blocking memcpy call (≈6.4 GB/s, Fig. 2). Both
the CC baseline with extra threads (Fig. 9's "CC-4t") and PipeLLM's
multi-threaded speculative encryption (§7.2) are expressed here as
:class:`CryptoEngine` configurations:

* ``submit_encrypt(nbytes)`` — queue one chunk on one worker (FIFO).
* ``submit_encrypt_parallel(nbytes, ways)`` — split one chunk across
  several workers (PipeLLM does this for model offloading, where a
  single layer must be produced faster than one thread's rate).

The engine only models *time*; the matching functional AES-GCM calls
happen in the channel layer. Both layers share the same notion of
"one encryption consumed one IV".
"""

from __future__ import annotations

from typing import Generator, List

from ..sim import Event, Simulator, WorkerPool
from .params import HardwareParams

__all__ = ["CryptoEngine"]


class CryptoEngine:
    """Encryption and decryption thread pools for one CVM."""

    def __init__(
        self,
        sim: Simulator,
        params: HardwareParams,
        enc_threads: int = 1,
        dec_threads: int = 1,
        faults=None,
    ) -> None:
        if enc_threads < 1 or dec_threads < 1:
            raise ValueError("thread counts must be >= 1")
        self.sim = sim
        self.params = params
        self.enc_threads = enc_threads
        self.dec_threads = dec_threads
        #: Optional :class:`repro.faults.FaultInjector`: worker stalls
        #: and slowdowns are applied to every submission's service time.
        self.faults = faults
        self._enc_pool = WorkerPool(sim, enc_threads, name="enc")
        self._dec_pool = WorkerPool(sim, dec_threads, name="dec")
        self.bytes_encrypted = 0
        self.bytes_decrypted = 0

    def _service(self, service: float, pool: str) -> float:
        """Nominal service time, distorted by the fault plane if any."""
        if self.faults is None:
            return service
        return self.faults.engine_service_time(service, pool)

    # -- encryption ------------------------------------------------------

    def encrypt_service_time(self, nbytes: int, ways: int = 1) -> float:
        """Pure service time for encrypting ``nbytes`` split ``ways``-wide."""
        return self.params.enc_time(nbytes, threads=ways)

    def submit_encrypt(self, nbytes: int, urgent: bool = False) -> Event:
        """Queue one chunk on one encryption worker; event on completion."""
        self.bytes_encrypted += nbytes
        return self._enc_pool.submit(
            self._service(self.params.enc_time(nbytes, threads=1), "enc"),
            payload=nbytes, urgent=urgent,
        )

    def submit_encrypt_inline_cc(self, nbytes: int) -> Event:
        """One chunk with the CC baseline's coupled control+AES cost.

        Used for traffic that PipeLLM does not pipeline (small control
        transfers, on-demand misses' API-visible portion).
        """
        self.bytes_encrypted += nbytes
        service = self.params.cc_control_latency + nbytes / self.params.enc_bandwidth_per_thread
        return self._enc_pool.submit(self._service(service, "enc"), payload=nbytes, urgent=True)

    def submit_decrypt_inline_cc(self, nbytes: int) -> Event:
        """Synchronous CPU decryption with the CC baseline's cost."""
        self.bytes_decrypted += nbytes
        service = self.params.cc_control_latency + nbytes / self.params.dec_bandwidth_per_thread
        return self._dec_pool.submit(self._service(service, "dec"), payload=nbytes, urgent=True)

    def submit_encrypt_parallel(
        self, nbytes: int, ways: int = 0, urgent: bool = False, front: bool = False
    ) -> Event:
        """Split one chunk across ``ways`` workers (default: all of them).

        Completion fires when every slice is done. Splitting only
        helps while workers are otherwise idle — under a saturated
        queue aggregate throughput is the same, exactly as with real
        threads.
        """
        ways = ways or self.enc_threads
        ways = max(1, min(ways, self.enc_threads))
        self.bytes_encrypted += nbytes
        slice_bytes = nbytes / ways
        slices: List[Event] = [
            self._enc_pool.submit(
                self._service(self.params.enc_time(int(slice_bytes), threads=1), "enc"),
                urgent=urgent, front=front,
            )
            for _ in range(ways)
        ]
        return self.sim.all_of(slices)

    # -- decryption ---------------------------------------------------------

    def submit_decrypt(self, nbytes: int) -> Event:
        """Queue one chunk on one decryption worker."""
        self.bytes_decrypted += nbytes
        return self._dec_pool.submit(
            self._service(self.params.dec_time(nbytes, threads=1), "dec"), payload=nbytes
        )

    def submit_decrypt_parallel(
        self, nbytes: int, ways: int = 0, urgent: bool = False, front: bool = False
    ) -> Event:
        ways = ways or self.dec_threads
        ways = max(1, min(ways, self.dec_threads))
        self.bytes_decrypted += nbytes
        slice_bytes = nbytes / ways
        slices: List[Event] = [
            self._dec_pool.submit(
                self._service(self.params.dec_time(int(slice_bytes), threads=1), "dec"),
                urgent=urgent, front=front,
            )
            for _ in range(ways)
        ]
        return self.sim.all_of(slices)

    # -- introspection ----------------------------------------------------------

    @property
    def enc_queue_len(self) -> int:
        return self._enc_pool.queue_len

    @property
    def dec_queue_len(self) -> int:
        return self._dec_pool.queue_len

    def utilization(self, horizon: float) -> float:
        """Fraction of total worker-seconds spent busy up to ``horizon``."""
        if horizon <= 0:
            return 0.0
        busy = self._enc_pool.busy_seconds + self._dec_pool.busy_seconds
        return busy / (horizon * (self.enc_threads + self.dec_threads))

    def drain(self) -> Generator[Event, None, None]:
        """Process helper that idles until both pools are empty."""
        while self._enc_pool.queue_len or self._dec_pool.queue_len:
            yield self.sim.timeout(1e-4)
