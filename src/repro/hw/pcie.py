"""PCIe link model.

Two independent :class:`~repro.sim.resources.BandwidthPipe` directions
(host→device and device→host), matching the duplex PCIe 5.0 x16 link
of the paper's testbed. The link carries *ciphertext or plaintext
alike* — what changes between CC modes is which bandwidth ceiling
applies (56 GB/s native vs the ≈40 GB/s CC-mode DMA path) and whether
encryption time is serialized in front of the transfer.

With a fault injector attached (:mod:`repro.faults`), DMAs can pick up
latency jitter or transiently fail; failures are replayed with the
injector's bounded exponential-backoff :class:`RetryPolicy`, modeling
PCIe's link-level replay — the transaction ultimately completes (the
link guarantees delivery), but replays consume real bandwidth and
time, and an exhausted retry budget is surfaced as its own recovery
event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim import BandwidthPipe, Event, Simulator
from .params import HardwareParams

__all__ = ["BusRecord", "PcieLink"]


@dataclass(frozen=True)
class BusRecord:
    """What a bus snooper (the §4 attacker) sees of one transfer.

    Only metadata is visible — the payload is AES-GCM ciphertext — but
    sizes and timing are enough for the side channels §8.1 concedes:
    1-byte transfers reveal NOP padding, i.e. that the LLM system is
    swapping and how often predictions miss.
    """

    time: float
    direction: str
    nbytes: int


class PcieLink:
    """Duplex PCIe link with per-direction FIFO occupancy."""

    def __init__(self, sim: Simulator, params: HardwareParams, faults=None) -> None:
        self.sim = sim
        self.params = params
        #: Optional :class:`repro.faults.FaultInjector` for this link.
        self.faults = faults
        #: Link-level replays carried out (transient-failure retries).
        self.replays = 0
        #: DMAs whose retry budget ran out (still delivered, but slow).
        self.retry_exhausted = 0
        self.h2d = BandwidthPipe(
            sim, params.pcie_bandwidth, latency=params.dma_overhead, name="pcie.h2d"
        )
        self.d2h = BandwidthPipe(
            sim, params.pcie_bandwidth, latency=params.dma_overhead, name="pcie.d2h"
        )
        # The CC-mode DMA path (bounce buffers in CVM shared memory)
        # has its own, lower ceiling; model it as separate pipes so CC
        # and native traffic queue independently, as on hardware.
        self.h2d_cc = BandwidthPipe(
            sim, params.cc_dma_bandwidth, latency=params.dma_overhead, name="pcie.h2d.cc"
        )
        self.d2h_cc = BandwidthPipe(
            sim, params.cc_dma_bandwidth, latency=params.dma_overhead, name="pcie.d2h.cc"
        )
        #: Attacker-visible transfer metadata (§8.1 side channels).
        self.bus_log: List[BusRecord] = []

    def transfer_h2d(self, nbytes: int, cc_path: bool = False) -> Event:
        """DMA ``nbytes`` to the device; returns a completion event."""
        self.bus_log.append(BusRecord(self.sim.now, "h2d", nbytes))
        pipe = self.h2d_cc if cc_path else self.h2d
        return self._transfer(pipe, nbytes, "h2d")

    def transfer_d2h(self, nbytes: int, cc_path: bool = False) -> Event:
        """DMA ``nbytes`` to the host; returns a completion event."""
        self.bus_log.append(BusRecord(self.sim.now, "d2h", nbytes))
        pipe = self.d2h_cc if cc_path else self.d2h
        return self._transfer(pipe, nbytes, "d2h")

    def _transfer(self, pipe: BandwidthPipe, nbytes: int, direction: str) -> Event:
        inj = self.faults
        if inj is None or not (inj.plan.pcie_drop_rate or inj.plan.pcie_jitter_rate):
            return pipe.transfer(nbytes)
        done = self.sim.event()
        self.sim.process(self._faulty_transfer(pipe, nbytes, direction, done))
        return done

    def _faulty_transfer(self, pipe: BandwidthPipe, nbytes: int, direction: str, done: Event):
        """One DMA under the fault plane: jitter, drops, bounded replay."""
        inj = self.faults
        policy = inj.retry
        attempt = 0
        while True:
            attempt += 1
            yield pipe.transfer(nbytes)
            jitter = inj.pcie_jitter(direction)
            if jitter > 0.0:
                yield self.sim.timeout(jitter)
            if not inj.pcie_drop(direction):
                break
            if attempt >= policy.max_attempts:
                # Retry budget exhausted: fall back to the link's own
                # replay machinery, which delivers without backoff.
                self.retry_exhausted += 1
                inj.note_recovery("retry-exhausted", attempt, direction)
                break
            self.replays += 1
            inj.note_recovery("retry", attempt, direction)
            yield self.sim.timeout(policy.delay(attempt))
        done.succeed()

    def observed_nops(self, nop_bytes: int = 1) -> int:
        """How many NOP-sized transfers a snooper counted (§8.1)."""
        return sum(1 for record in self.bus_log if record.nbytes == nop_bytes)

    @property
    def bytes_moved(self) -> int:
        return (
            self.h2d.bytes_moved
            + self.d2h.bytes_moved
            + self.h2d_cc.bytes_moved
            + self.d2h_cc.bytes_moved
        )
