"""Calibrated hardware parameters.

All timing constants are fitted to the paper's own measurements on the
H100-SXM testbed (dual Xeon 8462Y+, PCIe 5.0 x16):

* **Figure 2 microbenchmark** (host-to-device memcpy):

  - CC-disabled API-return latency is flat ≈1.4 µs (the copy is
    asynchronous); completion throughput climbs to ≈55 GB/s at 32 MB,
    which fits a per-transfer DMA overhead of ≈2.8 µs over a 56 GB/s
    link.
  - CC-enabled latency fits ``max(14.9 µs, 2.3 µs + size / 6.39 GB/s)``
    — the CUDA API blocks on single-thread CPU AES-GCM, whose coupled
    encrypt+copy rate is ≈6.4 GB/s; small transfers pay a ≈14.9 µs
    CC control-plane cost.

* **§7.2** — even with encryption fully off the critical path, the
  CC-mode DMA path tops out at ≈40 GB/s ("the remaining overhead mainly
  owes to 40GB/s maximum bandwidth of CPU-to-GPU memory copy"), versus
  ≈56–64 GB/s with CC disabled.

GPU compute constants are an effective roofline for an H100-SXM
running fp16 transformer kernels; they only need to place compute time
in the right *ratio* to swap time, which is what every figure's shape
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List

__all__ = [
    "HW_PACKS",
    "HardwareParams",
    "GpuComputeParams",
    "default_params",
    "get_params",
    "pack_names",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GpuComputeParams:
    """Effective roofline for GPU kernels (H100-SXM class)."""

    #: Effective dense fp16 throughput (FLOP/s) after typical MFU losses.
    flops: float = 400e12
    #: Effective HBM bandwidth (B/s) for memory-bound decode kernels.
    hbm_bandwidth: float = 2.0e12
    #: Fixed overhead per layer invocation (kernel launches, sync).
    kernel_overhead: float = 25e-6


@dataclass(frozen=True)
class HardwareParams:
    """One testbed configuration shared by every experiment."""

    # ---- PCIe link (CC disabled) ----------------------------------------
    #: Per-direction effective PCIe bandwidth without CC (B/s).
    pcie_bandwidth: float = 56e9
    #: Fixed DMA setup time per transfer (s).
    dma_overhead: float = 2.8e-6
    #: Time for the async CUDA memcpy API to *return* without CC (s).
    api_latency_ncc: float = 1.4e-6

    # ---- Inter-GPU interconnect (CC disabled) ---------------------------
    #: Per-direction peer-to-peer bandwidth between GPUs (B/s). NVLink
    #: class — far above PCIe, which is why forbidding P2P under CC
    #: ("the serialized bridge") hurts so much.
    p2p_bandwidth: float = 160e9
    #: Fixed latency per P2P hop (s).
    p2p_latency: float = 2.0e-6

    # ---- Confidential-computing channel ---------------------------------
    #: CC control-plane latency floor per transfer (s).
    cc_control_latency: float = 14.9e-6
    #: Per-transfer streaming setup when encryption dominates (s).
    cc_stream_overhead: float = 2.3e-6
    #: Coupled encrypt+copy throughput of ONE CPU thread (B/s). This is
    #: the Fig. 2 bottleneck: the CUDA library encrypts inline.
    enc_bandwidth_per_thread: float = 6.39e9
    #: Same for CPU-side decryption of device-to-host transfers.
    dec_bandwidth_per_thread: float = 6.39e9
    #: DMA ceiling when ciphertext is pre-staged (CC mode, B/s). §7.2
    #: attributes PipeLLM's residual overhead to a reduced CC-mode
    #: copy bandwidth ("40GB/s maximum bandwidth of CPU-to-GPU memory
    #: copy"); the end-to-end FlexGen numbers (<19.6 % overhead vs a
    #: 56 GB/s transfer-bound baseline) imply the *pipelined* staged
    #: path sustains ≈47 GB/s, which is the effective rate we use.
    cc_dma_bandwidth: float = 47e9
    #: Logical size of a NOP transfer (bytes) — a 1-byte dummy (§5.3).
    nop_bytes: int = 1

    # ---- Memory sizes -----------------------------------------------------
    #: GPU device memory capacity (bytes) — H100 80 GB.
    gpu_memory_bytes: int = 80 * GB
    #: Host (CVM) memory capacity (bytes) — 250 GB VM in the paper.
    host_memory_bytes: int = 250 * GB
    #: Page size used by the MPK/PKU-style protection model.
    page_size: int = 4096

    # ---- GPU compute ------------------------------------------------------
    gpu: GpuComputeParams = field(default_factory=GpuComputeParams)

    # -- derived helpers ------------------------------------------------------

    def ncc_api_latency(self, _nbytes: int) -> float:
        """API-return latency of an async memcpy without CC."""
        return self.api_latency_ncc

    def ncc_occupancy(self, nbytes: int) -> float:
        """Link occupancy of one transfer without CC."""
        return self.dma_overhead + nbytes / self.pcie_bandwidth

    def cc_api_latency(self, nbytes: int) -> float:
        """Blocking latency of a CC-enabled memcpy (single thread).

        Matches the Fig. 2 latency column: the control path overlaps
        the encryption stream, so the API blocks for whichever is
        longer.
        """
        stream = self.cc_stream_overhead + nbytes / self.enc_bandwidth_per_thread
        return max(self.cc_control_latency, stream)

    def cc_occupancy(self, nbytes: int) -> float:
        """Back-to-back serialized cost of one CC-enabled transfer.

        Matches the Fig. 2 throughput column (control plane and
        encryption do not overlap across consecutive transfers).
        """
        return self.cc_control_latency + nbytes / self.enc_bandwidth_per_thread

    def enc_time(self, nbytes: int, threads: int = 1) -> float:
        """CPU AES-GCM encryption time for one chunk on N threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        bandwidth = self.enc_bandwidth_per_thread * threads
        return self.cc_stream_overhead + nbytes / bandwidth

    def dec_time(self, nbytes: int, threads: int = 1) -> float:
        """CPU AES-GCM decryption time for one chunk on N threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        bandwidth = self.dec_bandwidth_per_thread * threads
        return self.cc_stream_overhead + nbytes / bandwidth

    def cc_dma_time(self, nbytes: int) -> float:
        """DMA time of a pre-encrypted chunk over the CC-mode path."""
        return self.dma_overhead + nbytes / self.cc_dma_bandwidth

    def p2p_time(self, nbytes: int) -> float:
        """One direct GPU-to-GPU hop (CC disabled only)."""
        return self.p2p_latency + nbytes / self.p2p_bandwidth

    def with_overrides(self, **kwargs) -> "HardwareParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def default_params() -> HardwareParams:
    """The calibrated H100-SXM / PCIe 5.0 testbed configuration."""
    return HardwareParams()


def _h100_cc() -> HardwareParams:
    """Hopper GPU-CC: the paper's own H100 calibration (the default)."""
    return HardwareParams()


def _b300_cc() -> HardwareParams:
    """Blackwell-generation GPU-CC: the serialized-bridge regime.

    "The Serialized Bridge" (2026) reports that Blackwell CC keeps
    GPU-local kernels at full speed (bigger roofline, faster HBM) and
    moves the pain entirely to the host↔GPU bridge: the PCIe 6.0 link
    is twice as fast in the clear, but the CC data path still funnels
    through a serialized bounce whose ceiling barely moves. Relative
    to `h100-cc` the compute:transfer ratio therefore *widens* — the
    same workloads become bridge-bound rather than encryption-bound,
    which is exactly the shape migration-heavy disaggregation probes.
    """
    return HardwareParams(
        pcie_bandwidth=100e9,
        dma_overhead=2.2e-6,
        p2p_bandwidth=360e9,
        p2p_latency=1.5e-6,
        cc_control_latency=11.0e-6,
        enc_bandwidth_per_thread=8.2e9,
        dec_bandwidth_per_thread=8.2e9,
        cc_dma_bandwidth=52e9,
        gpu_memory_bytes=192 * GB,
        host_memory_bytes=512 * GB,
        gpu=GpuComputeParams(
            flops=900e12,
            hbm_bandwidth=6.5e12,
            kernel_overhead=20e-6,
        ),
    )


def _cpu_tee() -> HardwareParams:
    """CPU TEE (TDX/SEV-SNP class): no accelerator, no bounce bridge.

    Follows the ETH CPU/GPU-TEE cost study (2025): compute drops by
    two orders of magnitude versus an H100 (AMX-class matmul over DDR5
    instead of tensor cores over HBM), while "transfers" collapse to
    in-package memcpys — high bandwidth, microsecond-free control
    plane, and encryption at the same per-thread AES-GCM rate as ever.
    Confidential data movement is cheap here; cycles are the frontier.
    """
    return HardwareParams(
        pcie_bandwidth=180e9,
        dma_overhead=0.4e-6,
        api_latency_ncc=0.3e-6,
        p2p_bandwidth=180e9,
        p2p_latency=0.4e-6,
        cc_control_latency=2.0e-6,
        cc_stream_overhead=0.8e-6,
        enc_bandwidth_per_thread=6.39e9,
        dec_bandwidth_per_thread=6.39e9,
        cc_dma_bandwidth=120e9,
        gpu_memory_bytes=128 * GB,
        host_memory_bytes=512 * GB,
        gpu=GpuComputeParams(
            flops=4e12,
            hbm_bandwidth=0.31e12,
            kernel_overhead=4e-6,
        ),
    )


#: Named hardware parameter packs — one per TEE hardware generation
#: (ROADMAP item 2). Factories, not instances, so every caller gets a
#: fresh frozen dataclass to `with_overrides` from.
HW_PACKS: Dict[str, Callable[[], HardwareParams]] = {
    "h100-cc": _h100_cc,
    "b300-cc": _b300_cc,
    "cpu-tee": _cpu_tee,
}


def get_params(name: str) -> HardwareParams:
    """Instantiate a named hardware pack from the registry."""
    try:
        return HW_PACKS[name]()
    except KeyError:
        raise ValueError(
            f"unknown hardware pack {name!r}; choose from {sorted(HW_PACKS)}"
        ) from None


def pack_names() -> List[str]:
    """Registry pack names, sorted for deterministic CLI help."""
    return sorted(HW_PACKS)
