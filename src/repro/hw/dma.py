"""CVM shared-memory DMA staging buffers.

§6 of the paper: CUDA normally zero-copies ciphertext straight into
CVM *shared* memory, but PipeLLM must not expose unvalidated
speculative ciphertext there. It therefore stages predictions in
*private* memory and copies them into a small ring of fixed-size
shared DMA buffers only after validation; since memcpy is faster than
PCIe, a handful of buffers suffices.

:class:`DmaStaging` models that ring: a bounded pool of buffer slots
plus a memcpy-bandwidth pipe. Its occupancy statistics let tests
verify the paper's claim that shared-memory usage stays small.
"""

from __future__ import annotations

from typing import Generator

from ..sim import BandwidthPipe, Event, Resource, Simulator

__all__ = ["DmaStaging"]

#: Private→shared memcpy bandwidth (B/s); DDR copy, faster than PCIe.
MEMCPY_BANDWIDTH = 200e9


class DmaStaging:
    """Fixed ring of shared-memory bounce buffers."""

    def __init__(
        self,
        sim: Simulator,
        buffer_bytes: int = 16 * 1024 * 1024,
        buffers: int = 4,
        memcpy_bandwidth: float = MEMCPY_BANDWIDTH,
    ) -> None:
        if buffer_bytes <= 0 or buffers <= 0:
            raise ValueError("buffer_bytes and buffers must be positive")
        self.sim = sim
        self.buffer_bytes = buffer_bytes
        self.buffers = buffers
        self._slots = Resource(sim, capacity=buffers)
        self._memcpy = BandwidthPipe(sim, memcpy_bandwidth, name="staging.memcpy")
        self.max_outstanding = 0
        self.stage_count = 0

    @property
    def outstanding(self) -> int:
        return self._slots.in_use

    def stage(self, nbytes: int) -> Generator[Event, None, None]:
        """Copy validated ciphertext into shared memory, slot by slot.

        A process-style helper: acquires one slot per ``buffer_bytes``
        piece, pays the memcpy time, and releases the slot immediately
        (the DMA pipeline consumes it downstream — the copy itself is
        what must not sit on the critical path).
        """
        remaining = nbytes
        while remaining > 0:
            piece = min(remaining, self.buffer_bytes)
            yield self._slots.acquire()
            self.max_outstanding = max(self.max_outstanding, self._slots.in_use)
            try:
                yield self._memcpy.transfer(piece)
            finally:
                self._slots.release()
            self.stage_count += 1
            remaining -= piece
