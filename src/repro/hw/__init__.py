"""Hardware models: host memory, PCIe, crypto engine, GPU enclave."""

from .dma import DmaStaging
from .engine import CryptoEngine
from .gpu import GpuEnclave, GpuOutOfMemory
from .interconnect import Interconnect, LinkRecord
from .memory import AccessViolation, HostMemory, MemoryChunk, PageFault, Region
from .params import (
    GB,
    HW_PACKS,
    KB,
    MB,
    GpuComputeParams,
    HardwareParams,
    default_params,
    get_params,
    pack_names,
)
from .pcie import BusRecord, PcieLink

__all__ = [
    "AccessViolation",
    "BusRecord",
    "CryptoEngine",
    "DmaStaging",
    "GB",
    "GpuComputeParams",
    "GpuEnclave",
    "GpuOutOfMemory",
    "HW_PACKS",
    "HardwareParams",
    "HostMemory",
    "Interconnect",
    "KB",
    "LinkRecord",
    "MB",
    "MemoryChunk",
    "PageFault",
    "PcieLink",
    "Region",
    "default_params",
    "get_params",
    "pack_names",
]
