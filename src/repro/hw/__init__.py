"""Hardware models: host memory, PCIe, crypto engine, GPU enclave."""

from .dma import DmaStaging
from .engine import CryptoEngine
from .gpu import GpuEnclave, GpuOutOfMemory
from .interconnect import Interconnect, LinkRecord
from .memory import AccessViolation, HostMemory, MemoryChunk, PageFault, Region
from .params import GB, KB, MB, GpuComputeParams, HardwareParams, default_params
from .pcie import BusRecord, PcieLink

__all__ = [
    "AccessViolation",
    "BusRecord",
    "CryptoEngine",
    "DmaStaging",
    "GB",
    "GpuComputeParams",
    "GpuEnclave",
    "GpuOutOfMemory",
    "HardwareParams",
    "HostMemory",
    "Interconnect",
    "KB",
    "LinkRecord",
    "MB",
    "MemoryChunk",
    "PageFault",
    "PcieLink",
    "Region",
    "default_params",
]
