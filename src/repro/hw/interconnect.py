"""Inter-GPU interconnect: direct P2P, or CPU bounce buffers under CC.

With confidential computing disabled the GPUs talk over an NVLink-class
peer-to-peer fabric: one hop is a fixed latency plus bytes over a fat
pipe. Enabling CC forbids P2P — the "serialized bridge" measured by
arXiv 2606.23969 — and every hop must round-trip through the CVM:

    GPU src --(copy-engine encrypt, up-link key)--> host bounce buffer
            --(CPU decrypt, CPU re-encrypt under the down-link key)-->
            --(copy-engine decrypt, GPU dst)

Each *directed* link gets two independent :class:`SecureSession`s (the
up and down legs have separate keys and IV streams, all HKDF-chained
off the machine's session key — see
:func:`repro.crypto.handshake.derive_link_session`), so no (key, IV)
pair is ever shared between links and a per-link IV audit has one
monotone lane per stream.

The CPU crypto in the middle is where PipeLLM bites. Two strategies:

* **serialized** (the CC baseline): each hop blocks on an inline
  control+decrypt and an inline control+re-encrypt, CUDA-style, on the
  machine's (often single-thread) crypto pools — collective steps on
  different links contend for the same CPU threads, which is what
  collapses multi-GPU scaling.
* **staged** (PipeLLM): collective schedules are deterministic, so a
  speculator that has seen the schedule predicts each hop's (link, IV)
  in advance. The host pre-arranges its per-chunk pipeline: one
  control-plane charge, both DMA legs streamed back to back, and the
  chunked decrypt→re-encrypt running on the worker pools *concurrently
  with the down leg* — off the critical path whenever enough threads
  are configured. A mispredicted hop ("miss") discards the staged
  ciphertext before the wire (IV streams stay synchronized) and falls
  back to the serialized path.

Functional crypto (real AES-GCM under per-link keys) runs at hop
submission in process-creation order, so concurrent hops on one link
consume IVs in a deterministic, monotone order no matter how their
timing legs interleave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto import SessionEndpoint, derive_link_session
from ..sim import BandwidthPipe, Event, Simulator
from ..telemetry import LinkEvent
from ..tracing import active_collector
from .engine import CryptoEngine
from .gpu import GpuEnclave
from .params import HardwareParams

__all__ = ["Interconnect", "LinkRecord"]


@dataclass(frozen=True)
class LinkRecord:
    """What a fabric snooper sees of one inter-GPU hop (metadata only)."""

    time: float
    src: int
    dst: int
    nbytes: int
    #: "p2p" | "bounce"
    mode: str
    #: "" (p2p) | "serialized" | "staged" | "miss"
    strategy: str


class _Link:
    """Crypto state of one directed link: two sessions, four endpoints."""

    def __init__(self, root_key: bytes, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self.label = f"{src}->{dst}"
        up = derive_link_session(root_key, f"link:{self.label}:up")
        down = derive_link_session(root_key, f"link:{self.label}:down")
        # Up leg: GPU src's copy engine -> host bounce buffer. The GPU
        # side transmits on its d2h stream, the host receives on it.
        self.host_up, self.gpu_up = up.endpoints(
            cpu_name=f"host.link.{self.label}.up",
            gpu_name=f"gpu{src}.link.{self.label}.up",
        )
        # Down leg: host re-encrypt -> GPU dst's copy engine.
        self.host_down, self.gpu_down = down.endpoints(
            cpu_name=f"host.link.{self.label}.down",
            gpu_name=f"gpu{dst}.link.{self.label}.down",
        )
        self.hops = 0

    def endpoints(self) -> Tuple[SessionEndpoint, ...]:
        return (self.host_up, self.gpu_up, self.host_down, self.gpu_down)


class Interconnect:
    """The inter-GPU fabric of one multi-GPU machine."""

    def __init__(
        self,
        sim: Simulator,
        params: HardwareParams,
        gpus: Sequence[GpuEnclave],
        cc_enabled: bool,
        root_key: Optional[bytes] = None,
        engine: Optional[CryptoEngine] = None,
        faults=None,
        telemetry=None,
    ) -> None:
        if len(gpus) < 2:
            raise ValueError("an interconnect needs at least two GPUs")
        if cc_enabled and (root_key is None or engine is None):
            raise ValueError("CC mode requires a root key and a crypto engine")
        self.sim = sim
        self.params = params
        self.gpus = list(gpus)
        self.cc_enabled = cc_enabled
        self.root_key = root_key
        self.engine = engine
        #: Optional :class:`repro.faults.FaultInjector` for link faults.
        self.faults = faults
        #: Optional :class:`repro.telemetry.TelemetryHub` (the machine's).
        self.telemetry = telemetry
        #: Optional link speculator (see ``repro.parallel.speculate``);
        #: duck-typed: ``lookup(src, dst, nbytes) -> bool`` (staged hit).
        self.speculator = None
        self._audit = None
        # Every GPU owns its own CPU<->GPU bounce path (each device has
        # a dedicated PCIe link to the host), modeled per direction at
        # the CC-mode DMA ceiling.
        self.bounce_up = [
            BandwidthPipe(sim, params.cc_dma_bandwidth, latency=params.dma_overhead,
                          name=f"link.gpu{i}.up")
            for i in range(len(self.gpus))
        ]
        self.bounce_down = [
            BandwidthPipe(sim, params.cc_dma_bandwidth, latency=params.dma_overhead,
                          name=f"link.gpu{i}.down")
            for i in range(len(self.gpus))
        ]
        self._p2p: Dict[Tuple[int, int], BandwidthPipe] = {}
        self._links: Dict[Tuple[int, int], _Link] = {}
        #: Fabric-snooper metadata log (the §8.1 attacker's view).
        self.link_log: List[LinkRecord] = []
        self.hops = 0
        self.p2p_bytes = 0
        self.bounce_bytes = 0
        self.spec_hits = 0
        self.spec_misses = 0
        #: Link-level replays (transient-failure retries) and retries
        #: whose budget ran out, mirroring :class:`repro.hw.pcie.PcieLink`.
        self.replays = 0
        self.retry_exhausted = 0
        #: Monotone hop counter for deterministic per-hop trace ids.
        self._trace_seq = 0

    # -- wiring ----------------------------------------------------------

    def attach_speculator(self, speculator) -> None:
        """Install the PipeLLM-style link speculator (None = baseline)."""
        self.speculator = speculator

    def attach_audit(self, audit) -> None:
        """Report every link endpoint's consumed IVs to an IV audit.

        Applies to existing links and to links derived later.
        """
        self._audit = audit
        for link in self._links.values():
            for endpoint in link.endpoints():
                endpoint.attach_audit(audit)

    def link(self, src: int, dst: int) -> _Link:
        """The directed link's crypto state (derived lazily, once)."""
        key = (src, dst)
        if key not in self._links:
            link = _Link(self.root_key, src, dst)
            if self._audit is not None:
                for endpoint in link.endpoints():
                    endpoint.attach_audit(self._audit)
            self._links[key] = link
        return self._links[key]

    def links(self) -> List[_Link]:
        """Every link derived so far (for audits and introspection)."""
        return list(self._links.values())

    def pipes(self) -> List[BandwidthPipe]:
        """All fabric pipes (bounce legs + any P2P pairs), for metrics."""
        return [*self.bounce_up, *self.bounce_down, *self._p2p.values()]

    def _p2p_pipe(self, src: int, dst: int) -> BandwidthPipe:
        key = (src, dst)
        if key not in self._p2p:
            self._p2p[key] = BandwidthPipe(
                self.sim, self.params.p2p_bandwidth, latency=self.params.p2p_latency,
                name=f"link.p2p.{src}-{dst}",
            )
        return self._p2p[key]

    # -- transfers -------------------------------------------------------

    def transfer(self, src: int, dst: int, payload: bytes, nbytes: int = 0,
                 tag: str = "", collective: str = "") -> Event:
        """Move ``payload`` from GPU ``src`` to GPU ``dst``.

        Returns a completion event whose value is the delivered
        plaintext; with a ``tag`` the payload also lands in the
        destination GPU's device memory. ``nbytes`` is the logical
        transfer size when ``payload`` is a small stand-in for a large
        tensor (the usual case: timing follows ``nbytes``, crypto runs
        on the real ``payload`` bytes).
        """
        if src == dst:
            raise ValueError("transfer requires distinct GPUs")
        if not (0 <= src < len(self.gpus) and 0 <= dst < len(self.gpus)):
            raise ValueError("GPU index out of range")
        nbytes = nbytes or len(payload)
        if self.cc_enabled:
            return self.sim.process(self._bounce_hop(src, dst, payload, nbytes, tag, collective))
        return self.sim.process(self._p2p_hop(src, dst, payload, nbytes, tag, collective))

    def _finish_hop(self, start: float, src: int, dst: int, nbytes: int,
                    mode: str, strategy: str, collective: str, record,
                    root=None) -> None:
        self.link_log.append(LinkRecord(start, src, dst, nbytes, mode, strategy))
        hub = self.telemetry
        if hub is not None:
            hub.metrics.counter("interconnect.hops").add()
            hub.metrics.counter(f"interconnect.{mode}_bytes").add(nbytes)
            if hub.enabled:
                hub.emit(LinkEvent(self.sim.now, src, dst, nbytes, mode,
                                   strategy, collective))
            if record is not None:
                hub.mark_api_done(record, self.sim.now)
                hub.mark_complete(record, self.sim.now)
        if root is not None:
            collector = active_collector()
            if collector is not None:
                collector.end(root, self.sim.now)

    def _begin_record(self, dst: int, nbytes: int, tag: str):
        hub = self.telemetry
        if hub is None or not hub.enabled:
            return None
        return hub.begin_request("link", addr=dst, size=nbytes,
                                 time=self.sim.now, tag=tag)

    def _begin_hop_trace(self, record, src: int, dst: int):
        """Mint a per-hop root trace for fabric hops no request owns.

        Hops issued under a bound request trace already carry that
        context on their lifecycle record; everything else (collective
        steps in the parallel engines) gets its own deterministic
        ``<machine>.hop-<n>`` trace so attribution covers the fabric.
        """
        if record is None or record.trace is not None:
            return None
        collector = active_collector()
        if collector is None:
            return None
        label = self.telemetry.label or "fabric"
        self._trace_seq += 1
        root = collector.begin(
            None, f"hop {src}->{dst}", "request", label, self.sim.now,
            trace_id=f"{label}.hop-{self._trace_seq}",
        )
        record.trace = root
        return root

    def _p2p_hop(self, src, dst, payload, nbytes, tag, collective):
        start = self.sim.now
        record = self._begin_record(dst, nbytes, tag)
        root = self._begin_hop_trace(record, src, dst)
        self.hops += 1
        self.p2p_bytes += nbytes
        yield self._leg(self._p2p_pipe(src, dst), nbytes, f"p2p:{src}->{dst}")
        if record is not None:
            record.kind = "link"
            record.strategy = "native"
            record.mark_stage("interconnect", start, self.sim.now)
        if tag:
            self.gpus[dst].store_plaintext(tag, payload)
        self._finish_hop(start, src, dst, nbytes, "p2p", "", collective, record,
                         root=root)
        return payload

    def _bounce_hop(self, src, dst, payload, nbytes, tag, collective):
        sim = self.sim
        start = sim.now
        link = self.link(src, dst)
        link.hops += 1
        self.hops += 1
        self.bounce_bytes += nbytes
        record = self._begin_record(dst, nbytes, tag)
        root = self._begin_hop_trace(record, src, dst)

        staged = False
        if self.speculator is not None:
            staged = bool(self.speculator.lookup(src, dst, nbytes))
            if staged:
                self.spec_hits += 1
            else:
                self.spec_misses += 1
        strategy = ("staged" if staged else "miss") if self.speculator is not None \
            else "serialized"

        # Functional crypto runs up front, in hop-submission order, so
        # concurrent hops on one link keep their encrypt/decrypt pairs
        # matched and every IV lane monotone. (The *time* those
        # operations take is charged below.)
        message_up = link.gpu_up.encrypt_next(payload, nbytes_logical=nbytes)
        plain = link.host_up.decrypt_next(message_up)
        if staged:
            # The speculator's predicted IV: stage the ciphertext
            # without consuming the stream, then commit when it is put
            # on the wire — a hit means the guess equals the counter.
            predicted = link.host_down.tx_iv.current
            message_down = link.host_down.encrypt_with_iv(
                plain, predicted, nbytes_logical=nbytes
            )
            committed = link.host_down.commit_tx_iv()
            assert committed == predicted
        else:
            # Misses never ship a stale staged ciphertext: whatever was
            # pre-arranged is discarded *before* the wire and the hop
            # re-encrypts under the true next IV, so streams never
            # desynchronize (the §4.1 invariant, applied per link).
            message_down = link.host_down.encrypt_next(plain, nbytes_logical=nbytes)
        delivered = link.gpu_down.decrypt_next(message_down)

        if record is not None:
            record.kind = "link"
            record.strategy = strategy
            record.commit_iv = message_down.sender_iv
            if staged:
                record.staged_iv = message_down.sender_iv

        if staged:
            # The predicted schedule pre-arranges the control plane and
            # the per-chunk crypto pipeline before the hop arrives, so
            # the critical path is the two DMA legs (§7.2: the residual
            # overhead of the speculated path is DMA bandwidth). The
            # chunked decrypt→re-encrypt runs on the worker pools
            # concurrently with the down leg and still pushes back
            # when the pools saturate.
            t1 = sim.now
            yield self._leg(self.bounce_up[src], nbytes, f"up:{link.label}")
            # Split across workers in ~128 KB slices: wider splits only
            # add per-slice stream overhead for the small ring segments
            # collectives produce (the pools clamp to their width).
            ways = max(1, -(-nbytes // (128 * 1024)))
            crypto = sim.all_of([
                self.engine.submit_decrypt_parallel(nbytes, ways=ways),
                self.engine.submit_encrypt_parallel(nbytes, ways=ways),
            ])
            down = self._leg(self.bounce_down[dst], nbytes, f"down:{link.label}")
            yield sim.all_of([down, crypto])
            if record is not None:
                record.mark_stage("interconnect", t1, sim.now)
        else:
            # The serialized bridge: inline control+AES on each leg,
            # CUDA-style, contending on the machine's crypto pools.
            t0 = sim.now
            yield self._leg(self.bounce_up[src], nbytes, f"up:{link.label}")
            if record is not None:
                record.mark_stage("interconnect", t0, sim.now)
            t1 = sim.now
            yield self.engine.submit_decrypt_inline_cc(nbytes)
            if record is not None:
                record.mark_stage("decrypt", t1, sim.now)
            t2 = sim.now
            yield self.engine.submit_encrypt_inline_cc(nbytes)
            if record is not None:
                record.mark_stage("encrypt", t2, sim.now)
            t3 = sim.now
            yield self._leg(self.bounce_down[dst], nbytes, f"down:{link.label}")
            if record is not None:
                record.mark_stage("interconnect", t3, sim.now)

        if tag:
            self.gpus[dst].store_plaintext(tag, delivered)
        if self.speculator is not None and self.telemetry is not None:
            self.telemetry.metrics.counter(
                f"interconnect.spec_{'hits' if staged else 'misses'}"
            ).add()
        self._finish_hop(start, src, dst, nbytes, "bounce", strategy, collective,
                         record, root=root)
        return delivered

    # -- fault-aware DMA legs --------------------------------------------

    def _leg(self, pipe: BandwidthPipe, nbytes: int, label: str) -> Event:
        inj = self.faults
        if inj is None or not (inj.plan.link_drop_rate or inj.plan.link_jitter_rate):
            return pipe.transfer(nbytes)
        done = self.sim.event()
        self.sim.process(self._faulty_leg(pipe, nbytes, label, done))
        return done

    def _faulty_leg(self, pipe: BandwidthPipe, nbytes: int, label: str, done: Event):
        """One hop leg under the fault plane: jitter, drops, bounded replay."""
        inj = self.faults
        policy = inj.retry
        attempt = 0
        while True:
            attempt += 1
            yield pipe.transfer(nbytes)
            jitter = inj.link_jitter(label)
            if jitter > 0.0:
                yield self.sim.timeout(jitter)
            if not inj.link_drop(label):
                break
            if attempt >= policy.max_attempts:
                self.retry_exhausted += 1
                inj.note_recovery("retry-exhausted", attempt, label)
                break
            self.replays += 1
            inj.note_recovery("retry", attempt, label)
            yield self.sim.timeout(policy.delay(attempt))
        done.succeed()

    # -- introspection ---------------------------------------------------

    @property
    def bytes_moved(self) -> int:
        return self.p2p_bytes + self.bounce_bytes

    def hit_rate(self) -> float:
        """Staged fraction of speculated hops (0.0 with no speculator)."""
        total = self.spec_hits + self.spec_misses
        return self.spec_hits / total if total else 0.0
