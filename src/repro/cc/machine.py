"""Assembly of one simulated testbed: CVM + H100 enclave.

A :class:`Machine` wires together the simulator, host memory, PCIe
link, CPU crypto engine, GPU enclave and (when CC is enabled) the
secure session endpoints with synchronized IV streams. Every
experiment builds exactly one machine and runs one serving engine on
it, so machines are cheap, isolated, and deterministic.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..crypto import (
    GOLDEN_MEASUREMENTS,
    GpuDevice,
    RootOfTrust,
    SecureSession,
    SessionEndpoint,
    SessionHandshake,
    derive_link_session,
)
from ..hw import (
    CryptoEngine,
    DmaStaging,
    GpuEnclave,
    HardwareParams,
    HostMemory,
    Interconnect,
    default_params,
)
from ..sim import MetricSet, Simulator
from ..sim.tracing import SpanTracer
from ..hw.pcie import PcieLink
from ..telemetry import TelemetryHub, active_session

__all__ = ["CcMode", "Machine", "build_attested_machine", "build_machine"]

#: Deterministic session key for reproducible functional traces.
_DEFAULT_KEY = bytes(range(16))


class CcMode(enum.Enum):
    """Whether NVIDIA Confidential Computing is active on the GPU."""

    DISABLED = "disabled"
    ENABLED = "enabled"


class Machine:
    """One CVM-plus-GPU testbed instance."""

    def __init__(
        self,
        cc_mode: CcMode,
        params: Optional[HardwareParams] = None,
        enc_threads: int = 1,
        dec_threads: int = 1,
        key: bytes = _DEFAULT_KEY,
        session: Optional[SecureSession] = None,
        sim: Optional[Simulator] = None,
        faults=None,
        n_gpus: int = 1,
    ) -> None:
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        self.params = params or default_params()
        self.cc_mode = cc_mode
        #: A cluster runs many machines inside one shared simulator so
        #: their event timelines interleave; a standalone machine owns
        #: its own kernel, exactly as before.
        self.shared_sim = sim is not None
        self.sim = sim if sim is not None else Simulator()
        self.metrics = MetricSet()
        # The unified telemetry hub: shares the sim's span tracer (so
        # resource/hardware instrumentation flows in) and the machine's
        # metric registry. Disabled unless a recording session is
        # active — the disabled fast path is a single attribute check.
        # Machines sharing a simulator get a private tracer instead:
        # the shared kernel tracer belongs to the cluster-level hub,
        # so hardware lanes are not duplicated once per replica.
        self.telemetry = TelemetryHub(
            sim=self.sim,
            metrics=self.metrics,
            tracer=SpanTracer(enabled=False) if self.shared_sim else self.sim.tracer,
        )
        trace_session = active_session()
        if trace_session is not None:
            trace_session.register(self.telemetry)
        #: Optional :class:`repro.faults.FaultInjector`. Binding gives
        #: the injector this machine's clock and hub; the hardware
        #: models below consult it at their injection points and the
        #: PipeLLM runtime picks it up from here for the crypto-plane
        #: faults (tag corruption, IV desync, forced mispredictions).
        self.faults = faults
        if faults is not None:
            faults.bind(self.sim, self.telemetry)
        self.host_memory = HostMemory(
            capacity=self.params.host_memory_bytes, page_size=self.params.page_size
        )
        self.pcie = PcieLink(self.sim, self.params, faults=faults)
        self.engine = CryptoEngine(
            self.sim, self.params, enc_threads=enc_threads, dec_threads=dec_threads,
            faults=faults,
        )
        self.staging = DmaStaging(self.sim)

        self.cpu_endpoint: Optional[SessionEndpoint] = None
        gpu_endpoint: Optional[SessionEndpoint] = None
        if cc_mode is CcMode.ENABLED:
            session = session or SecureSession(key)
            self.cpu_endpoint, gpu_endpoint = session.endpoints()
        self.session = session
        #: One enclave per GPU. GPU 0 keeps the machine's primary
        #: session (and the legacy ``machine.gpu`` name); each extra
        #: GPU gets its own host channel whose session is HKDF-chained
        #: off the primary key, so no two device channels share IVs.
        self.gpus = [GpuEnclave(self.sim, self.params, endpoint=gpu_endpoint)]
        self.host_endpoints: list = [self.cpu_endpoint]
        for index in range(1, n_gpus):
            cpu_ep: Optional[SessionEndpoint] = None
            gpu_ep: Optional[SessionEndpoint] = None
            if cc_mode is CcMode.ENABLED:
                gpu_session = derive_link_session(session.key, f"h2d:gpu{index}")
                cpu_ep, gpu_ep = gpu_session.endpoints(
                    cpu_name=f"cpu{index}", gpu_name=f"gpu{index}"
                )
            self.host_endpoints.append(cpu_ep)
            self.gpus.append(
                GpuEnclave(self.sim, self.params, endpoint=gpu_ep, lane=f"gpu{index}")
            )
        self.gpu = self.gpus[0]
        #: The inter-GPU fabric; None on single-GPU machines.
        self.interconnect: Optional[Interconnect] = None
        if n_gpus > 1:
            self.interconnect = Interconnect(
                self.sim,
                self.params,
                self.gpus,
                cc_enabled=cc_mode is CcMode.ENABLED,
                root_key=session.key if session is not None else None,
                engine=self.engine,
                faults=faults,
                telemetry=self.telemetry,
            )

    @property
    def cc_enabled(self) -> bool:
        return self.cc_mode is CcMode.ENABLED

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)


def build_machine(
    cc_mode: CcMode = CcMode.ENABLED,
    params: Optional[HardwareParams] = None,
    enc_threads: int = 1,
    dec_threads: int = 1,
    faults=None,
    n_gpus: int = 1,
) -> Machine:
    """Convenience factory mirroring the paper's three configurations.

    * ``build_machine(CcMode.DISABLED)`` — the "w/o CC" baseline.
    * ``build_machine(CcMode.ENABLED)`` — the "CC" baseline (CUDA
      encrypts inline on one thread; pass ``enc_threads=4`` for the
      Fig. 9 "CC-4t" variant).
    * PipeLLM runs on an ENABLED machine via
      :class:`repro.core.runtime.PipeLLMRuntime`.
    """
    return Machine(cc_mode, params=params, enc_threads=enc_threads,
                   dec_threads=dec_threads, faults=faults, n_gpus=n_gpus)


def build_attested_machine(
    params: Optional[HardwareParams] = None,
    enc_threads: int = 1,
    dec_threads: int = 1,
    device_id: str = "gpu-0",
    host_seed: bytes = b"cvm-driver-seed",
    device_seed: bytes = b"h100-device-seed",
    sim: Optional[Simulator] = None,
    faults=None,
    n_gpus: int = 1,
) -> Machine:
    """Full CC bring-up: handshake, attestation, then the machine.

    Runs the SPDM-style exchange of :mod:`repro.crypto.handshake`, has
    the (provisioned) device attest its measurements over the
    transcript, verifies the report against the golden values, and
    only then builds a machine whose session key and starting IVs are
    the handshake-derived ones — the initialization §2.2 presumes.
    Raises :class:`repro.crypto.AttestationError` when the device is
    not genuine.
    """
    driver = SessionHandshake("driver", seed=host_seed)
    gpu = SessionHandshake("gpu", seed=device_seed)
    transcript = driver.transcript(gpu.message())

    root = RootOfTrust()
    device = GpuDevice(device_id, root.provision(device_id))
    report = device.attest(transcript)
    root.verify(report, expected_measurements=GOLDEN_MEASUREMENTS)

    session = driver.complete(gpu.message())
    return Machine(
        CcMode.ENABLED,
        params=params,
        enc_threads=enc_threads,
        dec_threads=dec_threads,
        session=session,
        sim=sim,
        faults=faults,
        n_gpus=n_gpus,
    )
