"""NVIDIA-CC-style secure channel: machine assembly + CUDA-like API."""

from .api import CudaContext, DeviceRuntime, TransferHandle, TransferLog, TransferRecord
from .machine import CcMode, Machine, build_attested_machine, build_machine

__all__ = [
    "CcMode",
    "CudaContext",
    "DeviceRuntime",
    "Machine",
    "TransferHandle",
    "TransferLog",
    "TransferRecord",
    "build_attested_machine",
    "build_machine",
]
