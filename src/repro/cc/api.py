"""CUDA-like transfer API and the two baseline runtimes.

Serving engines (FlexGen / vLLM / PEFT models) are written against the
narrow :class:`DeviceRuntime` interface — the same surface the real
PipeLLM hooks (``cudaMemcpyAsync`` / ``cudaDeviceSynchronize``):

* :class:`CudaContext` with ``CcMode.DISABLED`` is the "w/o CC"
  baseline: async DMA at native PCIe speed.
* :class:`CudaContext` with ``CcMode.ENABLED`` is the "CC" baseline:
  the memcpy call blocks while a CPU thread AES-GCM-encrypts (H2D) or
  decrypts (D2H) inline, reproducing the Fig. 2 behaviour.
* :class:`repro.core.runtime.PipeLLMRuntime` implements the same
  interface with speculative pipelined encryption.

Every runtime maintains the *functional* channel in lock-step with the
timing model: payload bytes are really encrypted under the session's
incrementing IVs and really authenticated by the GPU copy-engine
model.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from ..hw.memory import MemoryChunk
from ..sim import Event, Simulator
from ..telemetry import TransferEvent
from ..telemetry.hub import RequestRecord
from .machine import CcMode, Machine

__all__ = ["CudaContext", "DeviceRuntime", "TransferHandle", "TransferLog", "TransferRecord"]

#: Default retention for the observed-transfer ring buffer. Pattern
#: detectors only ever look at a short recent window, so bounding the
#: log keeps week-long multi-replica runs at constant memory.
DEFAULT_TRACE_CAP = 65536

H2D = "h2d"
D2H = "d2h"


@dataclass
class TransferHandle:
    """Tracks one memcpy from API call to data landing."""

    chunk: MemoryChunk
    direction: str
    #: Fires when the (possibly blocking) API call returns to the app.
    api_done: Event
    #: Fires when the data is actually resident at the destination.
    complete: Event


@dataclass(frozen=True)
class TransferRecord:
    """One line of the low-level trace PipeLLM's predictor observes."""

    time: float
    direction: str
    addr: int
    size: int
    tag: str


class TransferLog:
    """Ring buffer of the most recent :class:`TransferRecord` entries.

    Looks like a read-only list over the retained window (newest-last)
    while keeping whole-run statistics exact: ``total`` counts every
    record ever appended, ``dropped`` how many fell off the front.
    """

    def __init__(self, cap: Optional[int] = DEFAULT_TRACE_CAP) -> None:
        if cap is not None and cap < 1:
            raise ValueError("trace cap must be positive (or None for unbounded)")
        self.cap = cap
        self._records: deque = deque(maxlen=cap)
        self.total = 0

    @property
    def dropped(self) -> int:
        """Records evicted from the front of the ring."""
        return self.total - len(self._records)

    def append(self, record: TransferRecord) -> None:
        self._records.append(record)
        self.total += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TransferRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._records)[index]
        return self._records[index]

    def __repr__(self) -> str:
        return f"TransferLog(retained={len(self)}, total={self.total}, cap={self.cap})"


class DeviceRuntime(abc.ABC):
    """The memcpy/synchronize surface all serving engines use."""

    def __init__(self, machine: Machine, trace_cap: Optional[int] = DEFAULT_TRACE_CAP) -> None:
        self.machine = machine
        self.sim: Simulator = machine.sim
        self._outstanding: List[Event] = []
        self.trace = TransferLog(cap=trace_cap)
        self._observers: List[Callable[[TransferRecord], None]] = []

    # -- interface ---------------------------------------------------------

    @abc.abstractmethod
    def memcpy_h2d(self, chunk: MemoryChunk) -> TransferHandle:
        """Start a host→device copy; blocking behaviour is mode-specific."""

    @abc.abstractmethod
    def memcpy_d2h(self, chunk: MemoryChunk) -> TransferHandle:
        """Start a device→host copy into host region ``chunk.addr``."""

    def synchronize(self) -> Event:
        """Event firing once every transfer issued so far has landed."""
        pending = [e for e in self._outstanding if not e.triggered]
        self._outstanding = pending
        return self.sim.all_of(list(pending))

    def cpu_access(self, addr: int) -> Event:
        """Wait-point before the CPU touches host data at ``addr``.

        Baseline runtimes decrypt synchronously, so data is always
        ready; PipeLLM overrides this for its asynchronous decryptor.
        """
        event = self.sim.event()
        event.succeed()
        return event

    def hint_weight_chunk_size(self, nbytes: int) -> None:
        """Model-geometry hint; baselines have no predictor to feed."""

    def hint_kv_block_size(self, nbytes: int) -> None:
        """Model-geometry hint; baselines have no predictor to feed."""

    # -- shared plumbing ------------------------------------------------------

    def add_observer(self, observer: Callable[[TransferRecord], None]) -> None:
        self._observers.append(observer)

    def _record(self, direction: str, chunk: MemoryChunk) -> None:
        record = TransferRecord(self.sim.now, direction, chunk.addr, chunk.size, chunk.tag)
        self.trace.append(record)
        for observer in self._observers:
            observer(record)

    def _track(self, complete: Event) -> None:
        self._outstanding.append(complete)

    def _telemetry_request(self, handle: TransferHandle) -> Optional[RequestRecord]:
        """Open a per-request lifecycle record on the telemetry hub.

        Returns None (after one attribute check) when telemetry is
        disabled, so the hot path stays effectively free. When enabled,
        a :class:`TransferEvent` goes on the bus and the record's
        api/complete timestamps are stitched in via event callbacks.
        """
        hub = self.machine.telemetry
        if not hub.enabled:
            return None
        chunk = handle.chunk
        record = hub.begin_request(
            handle.direction, chunk.addr, chunk.size, self.sim.now, tag=chunk.tag
        )
        hub.emit(TransferEvent(self.sim.now, handle.direction, chunk.addr,
                               chunk.size, chunk.tag, record.request_id))
        handle.api_done.add_callback(
            lambda _e: hub.mark_api_done(record, self.sim.now)
        )
        handle.complete.add_callback(
            lambda _e: hub.mark_complete(record, self.sim.now)
        )
        return record


class CudaContext(DeviceRuntime):
    """Baseline runtimes: native ("w/o CC") and NVIDIA CC ("CC")."""

    def __init__(
        self, machine: Machine, trace_cap: Optional[int] = DEFAULT_TRACE_CAP
    ) -> None:
        super().__init__(machine, trace_cap=trace_cap)
        self.params = machine.params

    # -- host to device ---------------------------------------------------

    def memcpy_h2d(self, chunk: MemoryChunk) -> TransferHandle:
        self._record(H2D, chunk)
        handle = TransferHandle(chunk, H2D, self.sim.event(), self.sim.event())
        self._track(handle.complete)
        record = self._telemetry_request(handle)
        if record is not None:
            record.strategy = "inline" if self.machine.cc_enabled else "native"
        if self.machine.cc_enabled:
            self.sim.process(self._h2d_cc(handle, record))
        else:
            self.sim.process(self._h2d_plain(handle, record))
        return handle

    def _h2d_plain(self, handle: TransferHandle, record: Optional[RequestRecord] = None):
        chunk = handle.chunk
        self.sim.process(_fire_after(self.sim, self.params.ncc_api_latency(chunk.size), handle.api_done))
        start = self.sim.now
        yield self.machine.pcie.transfer_h2d(chunk.size)
        if record is not None:
            record.mark_stage("pcie", start, self.sim.now)
        self.machine.gpu.receive_plaintext(chunk)
        handle.complete.succeed()

    def _h2d_cc(self, handle: TransferHandle, record: Optional[RequestRecord] = None):
        chunk = handle.chunk
        # Functional layer runs eagerly in call order on both sides:
        # the CUDA library consumes TX IVs in API-call order, and the
        # channel delivers ciphertext in the same order (with several
        # crypto threads the *encryptions* overlap, but commits to the
        # wire stay IV-ordered — anything else fails GCM auth).
        message = self.machine.cpu_endpoint.encrypt_next(chunk.payload, nbytes_logical=chunk.size)
        self.machine.gpu.receive_ciphertext(chunk, message)
        # Timing: the call blocks for control plane + one-thread AES.
        service = self.params.cc_control_latency + chunk.size / self.params.enc_bandwidth_per_thread
        start = self.sim.now
        yield self.machine.engine._enc_pool.submit(service)
        if record is not None:
            record.mark_stage("encrypt", start, self.sim.now)
        self.machine.engine.bytes_encrypted += chunk.size
        handle.api_done.succeed()
        start = self.sim.now
        yield self.machine.pcie.transfer_h2d(chunk.size, cc_path=True)
        if record is not None:
            record.mark_stage("pcie", start, self.sim.now)
        handle.complete.succeed()

    # -- device to host ----------------------------------------------------

    def memcpy_d2h(self, chunk: MemoryChunk) -> TransferHandle:
        self._record(D2H, chunk)
        handle = TransferHandle(chunk, D2H, self.sim.event(), self.sim.event())
        self._track(handle.complete)
        record = self._telemetry_request(handle)
        if record is not None:
            record.strategy = "inline" if self.machine.cc_enabled else "native"
        if self.machine.cc_enabled:
            self.sim.process(self._d2h_cc(handle, record))
        else:
            self.sim.process(self._d2h_plain(handle, record))
        return handle

    def _d2h_plain(self, handle: TransferHandle, record: Optional[RequestRecord] = None):
        chunk = handle.chunk
        self.sim.process(_fire_after(self.sim, self.params.ncc_api_latency(chunk.size), handle.api_done))
        start = self.sim.now
        yield self.machine.pcie.transfer_d2h(chunk.size)
        if record is not None:
            record.mark_stage("pcie", start, self.sim.now)
        device_payload = self.machine.gpu.read_plaintext(chunk.tag)
        self.machine.host_memory.write_silent(chunk.addr, device_payload or chunk.payload)
        handle.complete.succeed()

    def _d2h_cc(self, handle: TransferHandle, record: Optional[RequestRecord] = None):
        chunk = handle.chunk
        # Functional: GPU copy engine encrypts with its next TX IV at
        # call time; the CPU decrypts in the same order below.
        message = self.machine.gpu.send_ciphertext(chunk)
        plaintext = self.machine.cpu_endpoint.decrypt_next(message)
        start = self.sim.now
        yield self.machine.pcie.transfer_d2h(chunk.size, cc_path=True)
        if record is not None:
            record.mark_stage("pcie", start, self.sim.now)
        # Timing: the call blocks until the CPU thread finished decrypting.
        service = self.params.cc_control_latency + chunk.size / self.params.dec_bandwidth_per_thread
        start = self.sim.now
        yield self.machine.engine._dec_pool.submit(service)
        if record is not None:
            record.mark_stage("decrypt", start, self.sim.now)
        self.machine.engine.bytes_decrypted += chunk.size
        self.machine.host_memory.write_silent(chunk.addr, plaintext)
        handle.api_done.succeed()
        handle.complete.succeed()


def _fire_after(sim: Simulator, delay: float, event: Event):
    yield sim.timeout(delay)
    event.succeed()
