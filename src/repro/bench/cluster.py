"""Cluster experiments: scaling, load-latency and routing policies.

Not a paper figure — PipeLLM evaluates one machine — but the natural
deployment question the paper leaves open: what happens when N
confidential replicas serve a multi-tenant stream behind a gateway?
The experiment sweeps three axes with the same harness the figure
experiments use:

* **throughput vs replicas** at a per-replica-proportional offered
  load (does the encrypted fleet scale linearly?);
* **p50/p99 latency vs offered load** at a fixed fleet size (where
  does the admission queue start to bite?);
* **routing policies** head to head, plus a crash/recover run that
  must finish with zero GCM tag failures.
"""

from __future__ import annotations

from ..cluster import run_cluster
from ..core import ClusterConfig
from ..sim import mean
from .tables import ExperimentResult

__all__ = ["cluster_scaling"]


def _row(result, section: str, rate: float) -> dict:
    util = mean(list(result.utilization.values()))
    return dict(
        section=section,
        replicas=result.replicas,
        policy=result.policy,
        rate_rps=rate,
        offered=result.offered,
        completed=result.completed,
        shed=result.shed,
        throughput_rps=result.throughput,
        p50_s=result.p50_latency,
        p99_s=result.p99_latency,
        util=util,
        failovers=result.failovers,
        auth_fail=result.auth_failures,
    )


def cluster_scaling(scale: str = "quick") -> ExperimentResult:
    """Cluster: throughput vs replicas, latency vs load, policy battle."""
    quick = scale == "quick"
    duration = 8.0 if quick else 30.0
    result = ExperimentResult(
        experiment_id="cluster",
        title="multi-replica confidential serving (extension)",
        columns=[
            "section", "replicas", "policy", "rate_rps", "offered",
            "completed", "shed", "throughput_rps", "p50_s", "p99_s",
            "util", "failovers", "auth_fail",
        ],
    )

    # Throughput vs fleet size at proportional offered load.
    for replicas in (1, 2, 4) if quick else (1, 2, 4, 8):
        rate = 2.5 * replicas
        config = ClusterConfig(replicas=replicas, policy="least-loaded")
        run = run_cluster(config, rate=rate, duration=duration)
        result.add_row(**_row(run, "scaling", rate))

    # Latency vs offered load at a fixed fleet of two replicas.
    for rate in ((2.0, 6.0, 10.0) if quick else (2.0, 4.0, 8.0, 12.0, 16.0)):
        config = ClusterConfig(replicas=2, policy="least-loaded")
        run = run_cluster(config, rate=rate, duration=duration)
        result.add_row(**_row(run, "load", rate))

    # Routing policies head to head on the same three-replica fleet.
    for policy in ("round-robin", "least-loaded", "affinity"):
        config = ClusterConfig(replicas=3, policy=policy)
        run = run_cluster(config, rate=6.0, duration=duration)
        result.add_row(**_row(run, "policy", 6.0))

    # Crash/recover under load: the run must drain with clean crypto.
    config = ClusterConfig(
        replicas=2, policy="least-loaded",
        fail_at=duration / 4, fail_replica=0, recover_after=duration / 4,
    )
    run = run_cluster(config, rate=6.0, duration=duration)
    result.add_row(**_row(run, "failover", 6.0))
    result.add_note(
        f"failover run: {run.crashes} crash, {run.failovers} failovers, "
        f"{run.auth_failures} auth failures, {run.iv_observed} IVs audited "
        f"over {run.iv_lanes} (key, stream) lanes"
    )
    result.add_note(
        "affinity policy prefix-hit advantage: see `repro cluster --policy affinity`"
    )
    return result
