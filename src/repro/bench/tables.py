"""Structured experiment results and plain-text rendering.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` — an ordered list of row dicts plus
metadata — so benchmark code, tests and EXPERIMENTS.md all consume the
same structure, and ``render()`` prints the same rows the paper's
table or figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentResult:
    """Rows reproducing one paper table or figure."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row has columns not in schema: {sorted(unknown)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def find(self, **criteria: Any) -> Dict[str, Any]:
        """The first row matching all (column, value) criteria."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria}")

    def select(self, **criteria: Any) -> List[Dict[str, Any]]:
        """All rows matching all (column, value) criteria."""
        return [
            row for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (``repro run --json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Plain-text table, one line per row."""
        header = [self.experiment_id + " — " + self.title]
        cells = [[_format_cell(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        header.append("  ".join(col.ljust(w) for col, w in zip(self.columns, widths)))
        header.append("  ".join("-" * w for w in widths))
        for row_cells in cells:
            header.append("  ".join(cell.ljust(w) for cell, w in zip(row_cells, widths)))
        for note in self.notes:
            header.append(f"note: {note}")
        return "\n".join(header)
