"""Benchmark harness: system registry, experiment runners, tables."""

from .ablations import (
    ablation_async_decrypt,
    ablation_enc_threads,
    ablation_kv_depth,
    ablation_leeway,
)
from .experiments import (
    FULL,
    QUICK,
    Scale,
    attribution_breakdown,
    fig10_success_rate,
    fig2_microbenchmark,
    fig3a_flexgen_overhead,
    fig3b_vllm_overhead,
    fig3c_peft_overhead,
    fig7_model_offloading,
    fig8_kv_swapping,
    fig9_threading,
    run_flexgen,
    run_peft,
    run_vllm,
)
from .continuous import (
    BENCH_SCHEMA_VERSION,
    SUITES,
    compare_artifacts,
    find_latest_artifact,
    load_artifact,
    next_artifact_path,
    render_comparison,
    run_suite,
)
from .faults import FULL_FAULT_RATES, QUICK_FAULT_RATES, fault_campaign
from .parallel import FULL_GPU_COUNTS, QUICK_GPU_COUNTS, parallel_scaling
from .systems import CC, SystemSpec, WITHOUT_CC, cc_threads, pipellm, pipellm_zero
from .claims import CLAIMS, Claim, ClaimOutcome, verify_claims
from .cluster import cluster_scaling
from .disagg import STRESS_TRACE, disagg_frontier
from .extensions import extension_layerwise_fifo, extension_zero_offload
from .serve import serve_frontier
from .teeio import TEEIO_LINE_RATE, extension_teeio_scaling, teeio_params
from .tables import ExperimentResult

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "CC",
    "SUITES",
    "compare_artifacts",
    "find_latest_artifact",
    "load_artifact",
    "next_artifact_path",
    "render_comparison",
    "run_suite",
    "ablation_async_decrypt",
    "attribution_breakdown",
    "ablation_enc_threads",
    "ablation_kv_depth",
    "ablation_leeway",
    "CLAIMS",
    "Claim",
    "ClaimOutcome",
    "verify_claims",
    "cluster_scaling",
    "STRESS_TRACE",
    "disagg_frontier",
    "fault_campaign",
    "FULL_FAULT_RATES",
    "QUICK_FAULT_RATES",
    "FULL_GPU_COUNTS",
    "QUICK_GPU_COUNTS",
    "parallel_scaling",
    "serve_frontier",
    "ExperimentResult",
    "FULL",
    "QUICK",
    "Scale",
    "SystemSpec",
    "WITHOUT_CC",
    "cc_threads",
    "fig10_success_rate",
    "fig2_microbenchmark",
    "fig3a_flexgen_overhead",
    "fig3b_vllm_overhead",
    "fig3c_peft_overhead",
    "fig7_model_offloading",
    "fig8_kv_swapping",
    "fig9_threading",
    "extension_teeio_scaling",
    "extension_layerwise_fifo",
    "extension_zero_offload",
    "teeio_params",
    "TEEIO_LINE_RATE",
    "pipellm",
    "pipellm_zero",
    "run_flexgen",
    "run_peft",
    "run_vllm",
]
