"""Ablations on PipeLLM's design choices (beyond the paper's figures).

The paper ablates only prediction success (Fig. 10). These sweeps
cover the remaining load-bearing choices DESIGN.md calls out:

* ``ablation_enc_threads`` — §7.2 states model offloading needs
  multiple encryption threads so ciphertext production outruns the
  staged-DMA path; this sweep shows the throughput knee.
* ``ablation_async_decrypt`` — §5.4's asynchronous decryption: what
  swap-out decryption on the critical path would cost.
* ``ablation_leeway`` — the adaptive IV-leeway controller (our
  extension) against fixed-leeway configurations.
* ``ablation_kv_depth`` — staging window depth for the LIFO KV
  workload (deep windows invert IV order against commit order).
"""

from __future__ import annotations

from typing import Sequence

from ..core import PipeLLMConfig
from ..hw import GB
from ..models import OPT_30B, OPT_66B
from ..workloads import ALPACA, SHAREGPT, SyntheticShape
from .experiments import (
    ALPACA_30B_RESERVE,
    FLEXGEN_BATCH,
    OFFLOAD_DEC_THREADS,
    _scale,
    run_flexgen,
    run_vllm,
)
from .systems import WITHOUT_CC, pipellm
from .tables import ExperimentResult

__all__ = [
    "ablation_async_decrypt",
    "ablation_enc_threads",
    "ablation_kv_depth",
    "ablation_leeway",
]

_VLLM_RATE = 1.6  # OPT-30B / ShareGPT pressure point.


def ablation_enc_threads(
    scale="quick", threads: Sequence[int] = (1, 2, 4, 8)
) -> ExperimentResult:
    """FlexGen OPT-66B throughput vs PipeLLM encryption thread count."""
    scale = _scale(scale)
    shape = SyntheticShape(32, scale.flexgen_output or 128)
    result = ExperimentResult(
        "abl-threads",
        "PipeLLM encryption threads for model offloading (FlexGen OPT-66B)",
        columns=["enc_threads", "throughput_tok_s", "overhead_pct", "success_rate"],
    )
    base, _ = run_flexgen(WITHOUT_CC, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests)
    for count in threads:
        system = pipellm(count, OFFLOAD_DEC_THREADS, name=f"PipeLLM-{count}t")
        res, runtime = run_flexgen(system, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests)
        result.add_row(
            enc_threads=count,
            throughput_tok_s=res.throughput,
            overhead_pct=100.0 * (1.0 - res.throughput / base.throughput),
            success_rate=runtime.stats()["success_rate"],
        )
    result.add_note(
        "one AES thread (~6.4 GB/s) cannot feed the ~47 GB/s staged-DMA "
        "path; the knee sits where aggregate AES bandwidth crosses it"
    )
    return result


def ablation_async_decrypt(scale="quick") -> ExperimentResult:
    """vLLM OPT-30B with §5.4 asynchronous decryption on vs off."""
    scale = _scale(scale)
    result = ExperimentResult(
        "abl-asyncdec",
        "Asynchronous decryption (vLLM OPT-30B, ShareGPT, parallel 6)",
        columns=["system", "norm_latency_s_tok", "sync_decrypts", "async_decrypts"],
    )
    base, _ = run_vllm(WITHOUT_CC, OPT_30B, SHAREGPT, _VLLM_RATE, 6, scale.vllm_duration)
    result.add_row(system="w/o CC", norm_latency_s_tok=base.mean_normalized_latency,
                   sync_decrypts=0, async_decrypts=0)
    for label, flag in (("PipeLLM", True), ("PipeLLM-syncdec", False)):
        system = pipellm(1, 1, config=PipeLLMConfig(async_decrypt=flag), name=label)
        res, runtime = run_vllm(system, OPT_30B, SHAREGPT, _VLLM_RATE, 6, scale.vllm_duration)
        stats = runtime.stats()
        result.add_row(
            system=label,
            norm_latency_s_tok=res.mean_normalized_latency,
            sync_decrypts=stats["sync_decrypts"],
            async_decrypts=stats["async_decrypts"],
        )
    return result


def ablation_leeway(scale="quick") -> ExperimentResult:
    """Adaptive IV-leeway controller vs fixed leeway settings."""
    scale = _scale(scale)
    result = ExperimentResult(
        "abl-leeway",
        "IV leeway policy (vLLM OPT-30B, Alpaca, parallel 6)",
        columns=["policy", "norm_latency_s_tok", "nops", "stale_restages", "success_rate"],
    )
    configs = [
        ("adaptive", PipeLLMConfig()),
        ("fixed-0", PipeLLMConfig(adaptive_leeway=False, leeway=0)),
        ("fixed-16", PipeLLMConfig(adaptive_leeway=False, leeway=16)),
    ]
    for label, config in configs:
        system = pipellm(1, 1, config=config, name=f"PipeLLM-{label}")
        res, runtime = run_vllm(
            system, OPT_30B, ALPACA, 10.0, 6, scale.vllm_duration,
            reserve_bytes=ALPACA_30B_RESERVE,
        )
        stats = runtime.stats()
        result.add_row(
            policy=label,
            norm_latency_s_tok=res.mean_normalized_latency,
            nops=stats["nops_sent"],
            stale_restages=stats["staged_total"] - stats["hits"] - stats["future_hits"],
            success_rate=stats["success_rate"],
        )
    result.add_note(
        "a pad NOP costs ~15 µs; re-encrypting a stale GB-scale chunk "
        "costs hundreds of ms of the single AES thread — the adaptive "
        "controller trades the former for the latter"
    )
    return result


def ablation_kv_depth(
    scale="quick", depths: Sequence[int] = (1, 3, 8)
) -> ExperimentResult:
    """KV staging-window depth (LIFO inversion vs readiness)."""
    scale = _scale(scale)
    result = ExperimentResult(
        "abl-kvdepth",
        "KV staging window depth (vLLM OPT-30B, ShareGPT, parallel 6)",
        columns=["kv_depth", "norm_latency_s_tok", "evicted", "iv_skipped", "success_rate"],
    )
    for depth in depths:
        system = pipellm(1, 1, config=PipeLLMConfig(kv_depth=depth),
                         name=f"PipeLLM-d{depth}")
        res, runtime = run_vllm(system, OPT_30B, SHAREGPT, _VLLM_RATE, 6, scale.vllm_duration)
        stats = runtime.stats()
        result.add_row(
            kv_depth=depth,
            norm_latency_s_tok=res.mean_normalized_latency,
            evicted=stats["evicted"],
            iv_skipped=stats["invalidated_by_iv_skip"],
            success_rate=stats["success_rate"],
        )
    return result
