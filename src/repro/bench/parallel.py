"""The multi-GPU parallelism campaign (``repro parallel``).

Reproduces the serialized-bridge shape on inter-GPU traffic: with GPU
confidential computing enabled, peer-to-peer DMA is forbidden and
every collective hop bounces through host memory behind CPU AES-GCM
(:mod:`repro.hw.interconnect`). Three systems per GPU count:

* **w/o CC** — direct P2P links, near-linear tensor-parallel scaling;
* **CC** — the bounce bridge with inline single-thread crypto on the
  critical path: multi-GPU decode *collapses below one GPU*;
* **PipeLLM** — the link speculator
  (:class:`repro.parallel.LinkSpeculator`) predicts each source GPU's
  deterministic collective schedule and pre-arranges the bounce-buffer
  crypto, leaving only the CC DMA residual on the critical path.

Tensor parallelism (two ring all-reduces per layer) is the link-bound
regime where the collapse and the recovery are both dramatic; pipeline
parallelism (one activation per microbatch per stage boundary) is the
compute-bound contrast where CC costs little to begin with.

Every run doubles as an acceptance check: a
:class:`~repro.cluster.tenant.ClusterIvAudit` rides every link
endpoint (any per-link (key, IV) reuse raises), the ring all-reduce's
arithmetic is asserted inside the engine, and the recovery/ordering
invariants below are enforced on the finished table.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..cc.machine import CcMode, build_machine
from ..cluster.tenant import ClusterIvAudit
from ..models import OPT_30B
from ..parallel import (
    LinkSpeculator,
    ParallelResult,
    PipelineParallelEngine,
    TensorParallelEngine,
)
from .experiments import _scale
from .tables import ExperimentResult

__all__ = ["FULL_GPU_COUNTS", "QUICK_GPU_COUNTS", "parallel_scaling"]

QUICK_GPU_COUNTS: Tuple[int, ...] = (1, 2, 4)
FULL_GPU_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Decode batch / output steps for the TP sweep. Batch 64 puts the
#: per-all-reduce activation tensor at ~917 KB (64 x 7168 x 2B), big
#: enough that inline CC crypto dominates, small enough that the ring's
#: fixed per-hop costs still matter at n=8.
TP_BATCH = 64
TP_OUTPUT_TOKENS = 3

#: PP microbatching: 256-token microbatches keep each stage's prefill
#: GEMMs long relative to the activation handoff — the compute-bound
#: contrast to TP.
PP_MICROBATCHES = 4
PP_MICROBATCH_TOKENS = 256

#: Crypto threads for the PipeLLM staged path (the §7.2 offload
#: configuration: enough CPU threads that ciphertext generation
#: outruns the bounce DMA).
LINK_ENC_THREADS = 8
LINK_DEC_THREADS = 8

_SYSTEMS = ("w/o CC", "CC", "PipeLLM")


def _build(system: str, n_gpus: int):
    """One (system, n_gpus) machine with audit + optional speculator."""
    if system == "w/o CC":
        machine = build_machine(CcMode.DISABLED, n_gpus=n_gpus)
    elif system == "CC":
        machine = build_machine(CcMode.ENABLED, n_gpus=n_gpus)
    else:
        machine = build_machine(
            CcMode.ENABLED, n_gpus=n_gpus,
            enc_threads=LINK_ENC_THREADS, dec_threads=LINK_DEC_THREADS,
        )
    audit = None
    if machine.interconnect is not None:
        audit = ClusterIvAudit()
        machine.interconnect.attach_audit(audit)
        if system == "PipeLLM":
            machine.interconnect.attach_speculator(
                LinkSpeculator(lambda: machine.sim.now, faults=machine.faults)
            )
    return machine, audit


def _run_tp(system: str, n_gpus: int) -> Tuple[ParallelResult, Optional[ClusterIvAudit]]:
    machine, audit = _build(system, n_gpus)
    engine = TensorParallelEngine(machine, OPT_30B, batch=TP_BATCH, label=system)
    return engine.run(output_tokens=TP_OUTPUT_TOKENS), audit


def _run_pp(system: str, n_gpus: int, schedule: str) -> Tuple[ParallelResult, Optional[ClusterIvAudit]]:
    machine, audit = _build(system, n_gpus)
    engine = PipelineParallelEngine(
        machine, OPT_30B, microbatches=PP_MICROBATCHES,
        microbatch_tokens=PP_MICROBATCH_TOKENS, schedule=schedule, label=system,
    )
    return engine.run_inference(), audit


def parallel_scaling(
    scale="quick", gpu_counts: Optional[Sequence[int]] = None
) -> ExperimentResult:
    """TP/PP scaling table: GPU count x system over the encrypted fabric."""
    scale = _scale(scale)
    if gpu_counts is None:
        gpu_counts = QUICK_GPU_COUNTS if scale.name == "quick" else FULL_GPU_COUNTS

    result = ExperimentResult(
        "parallel",
        "Multi-GPU parallelism over the encrypted interconnect (OPT-30B)",
        columns=[
            "mode", "n_gpus", "system", "throughput_tok_s", "scaling",
            "recovery", "hops", "bounce_mb", "p2p_mb", "hit_rate",
            "iv_lanes", "checksum",
        ],
    )
    result.add_note(
        f"TP: Megatron decode, batch {TP_BATCH}, {TP_OUTPUT_TOKENS} steps, "
        "2 ring all-reduces/layer; PP: GPipe inference, "
        f"{PP_MICROBATCHES} x {PP_MICROBATCH_TOKENS}-token microbatches"
    )
    result.add_note(
        "scaling = throughput / same-system 1-GPU throughput; recovery = "
        "(PipeLLM - CC) / (w/o CC - CC) share of the CC gap recovered"
    )

    def add_rows(mode: str, runner) -> None:
        base: dict = {}
        for n in gpu_counts:
            by_system = {}
            for system in _SYSTEMS:
                res, audit = runner(system, n)
                by_system[system] = res
                if n == 1:
                    base[system] = res.throughput
                if n > 1:
                    # -- per-run invariants ---------------------------
                    if audit is None or audit.observed <= 0:
                        if system != "w/o CC":
                            raise AssertionError(
                                f"{mode} n={n} {system}: IV audit saw no link traffic"
                            )
                    # The hit-rate floor only means something with real
                    # traffic; PP ships a handful of hops per link, so
                    # cold-start misses dominate its ratio.
                    if (
                        mode == "tp"
                        and system == "PipeLLM"
                        and res.spec_hit_rate <= 0.5
                    ):
                        raise AssertionError(
                            f"{mode} n={n}: link speculator hit rate "
                            f"{res.spec_hit_rate:.2f} <= 0.5"
                        )
                gap = (
                    by_system["w/o CC"].throughput - by_system["CC"].throughput
                    if n > 1 and "CC" in by_system and "w/o CC" in by_system
                    else 0.0
                )
                recovery = (
                    (res.throughput - by_system["CC"].throughput) / gap
                    if system == "PipeLLM" and gap > 0
                    else None
                )
                result.add_row(
                    mode=mode,
                    n_gpus=n,
                    system=system,
                    throughput_tok_s=res.throughput,
                    scaling=res.throughput / base[system] if base.get(system) else None,
                    recovery=recovery,
                    hops=res.hops,
                    bounce_mb=res.bounce_bytes / 1e6,
                    p2p_mb=res.p2p_bytes / 1e6,
                    hit_rate=res.spec_hit_rate if system == "PipeLLM" else None,
                    iv_lanes=audit.keys_seen() if audit else 0,
                    checksum=res.checksum[:12],
                )
            if n > 1:
                nocc = by_system["w/o CC"].throughput
                cc = by_system["CC"].throughput
                pipe = by_system["PipeLLM"].throughput
                if mode == "tp" and cc >= nocc:
                    raise AssertionError(
                        f"tp n={n}: CC ({cc:.0f}) did not collapse below "
                        f"w/o CC ({nocc:.0f})"
                    )
                if mode == "pp" and cc > nocc * 1.001:
                    raise AssertionError(
                        f"pp n={n}: CC ({cc:.0f}) above w/o CC ({nocc:.0f})"
                    )
                if pipe < cc:
                    raise AssertionError(
                        f"{mode} n={n}: PipeLLM ({pipe:.0f}) below CC ({cc:.0f})"
                    )

    add_rows("tp", _run_tp)
    add_rows("pp", lambda system, n: _run_pp(system, n, "gpipe"))

    # -- headline acceptance: >=50% of the CC gap recovered at 2 GPUs ---
    if 2 in gpu_counts:
        row = result.find(mode="tp", n_gpus=2, system="PipeLLM")
        if row["recovery"] is None or row["recovery"] < 0.5:
            raise AssertionError(
                f"tp n=2: speculation recovered {row['recovery']} of the CC "
                "gap; acceptance floor is 0.5"
            )
        result.add_note(
            f"tp n=2 recovery {row['recovery']:.2f} "
            f"(hit rate {row['hit_rate']:.3f}) — the headline claim"
        )
    return result
