"""§8.3 made quantitative: TEE-I/O hardware vs PipeLLM software.

The paper's discussion: the next CVM generation adds dedicated
line-rate I/O-encryption hardware (Intel TDX Connect). But a standard
H100 server runs *eight* GPUs off two CPU sockets, "raising questions
about whether the TEE I/O hardware can sustain GPUs' throughputs",
while PipeLLM scales with ordinary CPU threads.

The model: TEE-I/O behaves like the CC baseline except encryption runs
at the hardware engine's rate — which is *shared* by every co-located
tenant GPU. PipeLLM keeps per-tenant CPU threads. The experiment runs
the FlexGen offloading workload per tenant count and shows where the
shared hardware becomes the bottleneck.
"""

from __future__ import annotations

from typing import Sequence

from ..hw import default_params
from ..models import OPT_66B
from ..workloads import SyntheticShape
from .experiments import FLEXGEN_BATCH, OFFLOAD_DEC_THREADS, OFFLOAD_ENC_THREADS, _scale, run_flexgen
from .systems import CC, SystemSpec, WITHOUT_CC, pipellm
from .tables import ExperimentResult

__all__ = ["TEEIO_LINE_RATE", "extension_teeio_scaling", "teeio_params"]

#: Aggregate throughput of the SoC's TEE-I/O encryption engine (B/s).
#: Sized to one full-duplex PCIe 5.0 x16 link — enough for ONE GPU at
#: line rate, the optimistic reading of "line-rate encryption".
TEEIO_LINE_RATE = 64e9


def teeio_params(tenants: int, line_rate: float = TEEIO_LINE_RATE):
    """Hardware parameters of a TEE-I/O machine shared by N tenants.

    Inline hardware encryption at ``line_rate / tenants`` per tenant,
    with a negligible control-plane cost (it is an SoC block, not a
    software round trip).
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    per_tenant = line_rate / tenants
    return default_params().with_overrides(
        enc_bandwidth_per_thread=per_tenant,
        dec_bandwidth_per_thread=per_tenant,
        cc_control_latency=3e-6,
    )


def extension_teeio_scaling(
    scale="quick", tenant_counts: Sequence[int] = (1, 2, 4, 8)
) -> ExperimentResult:
    """FlexGen OPT-66B throughput: TEE-I/O (shared) vs PipeLLM (per-tenant)."""
    scale = _scale(scale)
    shape = SyntheticShape(32, scale.flexgen_output or 128)
    result = ExperimentResult(
        "ext-teeio",
        "§8.3: shared TEE-I/O hardware vs per-tenant PipeLLM (FlexGen OPT-66B)",
        columns=["system", "tenants", "throughput_tok_s", "overhead_pct"],
    )
    base, _ = run_flexgen(WITHOUT_CC, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests)
    result.add_row(system="w/o CC", tenants=0, throughput_tok_s=base.throughput, overhead_pct=0.0)

    pipe = pipellm(OFFLOAD_ENC_THREADS, OFFLOAD_DEC_THREADS)
    pipe_res, _ = run_flexgen(pipe, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests)
    result.add_row(
        system="PipeLLM",
        tenants=0,
        throughput_tok_s=pipe_res.throughput,
        overhead_pct=100.0 * (1.0 - pipe_res.throughput / base.throughput),
    )

    for tenants in tenant_counts:
        params = teeio_params(tenants)
        system = SystemSpec(f"TEE-I/O/{tenants}", CC.cc_mode)
        machine, runtime = system.build(params=params)
        from ..serving import FlexGenConfig, FlexGenEngine

        config = FlexGenConfig(OPT_66B, shape, batch_size=FLEXGEN_BATCH,
                               n_requests=scale.flexgen_requests)
        res = FlexGenEngine(machine, runtime, config).run()
        result.add_row(
            system="TEE-I/O",
            tenants=tenants,
            throughput_tok_s=res.throughput,
            overhead_pct=100.0 * (1.0 - res.throughput / base.throughput),
        )
    result.add_note(
        "TEE-I/O per-tenant encryption rate = line rate / tenants; the "
        "hardware matches PipeLLM alone but degrades with co-location, "
        "which is the paper's flexibility argument for a software fix"
    )
    return result
