"""Extension experiments on the additional substrates.

* ``extension_layerwise_fifo`` — Figure 5's layer-wise (FIFO) KV
  swapping pattern end to end, with rewritten-every-step KV.
* ``extension_zero_offload`` — DeepSpeed ZeRO-Offload *full*
  fine-tuning: read-write weight streaming plus per-layer gradient
  swap-outs, the adversarial case for weight speculation.
"""

from __future__ import annotations

from ..models import OPT_13B, OPT_30B
from ..serving import (
    LayerwiseConfig,
    LayerwiseKvEngine,
    ZeroOffloadConfig,
    ZeroOffloadEngine,
)
from ..sim import SeededRng, default_seed
from ..workloads import SyntheticShape, ultrachat_batches
from .experiments import _scale
from .systems import CC, WITHOUT_CC, pipellm
from .tables import ExperimentResult

__all__ = ["extension_layerwise_fifo", "extension_zero_offload"]


def extension_layerwise_fifo(scale="quick") -> ExperimentResult:
    """Layer-wise KV swapping (OPT-30B): w/o CC vs CC vs PipeLLM."""
    scale = _scale(scale)
    steps = 4 if scale.name == "quick" else 8
    shape = SyntheticShape(192, steps)
    result = ExperimentResult(
        "ext-layerwise",
        "Layer-wise (FIFO) KV swapping, OPT-30B batch 256",
        columns=["system", "throughput_tok_s", "overhead_pct",
                 "streamed_layers", "success_rate"],
    )
    runs = {}
    stats = {}
    for system in (WITHOUT_CC, CC, pipellm(8, 8)):
        machine, runtime = system.build()
        config = LayerwiseConfig(OPT_30B, shape, batch_size=256)
        res = LayerwiseKvEngine(machine, runtime, config).run()
        if machine.gpu.auth_failures:
            raise AssertionError("authentication failure in layer-wise run")
        runs[system.name] = res
        if system.uses_pipellm:
            stats[system.name] = runtime.stats()["success_rate"]
    base = runs["w/o CC"].throughput
    for name, res in runs.items():
        result.add_row(
            system=name,
            throughput_tok_s=res.throughput,
            overhead_pct=100.0 * (1.0 - res.throughput / base),
            streamed_layers=res.streamed_layers,
            success_rate=stats.get(name, ""),
        )
    result.add_note(
        "per-layer KV is rewritten every decode step, so every hit's "
        "ciphertext was produced after the previous step's write-back"
    )
    return result


def extension_zero_offload(scale="quick") -> ExperimentResult:
    """ZeRO-Offload full fine-tuning (OPT-13B, 10 layers streamed)."""
    scale = _scale(scale)
    steps = max(3, scale.peft_steps)
    result = ExperimentResult(
        "ext-zero",
        "ZeRO-Offload full fine-tuning (read-write weight stream), OPT-13B",
        columns=["system", "throughput_tok_s", "overhead_pct",
                 "fault_invalidations", "success_rate"],
    )
    runs = {}
    stats = {}
    for system in (WITHOUT_CC, CC, pipellm(8, 8)):
        machine, runtime = system.build()
        batches = ultrachat_batches(steps, 16, SeededRng(default_seed(7)))
        config = ZeroOffloadConfig(OPT_13B, batches, resident_layers=30)
        res = ZeroOffloadEngine(machine, runtime, config).run()
        if machine.gpu.auth_failures:
            raise AssertionError("authentication failure in ZeRO run")
        runs[system.name] = res
        if system.uses_pipellm:
            rt_stats = runtime.stats()
            stats[system.name] = (
                rt_stats["success_rate"], rt_stats["invalidated_by_fault"]
            )
    base = runs["w/o CC"].throughput
    for name, res in runs.items():
        success, faults = stats.get(name, ("", ""))
        result.add_row(
            system=name,
            throughput_tok_s=res.throughput,
            overhead_pct=100.0 * (1.0 - res.throughput / base),
            fault_invalidations=faults,
            success_rate=success,
        )
    result.add_note(
        "the CPU optimizer rewrites every streamed weight buffer each "
        "step; the fault_invalidations column counts the staged "
        "ciphertext the validator killed for it"
    )
    return result
