"""Disaggregated-serving experiments: the encrypted migration frontier.

Not a paper figure — PipeLLM evaluates one machine — but the question
its §5.1 machinery answers at fleet scale: when prefill and decode
live on *different* attested machines, every KV cache crosses the
CC-serialized bridge between them, and speculative pipelined
encryption is what keeps that migration off the request's critical
path. Four sections, each with its acceptance invariants asserted
inline:

* **frontier** — monolithic CC-serialized vs disaggregated PipeLLM
  across offered load: at high load the split fleet must win TTFT
  (dedicated prefill, no inline-prefill head-of-line blocking) while
  matching goodput;
* **migration** — the per-chunk wire cost under native / cc / pipellm
  at the top rate; speculation must recover ≥ 50 % of the CC
  migration penalty at its achieved hit rate, with zero IV reuse
  across every link (the fleet-wide audit raises on any violation);
* **packs** — the same migration plane under the named hardware
  calibrations (``--hw-pack``): the CC-serialized bridge stays
  expensive across GPU generations while the staged path tracks each
  pack's DMA bandwidth;
* **stress / failover** — a hot-tenant, long-prompt, short-output
  trace that saturates one migration link: the causal-trace verdict
  must flip from *migration-bound* (cc) to compute-bound (pipellm);
  a decode crash mid-migration must complete every admitted request
  via resume (retained prefill copies, no recompute) with ledger
  closure; a mispredict storm must trip the degradation controller
  and still drain clean, consuming bit-identical IV counts.
"""

from __future__ import annotations

from ..cluster.routing import AffinityPolicy
from ..core import DisaggConfig
from ..disagg import DisaggCluster, run_disagg
from ..faults import FaultPlan
from ..hw import pack_names
from ..tracing import TraceCollector, collecting, fleet_attribution
from ..workloads import TraceSpec
from .tables import ExperimentResult

__all__ = ["STRESS_TRACE", "disagg_frontier"]

#: Hot-tenant migration-stress shape: long prompts (big KV images),
#: short outputs (little decode to hide behind), one tenant (affinity
#: concentrates every migration onto one link, so the CC-serialized
#: wire saturates while PipeLLM's staged wire does not).
STRESS_TRACE = TraceSpec(
    name="disagg-stress",
    mean_prompt=192.0, sigma_prompt=0.2, max_prompt=256,
    mean_output=4.0, sigma_output=0.3, max_output=8,
)


def _row(run, section: str, topology: str, rate: float, verdict: str = "") -> dict:
    return dict(
        section=section,
        topology=topology,
        system=run.system,
        rate_rps=rate,
        offered=run.offered,
        completed=run.completed,
        unfinished=run.unfinished,
        goodput_rps=run.goodput,
        p50_ttft_ms=run.p50_ttft * 1e3,
        p99_ttft_ms=run.p99_ttft * 1e3,
        mean_lat_ms=run.mean_latency * 1e3,
        chunks=run.migration_chunks,
        hit_rate=run.migration_hit_rate,
        us_per_chunk=run.migration_s_per_chunk * 1e6,
        resends=run.migration_resends,
        failovers=run.failovers,
        resumes=run.resumes,
        replays=run.replays,
        iv_obs=run.iv_observed,
        verdict=verdict,
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def _check_drained(run, where: str) -> None:
    _require(run.unfinished == 0, f"{where}: {run.unfinished} requests unfinished")
    _require(
        run.completed + run.shed == run.offered,
        f"{where}: {run.completed}+{run.shed} resolved of {run.offered} offered",
    )


def disagg_frontier(scale: str = "quick") -> ExperimentResult:
    """Disaggregated vs monolithic serving over encrypted KV migration."""
    quick = scale == "quick"
    duration = 8.0 if quick else 20.0
    rates = (10.0, 18.0) if quick else (8.0, 16.0, 24.0, 32.0)
    top = rates[-1]
    result = ExperimentResult(
        experiment_id="disagg",
        title="disaggregated prefill/decode with encrypted KV migration (extension)",
        columns=[
            "section", "topology", "system", "rate_rps", "offered",
            "completed", "unfinished", "goodput_rps", "p50_ttft_ms",
            "p99_ttft_ms", "mean_lat_ms", "chunks", "hit_rate",
            "us_per_chunk", "resends", "failovers", "resumes", "replays",
            "iv_obs", "verdict",
        ],
    )

    # -- frontier: mono CC vs disagg PipeLLM across offered load --------
    def mono_config() -> DisaggConfig:
        return DisaggConfig(prefill_workers=0, decode_workers=4, system="cc")

    def disagg_config(system: str) -> DisaggConfig:
        return DisaggConfig(prefill_workers=1, decode_workers=3, system=system)

    runs = {}
    for rate in rates:
        for topology, config in (
            ("mono-4", mono_config()),
            ("1p+3d", disagg_config("pipellm")),
        ):
            run = run_disagg(config, rate=rate, duration=duration)
            _check_drained(run, f"frontier {topology} rate={rate}")
            runs[(topology, rate)] = run
            result.add_row(**_row(run, "frontier", topology, rate))

    mono = runs[("mono-4", top)]
    pipellm = runs[("1p+3d", top)]
    _require(
        pipellm.p50_ttft < mono.p50_ttft,
        f"disagg PipeLLM p50 TTFT {pipellm.p50_ttft:.4f}s must beat "
        f"monolithic CC {mono.p50_ttft:.4f}s at rate {top}",
    )
    _require(
        pipellm.goodput >= 0.98 * mono.goodput,
        f"disagg PipeLLM goodput {pipellm.goodput:.2f} rps must match "
        f"monolithic CC {mono.goodput:.2f} rps at rate {top}",
    )

    # -- migration: per-chunk wire cost and the recovery fraction -------
    for system in ("native", "cc"):
        run = run_disagg(disagg_config(system), rate=top, duration=duration)
        _check_drained(run, f"migration {system}")
        runs[(system, top)] = run
        result.add_row(**_row(run, "migration", "1p+3d", top))
    result.add_row(**_row(pipellm, "migration", "1p+3d", top))

    native, cc = runs[("native", top)], runs[("cc", top)]
    penalty = cc.migration_s_per_chunk - native.migration_s_per_chunk
    recovered = cc.migration_s_per_chunk - pipellm.migration_s_per_chunk
    recovery = recovered / penalty if penalty > 0 else 0.0
    _require(penalty > 0, "CC migration must cost more than native per chunk")
    _require(
        pipellm.migration_hit_rate > 0.5,
        f"speculation hit rate {pipellm.migration_hit_rate:.3f} too low",
    )
    _require(
        recovery >= 0.5,
        f"speculation recovers {recovery:.2f} of the CC migration penalty "
        f"(need >= 0.5 at hit rate {pipellm.migration_hit_rate:.3f})",
    )
    _require(
        cc.iv_observed > 0 and pipellm.iv_observed > 0,
        "encrypted migrations must feed the fleet IV audit",
    )
    _require(native.iv_observed == 0, "native migrations must not consume IVs")
    result.add_note(
        f"speculation recovers {recovery:.1%} of the CC migration penalty "
        f"({cc.migration_s_per_chunk * 1e6:.0f} -> "
        f"{pipellm.migration_s_per_chunk * 1e6:.0f} us/chunk vs "
        f"{native.migration_s_per_chunk * 1e6:.0f} us native) at hit rate "
        f"{pipellm.migration_hit_rate:.3f}; every encrypted run completed "
        "under a live fleet-wide IV audit (zero reuse by construction)"
    )

    # -- packs: the migration plane under named hardware calibrations ---
    pack_chunk = {}
    for pack in pack_names():
        for system in ("cc", "pipellm"):
            config = DisaggConfig(
                prefill_workers=1, decode_workers=2, system=system,
                hw_pack=pack,
            )
            run = run_disagg(config, rate=1.0, duration=4.0, tenants=2)
            _check_drained(run, f"pack {pack} {system}")
            pack_chunk[(pack, system)] = run.migration_s_per_chunk
            result.add_row(**_row(run, f"pack:{pack}", "1p+2d", 1.0))
            _require(
                system == "cc" or run.migration_s_per_chunk
                < pack_chunk[(pack, "cc")],
                f"pack {pack}: speculation must beat the serialized bridge",
            )
    result.add_note(
        "packs (cc -> pipellm us/chunk): "
        + ", ".join(
            f"{pack} {pack_chunk[(pack, 'cc')] * 1e6:.0f} -> "
            f"{pack_chunk[(pack, 'pipellm')] * 1e6:.0f}"
            for pack in pack_names()
        )
        + "; the serialized bridge stays expensive across generations "
        "while the staged path tracks each pack's DMA bandwidth"
    )

    # -- stress: one hot link; the verdict must flip under PipeLLM ------
    stress_duration = 6.0 if quick else 8.0
    stress_runs = {}
    for system in ("cc", "pipellm"):
        cluster = DisaggCluster(disagg_config(system))
        collector = TraceCollector()
        with collecting(collector):
            run = cluster.run(cluster.workload(
                18.0, stress_duration, tenants=1, trace=STRESS_TRACE
            ))
        _check_drained(run, f"stress {system}")
        attribution = fleet_attribution(collector)
        _require(
            not attribution.closure_problems,
            f"stress {system}: causal ledger not closed: "
            f"{attribution.closure_problems[:3]}",
        )
        stress_runs[system] = (cluster, run, attribution)
        result.add_row(**_row(
            run, "stress", "1p+3d", 18.0, verdict=attribution.verdict
        ))
    _require(
        stress_runs["cc"][2].verdict == "migration-bound",
        f"CC-serialized hot-link run must be migration-bound, got "
        f"{stress_runs['cc'][2].verdict!r}",
    )
    _require(
        stress_runs["pipellm"][2].verdict != "migration-bound",
        "PipeLLM must lift the migration-bound verdict",
    )
    result.add_note(
        f"hot-link stress: critical-path migration share "
        f"{stress_runs['cc'][2].share('migration'):.1%} (cc) -> "
        f"{stress_runs['pipellm'][2].share('migration'):.1%} (pipellm); "
        f"verdict {stress_runs['cc'][2].verdict} -> "
        f"{stress_runs['pipellm'][2].verdict}"
    )

    # -- failover: crash mid-migration, then a mispredict storm ---------
    # Crash the decode worker the hot tenant's rendezvous hash targets,
    # while its migrations are in flight on the saturated link.
    target = max(
        range(3), key=lambda i: AffinityPolicy._weight("tenant-0", i)
    )
    crash_config = disagg_config("cc")
    crash_config.fail_at = 2.0
    crash_config.fail_kind = "decode"
    crash_config.fail_index = target
    crash_config.recover_after = 1.5
    cluster = DisaggCluster(crash_config)
    collector = TraceCollector()
    with collecting(collector):
        crash_run = cluster.run(cluster.workload(
            18.0, stress_duration, tenants=1, trace=STRESS_TRACE
        ))
    _check_drained(crash_run, "failover crash")
    _require(crash_run.shed == 0, "crash run must shed nothing")
    _require(crash_run.crashes >= 1, "crash run must actually crash")
    _require(
        crash_run.failovers >= 1 and crash_run.resumes >= 1,
        f"crash mid-migration must exercise resume "
        f"(failovers={crash_run.failovers}, resumes={crash_run.resumes})",
    )
    attribution = fleet_attribution(collector)
    _require(
        not attribution.closure_problems,
        f"crash run: causal ledger not closed: "
        f"{attribution.closure_problems[:3]}",
    )
    result.add_row(**_row(
        crash_run, "failover", "1p+3d", 18.0, verdict=attribution.verdict
    ))
    result.add_note(
        f"decode crash at t=2.0 (worker d{target}): {crash_run.failovers} "
        f"failovers, {crash_run.resumes} resumed from retained prefill "
        f"copies, {crash_run.replays} replayed, every admitted request "
        "completed with ledger closure"
    )

    # Mispredict storm: degradation must park speculation, the run must
    # drain clean, and IV consumption must be bit-identical to the
    # clean pipellm stress run (drops retransmit ciphertext, never IVs).
    storm_config = disagg_config("pipellm")
    storm_config.fault_plan = FaultPlan.migration_storm(
        0.6, stop=stress_duration / 2
    )
    storm_cluster = DisaggCluster(storm_config)
    storm_run = storm_cluster.run(storm_cluster.workload(
        18.0, stress_duration, tenants=1, trace=STRESS_TRACE
    ))
    _check_drained(storm_run, "migration storm")
    clean_run = stress_runs["pipellm"][1]
    speculator = storm_cluster.fabric.speculator
    _require(
        speculator.parked > 0,
        "storm must trip the degradation controller (no parked lookups)",
    )
    _require(
        storm_run.migration_hit_rate < clean_run.migration_hit_rate,
        "storm must depress the speculation hit rate",
    )
    _require(storm_run.migration_resends > 0, "storm must drop chunks")
    _require(
        storm_run.iv_observed == clean_run.iv_observed,
        f"storm IV count {storm_run.iv_observed} != clean "
        f"{clean_run.iv_observed}: a drop or miss consumed a fresh IV",
    )
    result.add_row(**_row(storm_run, "storm", "1p+3d", 18.0))
    result.add_note(
        f"migration storm (rate 0.6, first half): hit rate "
        f"{clean_run.migration_hit_rate:.3f} -> "
        f"{storm_run.migration_hit_rate:.3f}, {speculator.parked} lookups "
        f"parked by the degradation controller, "
        f"{storm_run.migration_resends} chunks retransmitted, IV "
        "consumption bit-identical to the clean run"
    )
    return result
