"""The fault-injection degradation campaign (``repro faults``).

One workload — FlexGen model offloading on OPT-66B, the traffic whose
speculation the fault plane attacks hardest — swept across fault rates
and survival policies:

* ``adaptive`` — the default :class:`repro.faults.FaultPolicy`: the
  runtime degrades to non-speculative in-order encryption when the
  observed miss/desync rate crosses the threshold, then probes its way
  back to speculation once the storm passes;
* ``pinned-speculative`` — degradation disabled (the enter threshold
  is unreachable), measuring what staying speculative under the same
  storm costs.

The fault window is self-calibrating: a clean dry run measures the
baseline elapsed time T0, and every storm is windowed to
(0.15·T0, 0.55·T0) so the faults provably stop well before the run
ends — which is what makes the return to speculative mode observable
in the ``final_mode`` column.

Every run doubles as an acceptance check: a
:class:`~repro.cluster.tenant.ClusterIvAudit` is attached to both
channel endpoints (any (key, IV) reuse raises), every request must
complete, and at storm rates ≥ 0.3 the adaptive policy must have both
degraded and restored.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..cluster.tenant import ClusterIvAudit
from ..core import PipeLLMConfig
from ..faults import FaultInjector, FaultPlan, FaultPolicy, PipelineMode
from ..models import OPT_66B
from ..serving import FlexGenConfig, FlexGenEngine
from ..sim import default_seed
from ..tracing import AlertEngine, default_event_rules
from .experiments import (
    FLEXGEN_BATCH,
    OFFLOAD_DEC_THREADS,
    OFFLOAD_ENC_THREADS,
    _flexgen_shapes,
    _scale,
)
from .systems import pipellm
from .tables import ExperimentResult

__all__ = ["FULL_FAULT_RATES", "QUICK_FAULT_RATES", "fault_campaign"]

QUICK_FAULT_RATES: Tuple[float, ...] = (0.0, 0.3)
FULL_FAULT_RATES: Tuple[float, ...] = (0.0, 0.1, 0.3, 0.5)

#: The storm rate at which the acceptance criteria demand a full
#: degrade→restore cycle from the adaptive policy.
_ACCEPT_RATE = 0.3

_ADAPTIVE = FaultPolicy()
#: Degradation disabled: a miss EMA can never reach 1.0, so the
#: pipeline stays speculative through the whole storm.
_PINNED = FaultPolicy(enter_miss_rate=1.0)


def _run_once(scale, rate: float, policy: FaultPolicy, window: Tuple[float, float]):
    """One FlexGen run under one storm rate and survival policy."""
    system = pipellm(
        OFFLOAD_ENC_THREADS,
        OFFLOAD_DEC_THREADS,
        config=PipeLLMConfig(fault_policy=policy),
    )
    injector = None
    if rate > 0:
        plan = FaultPlan.storm(rate, start=window[0], stop=window[1])
        injector = FaultInjector(plan, seed=default_seed(7))
    machine, runtime = system.build(faults=injector)
    # Wire-latency percentiles come from per-request lifecycle records,
    # which only flow while the hub is enabled.
    machine.telemetry.enabled = True
    # Anomaly alerting over the same event stream: rules dimensioned to
    # the storm window, so a burst inside it pages exactly once.
    alert_window = window[1] - window[0] if window[1] > window[0] else 1.0
    alerts = AlertEngine(
        hub=machine.telemetry,
        event_rules=default_event_rules(window=alert_window),
    )
    alerts.watch(machine.telemetry)
    audit = ClusterIvAudit()
    machine.cpu_endpoint.attach_audit(audit)
    machine.gpu.endpoint.attach_audit(audit)
    shape = _flexgen_shapes(scale)[0]
    engine = FlexGenEngine(
        machine,
        runtime,
        FlexGenConfig(
            OPT_66B, shape, batch_size=FLEXGEN_BATCH,
            n_requests=scale.flexgen_requests,
        ),
    )
    flexgen = engine.run()
    return machine, runtime, injector, audit, flexgen, alerts


def fault_campaign(
    scale="quick", rates: Optional[Sequence[float]] = None
) -> ExperimentResult:
    """Throughput/p99 degradation table: fault rate × survival policy."""
    scale = _scale(scale)
    if rates is None:
        rates = QUICK_FAULT_RATES if scale.name == "quick" else FULL_FAULT_RATES

    # Dry run at rate 0 calibrates the storm window against the clean
    # elapsed time (faulted runs only take longer, never shorter).
    _, _, _, _, dry, _ = _run_once(scale, 0.0, _ADAPTIVE, (0.0, 0.0))
    t0 = dry.elapsed
    window = (0.15 * t0, 0.55 * t0)

    result = ExperimentResult(
        "faults",
        "Fault-injection degradation campaign (FlexGen OPT-66B)",
        columns=[
            "fault_rate", "policy", "throughput_tok_s", "p99_wire_ms",
            "success_rate", "injected", "auth_recoveries",
            "mode_switches", "degraded_ms", "final_mode", "alerts",
        ],
    )
    result.add_note(
        f"storm window {window[0] * 1e3:.1f}-{window[1] * 1e3:.1f} ms "
        f"(clean run: {t0 * 1e3:.1f} ms); storm rate r injects "
        "mispredictions at r and tag-corruption/IV-desync at r/4 each"
    )
    result.add_note(
        f"fault seed {default_seed(7)}; workload seed via --seed as usual"
    )

    for rate in rates:
        for pname, policy in (
            ("adaptive", _ADAPTIVE), ("pinned-speculative", _PINNED)
        ):
            machine, runtime, injector, audit, flexgen, alerts = _run_once(
                scale, rate, policy, window
            )
            stats = runtime.stats()
            wire = machine.telemetry.metrics.latency("telemetry.h2d_wire_s")
            controller = runtime.fault_controller
            result.add_row(
                fault_rate=rate,
                policy=pname,
                throughput_tok_s=flexgen.throughput,
                p99_wire_ms=wire.p(99) * 1e3,
                success_rate=stats["success_rate"],
                injected=0 if injector is None else injector.injected_total,
                auth_recoveries=int(stats["auth_recoveries"]),
                mode_switches=int(stats["mode_switches"]),
                degraded_ms=stats["degraded_seconds"] * 1e3,
                final_mode=controller.mode.value,
                alerts=len(alerts.alerts),
            )

            # -- acceptance invariants, asserted on every row ---------
            if flexgen.generated_tokens <= 0:
                raise AssertionError(f"rate={rate} {pname}: no tokens generated")
            if audit.observed <= 0:
                raise AssertionError(f"rate={rate} {pname}: IV audit saw nothing")
            if rate > 0 and injector.injected_total <= 0:
                raise AssertionError(f"rate={rate} {pname}: storm injected nothing")
            entered = {mode for _, _, mode in controller.transitions}
            if pname == "adaptive" and rate >= _ACCEPT_RATE:
                if PipelineMode.DEGRADED.value not in entered:
                    raise AssertionError(
                        f"rate={rate}: adaptive policy never degraded"
                    )
                if controller.mode is not PipelineMode.SPECULATIVE:
                    raise AssertionError(
                        f"rate={rate}: speculation not restored after the storm "
                        f"(final mode {controller.mode.value})"
                    )
            if pname == "pinned-speculative" and entered:
                raise AssertionError(
                    f"rate={rate}: pinned policy changed mode: {entered}"
                )
            if rate == 0 and alerts.alerts:
                raise AssertionError(
                    f"{pname}: anomaly alerts fired on a clean run: "
                    f"{[a.rule for a in alerts.alerts]}"
                )
            if rate >= _ACCEPT_RATE and not alerts.alerts:
                raise AssertionError(
                    f"rate={rate} {pname}: storm produced no anomaly alert"
                )

    clean = result.find(fault_rate=rates[0], policy="adaptive")
    worst = result.find(fault_rate=rates[-1], policy="adaptive")
    if clean["throughput_tok_s"] > 0:
        drop = 100.0 * (1.0 - worst["throughput_tok_s"] / clean["throughput_tok_s"])
        result.add_note(
            f"adaptive throughput drop at rate {rates[-1]:g}: {drop:.1f}% "
            "(degraded in-order mode keeps completing requests)"
        )
    return result
