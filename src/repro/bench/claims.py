"""The paper's headline claims as executable checks.

Each :class:`Claim` names a quantitative statement from the paper, the
experiment that reproduces it, and a checker over the experiment's
rows. ``verify_claims()`` runs each referenced experiment once and
reports, per claim, the measured value next to the paper's — the
reproduction's scorecard, runnable as ``python -m repro claims``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .experiments import (
    fig10_success_rate,
    fig2_microbenchmark,
    fig3a_flexgen_overhead,
    fig3c_peft_overhead,
    fig7_model_offloading,
    fig8_kv_swapping,
    fig9_threading,
)
from .tables import ExperimentResult

__all__ = ["Claim", "ClaimOutcome", "CLAIMS", "verify_claims"]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    claim_id: str
    statement: str          # The paper's words (condensed).
    paper_value: str        # What the paper measured.
    experiment: Callable    # Which experiment reproduces it.
    check: Callable[[ExperimentResult], Tuple[bool, str]]


@dataclass(frozen=True)
class ClaimOutcome:
    claim: Claim
    passed: bool
    measured: str


# -- checkers -----------------------------------------------------------------


def _check_fig2_collapse(result: ExperimentResult):
    ncc = result.find(size="32MB", system="w/o CC")["throughput_gbps"]
    cc = result.find(size="32MB", system="CC")["throughput_gbps"]
    ratio = ncc / cc
    return 6 <= ratio <= 14, f"{ncc:.1f} vs {cc:.1f} GB/s ({ratio:.1f}x)"


def _check_fig3a_drop(result: ExperimentResult):
    drops = [row["drop_pct"] for row in result.select(system="CC")]
    return 80 <= max(drops) <= 95, f"max drop {max(drops):.1f} %"


def _check_fig3c_drops(result: ExperimentResult):
    d30 = result.find(model="opt-30b", system="CC")["drop_pct"]
    d13 = result.find(model="opt-13b", system="CC")["drop_pct"]
    ok = abs(d30 - 36.2) < 8 and abs(d13 - 14.0) < 6 and d13 < d30
    return ok, f"{d30:.1f} % / {d13:.1f} %"


def _check_fig7_bound(result: ExperimentResult):
    overheads = [row["overhead_pct"] for row in result.select(system="PipeLLM")]
    return max(overheads) < 19.6, f"max PipeLLM overhead {max(overheads):.1f} %"


def _check_fig8_ordering(result: ExperimentResult):
    violations = 0
    pressured = 0
    for row in result.select(system="CC"):
        if row["overhead_pct"] < 10:
            continue
        pressured += 1
        pipe = result.find(
            model=row["model"], dataset=row["dataset"],
            parallel=row["parallel"], rate=row["rate"], system="PipeLLM",
        )
        if pipe["norm_latency_s_tok"] >= row["norm_latency_s_tok"]:
            violations += 1
    return (
        pressured > 0 and violations == 0,
        f"{pressured} pressured points, {violations} ordering violations",
    )


def _check_fig8_success(result: ExperimentResult):
    rates = [
        row["success_rate"]
        for row in result.select(system="PipeLLM")
        if isinstance(row["success_rate"], float) and row["overhead_pct"] > 10
    ]
    if not rates:
        return False, "no pressured points"
    return min(rates) > 0.85, f"min success rate {min(rates):.1%}"


def _check_fig9_pipelining(result: ExperimentResult):
    cc4t = result.find(system="CC-4t")["norm_latency_s_tok"]
    pipe = result.find(system="PipeLLM")["norm_latency_s_tok"]
    return pipe < cc4t, f"PipeLLM {pipe:.3f} vs CC-4t {cc4t:.3f} s/tok"


def _check_fig10_penalty(result: ExperimentResult):
    penalty = result.find(system="PipeLLM-0")["vs_pipellm_pct"]
    return penalty < 15, f"PipeLLM-0 penalty {penalty:.1f} %"


CLAIMS: List[Claim] = [
    Claim(
        "cc-io-collapse",
        "CC-enabled H2D throughput is ~an order of magnitude below native",
        "55.31 vs 5.83 GB/s at 32 MB (Fig. 2)",
        fig2_microbenchmark,
        _check_fig2_collapse,
    ),
    Claim(
        "flexgen-drop",
        "CC drops FlexGen OPT-66B serving throughput catastrophically",
        "82.8–88.2 % (Fig. 3a)",
        fig3a_flexgen_overhead,
        _check_fig3a_drop,
    ),
    Claim(
        "peft-drop",
        "CC drops fine-tuning throughput, worse for larger models",
        "36.2 % (OPT-30B), 14.0 % (OPT-13B) (Fig. 3c)",
        fig3c_peft_overhead,
        _check_fig3c_drops,
    ),
    Claim(
        "pipellm-offload-bound",
        "PipeLLM keeps model-offloading overhead below 19.6 %",
        "<19.6 % across 13B–175B (abstract, Fig. 7)",
        fig7_model_offloading,
        _check_fig7_bound,
    ),
    Claim(
        "pipellm-kv-ordering",
        "Under KV-swap pressure PipeLLM always beats CC",
        "5.2–14.2 % vs 33.3–52.8 % overhead (Fig. 8)",
        fig8_kv_swapping,
        _check_fig8_ordering,
    ),
    Claim(
        "prediction-success",
        "Prediction success stays near 100 % on vLLM (LIFO policy)",
        "near 100 % (§7.2)",
        fig8_kv_swapping,
        _check_fig8_success,
    ),
    Claim(
        "pipelining-beats-threads",
        "PipeLLM with 2 threads outperforms non-pipelined CC with 4",
        "Fig. 9",
        fig9_threading,
        _check_fig9_pipelining,
    ),
    Claim(
        "misprediction-cheap",
        "Zero sequence-prediction success costs only a few percent",
        "8.3 % drop for PipeLLM-0 (Fig. 10)",
        fig10_success_rate,
        _check_fig10_penalty,
    ),
]


def verify_claims(scale="quick") -> List[ClaimOutcome]:
    """Run every claim's experiment (each once) and evaluate."""
    cache: Dict[Callable, ExperimentResult] = {}
    outcomes: List[ClaimOutcome] = []
    for claim in CLAIMS:
        if claim.experiment not in cache:
            cache[claim.experiment] = claim.experiment(scale)
        passed, measured = claim.check(cache[claim.experiment])
        outcomes.append(ClaimOutcome(claim, passed, measured))
    return outcomes


def render_outcomes(outcomes: List[ClaimOutcome]) -> str:
    lines = []
    for outcome in outcomes:
        mark = "PASS" if outcome.passed else "FAIL"
        lines.append(f"[{mark}] {outcome.claim.claim_id}: {outcome.claim.statement}")
        lines.append(f"       paper:    {outcome.claim.paper_value}")
        lines.append(f"       measured: {outcome.measured}")
    passed = sum(1 for o in outcomes if o.passed)
    lines.append(f"{passed}/{len(outcomes)} claims reproduced")
    return "\n".join(lines)
