"""One function per paper table/figure (§3, §7).

Each function builds fresh machines, runs the relevant serving
engines across the compared systems, and returns an
:class:`ExperimentResult` whose rows mirror what the paper plots.

Two scales are provided:

* ``quick`` (default) — minutes-scale subset used by the pytest
  benchmarks and CI: fewer requests / shorter traces, same knobs
  otherwise. Steady-state throughputs and latency *shapes* are
  preserved because every workload reaches its steady state quickly.
* ``full`` — closer to the paper's run lengths; used to produce
  EXPERIMENTS.md.

Calibration notes (also in EXPERIMENTS.md): GPU-memory reserves for
the vLLM Alpaca runs are chosen so that KV pressure — and therefore
swapping — occurs within each trace's request-rate range, mirroring
the paper's tuning of "maximum batch size to trigger memory swaps".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cc import CcMode
from ..hw import GB, KB, MB, default_params
from ..models import ModelSpec, OPT_13B, OPT_30B, OPT_66B, OPT_175B_4BIT
from ..serving import (
    FlexGenConfig,
    FlexGenEngine,
    PeftConfig,
    PeftEngine,
    VllmConfig,
    VllmEngine,
)
from ..sim import SeededRng, default_seed
from ..workloads import (
    ALPACA,
    SHAREGPT,
    SyntheticShape,
    TraceSpec,
    poisson_trace,
    ultrachat_batches,
)
from .systems import CC, SystemSpec, WITHOUT_CC, cc_threads, pipellm, pipellm_zero
from .tables import ExperimentResult

__all__ = [
    "Scale",
    "QUICK",
    "FULL",
    "attribution_breakdown",
    "fig2_microbenchmark",
    "fig3a_flexgen_overhead",
    "fig3b_vllm_overhead",
    "fig3c_peft_overhead",
    "fig7_model_offloading",
    "fig8_kv_swapping",
    "fig9_threading",
    "fig10_success_rate",
    "run_flexgen",
    "run_peft",
    "run_vllm",
]


@dataclass(frozen=True)
class Scale:
    """Run-size knobs shared by all experiments."""

    name: str
    flexgen_requests: int
    flexgen_output: Optional[int]  # None = the shape's own output length
    vllm_duration: float
    peft_steps: int
    fig2_transfers: int


QUICK = Scale(
    name="quick",
    flexgen_requests=48,
    flexgen_output=8,
    vllm_duration=40.0,
    peft_steps=3,
    fig2_transfers=64,
)

FULL = Scale(
    name="full",
    flexgen_requests=192,
    flexgen_output=None,
    vllm_duration=120.0,
    peft_steps=6,
    fig2_transfers=256,
)


def _scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return {"quick": QUICK, "full": FULL}[scale]


# ---------------------------------------------------------------------------
# Shared runners
# ---------------------------------------------------------------------------

#: PipeLLM thread configuration for model offloading (§7.2: multiple
#: CPU threads so ciphertext generation outruns PCIe).
OFFLOAD_ENC_THREADS = 8
OFFLOAD_DEC_THREADS = 2


def run_flexgen(
    system: SystemSpec,
    spec: ModelSpec,
    shape: SyntheticShape,
    batch_size: int,
    n_requests: int,
):
    """Run one FlexGen configuration; returns (result, runtime)."""
    machine, runtime = system.build()
    config = FlexGenConfig(spec, shape, batch_size=batch_size, n_requests=n_requests)
    engine = FlexGenEngine(machine, runtime, config)
    return engine.run(), runtime


def run_peft(
    system: SystemSpec,
    spec: ModelSpec,
    batch_size: int,
    resident_layers: int,
    steps: int,
    seed: int = 7,
):
    """Run one PEFT fine-tuning configuration; returns (result, runtime)."""
    machine, runtime = system.build()
    batches = ultrachat_batches(steps, batch_size, SeededRng(default_seed(seed)))
    config = PeftConfig(spec, batches, resident_layers=resident_layers)
    engine = PeftEngine(machine, runtime, config)
    return engine.run(), runtime


def run_vllm(
    system: SystemSpec,
    spec: ModelSpec,
    trace: TraceSpec,
    rate: float,
    parallel_n: int,
    duration: float,
    reserve_bytes: int = 4 * GB,
    seed: int = 42,
):
    """Run one vLLM serving configuration; returns (result, runtime)."""
    machine, runtime = system.build()
    requests = poisson_trace(trace, rate, duration, SeededRng(default_seed(seed)), parallel_n=parallel_n)
    config = VllmConfig(spec, requests, reserve_bytes=reserve_bytes)
    engine = VllmEngine(machine, runtime, config)
    return engine.run(), runtime


def _drop(base: float, other: float) -> float:
    """Throughput drop of ``other`` relative to ``base`` in percent."""
    return 100.0 * (1.0 - other / base) if base else 0.0


# ---------------------------------------------------------------------------
# Figure 2 — I/O microbenchmark
# ---------------------------------------------------------------------------

FIG2_SIZES: Sequence[Tuple[str, int]] = (
    ("32B", 32),
    ("128KB", 128 * KB),
    ("1MB", 1 * MB),
    ("32MB", 32 * MB),
)


def fig2_microbenchmark(scale="quick") -> ExperimentResult:
    """Host-to-device memcpy latency and throughput, CC on/off.

    Latency is the single-transfer API-call latency; throughput is
    measured over a back-to-back transfer train in the simulator, as
    in the paper's 10K-transfer average.
    """
    scale = _scale(scale)
    params = default_params()
    result = ExperimentResult(
        "fig2",
        "H2D memcpy microbenchmark",
        columns=["size", "system", "latency_us", "throughput_gbps"],
    )
    for system in (WITHOUT_CC, CC):
        for label, size in FIG2_SIZES:
            machine, runtime = system.build()
            region = machine.host_memory.allocate(size, f"buf.{label}", b"x" * 16)
            latency_box = {}

            def app(sim=machine.sim, runtime=runtime, region=region, box=latency_box):
                # Single isolated transfer: API-call latency.
                handle = runtime.memcpy_h2d(region.chunk())
                t0 = sim.now
                yield handle.api_done
                box["latency"] = sim.now - t0
                yield runtime.synchronize()
                # Back-to-back train: sustained throughput.
                t0 = sim.now
                for _ in range(scale.fig2_transfers):
                    handle = runtime.memcpy_h2d(region.chunk())
                    yield handle.api_done
                yield runtime.synchronize()
                box["train"] = sim.now - t0

            machine.sim.process(app())
            machine.run()
            latency = (
                params.cc_api_latency(size)
                if machine.cc_enabled
                else params.ncc_api_latency(size)
            )
            throughput = scale.fig2_transfers * size / latency_box["train"]
            result.add_row(
                size=label,
                system=system.name,
                latency_us=latency * 1e6,
                throughput_gbps=throughput / 1e9,
            )
    result.add_note(
        "latency column uses the calibrated single-transfer model; "
        "throughput measured over a back-to-back train in the simulator"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 3 — CC overhead study (CC vs w/o CC only)
# ---------------------------------------------------------------------------

FLEXGEN_BATCH = 48


def _flexgen_shapes(scale: Scale) -> List[SyntheticShape]:
    outputs = (128, 32)
    shapes = []
    for prompt, output in ((32, outputs[0]), (256, outputs[1])):
        if scale.flexgen_output is not None:
            output = scale.flexgen_output
        shapes.append(SyntheticShape(prompt, output))
    return shapes


def fig3a_flexgen_overhead(scale="quick") -> ExperimentResult:
    """FlexGen OPT-66B throughput, CC vs w/o CC (≈88 % drop)."""
    scale = _scale(scale)
    result = ExperimentResult(
        "fig3a",
        "FlexGen OPT-66B model offloading under CC",
        columns=["config", "system", "throughput_tok_s", "drop_pct"],
    )
    for shape in _flexgen_shapes(scale):
        base, _ = run_flexgen(WITHOUT_CC, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests)
        cc, _ = run_flexgen(CC, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests)
        for system, res in (("w/o CC", base), ("CC", cc)):
            result.add_row(
                config=shape.label,
                system=system,
                throughput_tok_s=res.throughput,
                drop_pct=_drop(base.throughput, res.throughput),
            )
    return result


def attribution_breakdown(scale="quick") -> ExperimentResult:
    """Per-stage critical-path attribution of the FlexGen weight
    stream (w/o CC / CC / PipeLLM), from the observatory profiler."""
    from ..observatory import profile_hub
    from ..telemetry import recording

    scale = _scale(scale)
    result = ExperimentResult(
        "attrib",
        "Critical-path attribution per stage (FlexGen OPT-66B)",
        columns=[
            "system", "verdict", "encrypt_pct", "wire_order_pct",
            "staging_pct", "control_pct", "pcie_pct", "interconnect_pct",
            "decrypt_pct", "other_pct", "hit_rate", "net_saved_s",
        ],
    )

    def _add_profile_row(name, profile, hit_rate=None, net_saved=None):
        result.add_row(
            system=name,
            verdict=profile.verdict,
            encrypt_pct=100 * profile.share("encrypt"),
            wire_order_pct=100 * profile.share("wire-order"),
            staging_pct=100 * profile.share("staging"),
            control_pct=100 * profile.share("control"),
            pcie_pct=100 * profile.share("pcie"),
            interconnect_pct=100 * profile.share("interconnect"),
            decrypt_pct=100 * profile.share("decrypt"),
            other_pct=100 * profile.share("other"),
            hit_rate=profile.speculation.hit_rate if hit_rate is None
            else hit_rate,
            net_saved_s=profile.speculation.net_saved_s if net_saved is None
            else net_saved,
        )

    shape = SyntheticShape(512, scale.flexgen_output or 8)
    systems = (WITHOUT_CC, CC, pipellm(OFFLOAD_ENC_THREADS, OFFLOAD_DEC_THREADS))
    for system in systems:
        with recording():
            _, runtime = run_flexgen(
                system, OPT_66B, shape, FLEXGEN_BATCH, scale.flexgen_requests
            )
            machine = runtime.machine
            profile = profile_hub(
                machine.telemetry,
                enc_bandwidth=machine.params.enc_bandwidth_per_thread,
            )
        _add_profile_row(system.name, profile)

    # Inter-GPU rows: the encrypted fabric's hop records attribute to
    # the "interconnect" stage, with the serialized bridge splitting
    # time into the inline decrypt/re-encrypt legs as well.
    from ..cc import build_machine
    from ..parallel import LinkSpeculator, TensorParallelEngine

    for name, speculate in (("CC TP-2", False), ("PipeLLM TP-2", True)):
        with recording():
            machine = build_machine(
                CcMode.ENABLED, n_gpus=2,
                enc_threads=OFFLOAD_ENC_THREADS,
                dec_threads=OFFLOAD_DEC_THREADS,
            )
            if speculate:
                machine.interconnect.attach_speculator(
                    LinkSpeculator(lambda: machine.sim.now)
                )
            engine = TensorParallelEngine(machine, OPT_13B, batch=16)
            engine.run(output_tokens=2)
            profile = profile_hub(
                machine.telemetry,
                enc_bandwidth=machine.params.enc_bandwidth_per_thread,
            )
        _add_profile_row(
            name, profile,
            hit_rate=machine.interconnect.hit_rate(), net_saved=0.0,
        )

    result.add_note(
        "per-stage shares of total blocked wire time; each request's "
        "stages sum to its end-to-end latency exactly"
    )
    result.add_note(
        "TP-2 rows profile inter-GPU hop records on the encrypted "
        "fabric: interconnect_pct is the DMA legs of the host bounce, "
        "encrypt/decrypt the serialized bridge's inline AES"
    )
    result.add_note(
        "net_saved_s: critical-path AES seconds removed by staged hits "
        "minus AES work wasted on invalidated staging entries"
    )
    return result


#: vLLM test-point shared by fig3b and fig8 (OPT-30B, ShareGPT, n=6).
VLLM_30B_SHAREGPT_RATES = (0.4, 0.8, 1.2, 1.6, 2.0)


def fig3b_vllm_overhead(scale="quick") -> ExperimentResult:
    """vLLM OPT-30B normalized latency vs request rate, CC vs w/o CC."""
    scale = _scale(scale)
    result = ExperimentResult(
        "fig3b",
        "vLLM OPT-30B KV-cache swapping under CC (ShareGPT, parallel 6)",
        columns=["rate", "system", "norm_latency_s_tok", "swap_ins"],
    )
    for rate in VLLM_30B_SHAREGPT_RATES:
        for system in (WITHOUT_CC, CC):
            res, _ = run_vllm(system, OPT_30B, SHAREGPT, rate, 6, scale.vllm_duration)
            result.add_row(
                rate=rate,
                system=system.name,
                norm_latency_s_tok=res.mean_normalized_latency,
                swap_ins=res.swap_in_count,
            )
    return result


#: PEFT memory-pressure calibration: resident layer counts chosen so
#: the offloaded fraction reproduces the paper's measured CC drops
#: (36.2 % on OPT-30B, 14.0 % on OPT-13B) for these batch sizes.
PEFT_CONFIGS = (
    (OPT_30B, 12, 36),
    (OPT_13B, 16, 35),
)


def fig3c_peft_overhead(scale="quick") -> ExperimentResult:
    """PEFT LoRA fine-tuning throughput drop under CC."""
    scale = _scale(scale)
    result = ExperimentResult(
        "fig3c",
        "PEFT fine-tuning with DeepSpeed offloading under CC",
        columns=["model", "system", "throughput_tok_s", "drop_pct"],
    )
    for spec, batch, resident in PEFT_CONFIGS:
        base, _ = run_peft(WITHOUT_CC, spec, batch, resident, scale.peft_steps)
        cc, _ = run_peft(CC, spec, batch, resident, scale.peft_steps)
        for system, res in (("w/o CC", base), ("CC", cc)):
            result.add_row(
                model=spec.name,
                system=system,
                throughput_tok_s=res.throughput,
                drop_pct=_drop(base.throughput, res.throughput),
            )
    return result


# ---------------------------------------------------------------------------
# Figure 7 — model offloading end-to-end (w/o CC vs CC vs PipeLLM)
# ---------------------------------------------------------------------------

def fig7_model_offloading(scale="quick") -> ExperimentResult:
    """FlexGen (OPT-66B, OPT-175B-4bit) and PEFT (OPT-30B/13B):
    normalized throughput of w/o CC / CC / PipeLLM."""
    scale = _scale(scale)
    pipe = pipellm(OFFLOAD_ENC_THREADS, OFFLOAD_DEC_THREADS)
    result = ExperimentResult(
        "fig7",
        "Model offloading with PipeLLM",
        columns=["workload", "config", "system", "throughput_tok_s",
                 "normalized", "overhead_pct"],
    )
    for spec in (OPT_66B, OPT_175B_4BIT):
        for shape in _flexgen_shapes(scale):
            runs = {}
            for system in (WITHOUT_CC, CC, pipe):
                res, _ = run_flexgen(system, spec, shape, FLEXGEN_BATCH, scale.flexgen_requests)
                runs[system.name] = res
            base = runs["w/o CC"].throughput
            for name, res in runs.items():
                result.add_row(
                    workload=f"flexgen/{spec.name}",
                    config=shape.label,
                    system=name,
                    throughput_tok_s=res.throughput,
                    normalized=res.throughput / base,
                    overhead_pct=_drop(base, res.throughput),
                )
    for spec, batch, resident in PEFT_CONFIGS:
        runs = {}
        for system in (WITHOUT_CC, CC, pipe):
            res, _ = run_peft(system, spec, batch, resident, scale.peft_steps)
            runs[system.name] = res
        base = runs["w/o CC"].throughput
        for name, res in runs.items():
            result.add_row(
                workload=f"peft/{spec.name}",
                config=f"lora bs{batch}",
                system=name,
                throughput_tok_s=res.throughput,
                normalized=res.throughput / base,
                overhead_pct=_drop(base, res.throughput),
            )
    return result


# ---------------------------------------------------------------------------
# Figure 8 — KV-cache swapping end-to-end
# ---------------------------------------------------------------------------

#: Alpaca requests are short, so pressure requires a larger activation
#: reserve (the paper cranks batch limits until swapping triggers).
ALPACA_30B_RESERVE = 13 * GB
ALPACA_30B_RATES = (7.0, 10.0, 13.0)
SHAREGPT_13B_RESERVE = 30 * GB
SHAREGPT_13B_RATES = (1.2, 1.8, 2.4)


def fig8_kv_swapping(scale="quick") -> ExperimentResult:
    """vLLM normalized latency: w/o CC vs CC vs PipeLLM (1+1 threads)."""
    scale = _scale(scale)
    pipe = pipellm(1, 1)
    result = ExperimentResult(
        "fig8",
        "vLLM KV-cache swapping with PipeLLM",
        columns=["model", "dataset", "parallel", "rate", "system",
                 "norm_latency_s_tok", "p90_latency_s_tok",
                 "overhead_pct", "success_rate"],
    )
    cases = [
        # OPT-30B / ShareGPT across the paper's parallel-sampling
        # sweep (n = 2 / 4 / 6); the rate grids shift because smaller
        # n means less KV per request, so pressure needs more traffic.
        (OPT_30B, SHAREGPT, 2, (2.0, 3.0, 4.0), 4 * GB),
        (OPT_30B, SHAREGPT, 4, (1.0, 1.6, 2.2), 4 * GB),
        (OPT_30B, SHAREGPT, 6, VLLM_30B_SHAREGPT_RATES[1:], 4 * GB),
        (OPT_30B, ALPACA, 6, ALPACA_30B_RATES, ALPACA_30B_RESERVE),
        (OPT_13B, SHAREGPT, 6, SHAREGPT_13B_RATES, SHAREGPT_13B_RESERVE),
    ]
    for spec, trace, parallel, rates, reserve in cases:
        for rate in rates:
            runs = {}
            rates_stats = {}
            for system in (WITHOUT_CC, CC, pipe):
                res, runtime = run_vllm(
                    system, spec, trace, rate, parallel, scale.vllm_duration,
                    reserve_bytes=reserve,
                )
                runs[system.name] = res
                if system.uses_pipellm:
                    rates_stats[system.name] = runtime.stats().get("success_rate", 1.0)
            base = runs["w/o CC"].mean_normalized_latency
            for name, res in runs.items():
                lat = res.mean_normalized_latency
                result.add_row(
                    model=spec.name,
                    dataset=trace.name,
                    parallel=parallel,
                    rate=rate,
                    system=name,
                    norm_latency_s_tok=lat,
                    p90_latency_s_tok=res.latency_percentile(90),
                    overhead_pct=100.0 * (lat / base - 1.0) if base else 0.0,
                    success_rate=rates_stats.get(name, ""),
                )
    return result


# ---------------------------------------------------------------------------
# Figure 9 — trivial multi-threading vs pipelining
# ---------------------------------------------------------------------------

FIG9_RATE = 10.0


def fig9_threading(scale="quick") -> ExperimentResult:
    """CC with 4 crypto threads (no pipelining) vs PipeLLM with 2.

    vLLM, OPT-30B, Alpaca, parallel 6 — the Fig. 9 configuration.
    """
    scale = _scale(scale)
    result = ExperimentResult(
        "fig9",
        "Trivial multi-threading on vLLM OPT-30B (Alpaca, parallel 6)",
        columns=["system", "crypto_threads", "norm_latency_s_tok", "overhead_pct"],
    )
    systems = [
        (WITHOUT_CC, 0),
        (CC, 2),
        (cc_threads(4), 8),
        (pipellm(1, 1), 2),
    ]
    base = None
    for system, threads in systems:
        res, _ = run_vllm(
            system, OPT_30B, ALPACA, FIG9_RATE, 6, scale.vllm_duration,
            reserve_bytes=ALPACA_30B_RESERVE,
        )
        lat = res.mean_normalized_latency
        if base is None:
            base = lat
        result.add_row(
            system=system.name,
            crypto_threads=threads,
            norm_latency_s_tok=lat,
            overhead_pct=100.0 * (lat / base - 1.0),
        )
    return result


# ---------------------------------------------------------------------------
# Figure 10 — prediction success-rate ablation
# ---------------------------------------------------------------------------

FIG10_RATE = 20.0
FIG10_RESERVE = 16 * GB


def fig10_success_rate(scale="quick") -> ExperimentResult:
    """PipeLLM vs PipeLLM-0 (0 % sequence prediction success).

    vLLM, OPT-30B, Alpaca, parallel 2 — Fig. 10. The paper measures
    only a ~8.3 % drop for PipeLLM-0, driven by NOP overhead.
    """
    scale = _scale(scale)
    result = ExperimentResult(
        "fig10",
        "Ablation on sequence-prediction success rate",
        columns=["system", "norm_latency_s_tok", "vs_pipellm_pct",
                 "success_rate", "nops"],
    )
    rows = []
    for system in (WITHOUT_CC, CC, pipellm(1, 1), pipellm_zero(1, 1)):
        res, runtime = run_vllm(
            system, OPT_30B, ALPACA, FIG10_RATE, 2, scale.vllm_duration,
            reserve_bytes=FIG10_RESERVE,
        )
        stats = runtime.stats() if system.uses_pipellm else {}
        rows.append((system.name, res.mean_normalized_latency, stats))
    pipe_lat = next(lat for name, lat, _ in rows if name == "PipeLLM")
    for name, lat, stats in rows:
        result.add_row(
            system=name,
            norm_latency_s_tok=lat,
            vs_pipellm_pct=100.0 * (lat / pipe_lat - 1.0),
            success_rate=stats.get("success_rate", ""),
            nops=stats.get("nops_sent", ""),
        )
    return result
