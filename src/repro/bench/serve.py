"""Online-serving frontier: latency vs offered load per system × policy.

The headline experiment of the serving front end: sweep offered load
over the same two-replica confidential fleet for each CC mode (w/o CC
/ CC-serialized / PipeLLM) × admission policy (fifo / slo) and record
the latency-vs-load frontier — SLO attainment, goodput, TTFT
percentiles and shedding behaviour at every point.

The fleet runs with a high KV reserve so the sweep crosses the swap
threshold partway up: below it the three systems tie (control traffic
is inline everywhere); above it CC's inline swap encryption inflates
TTFT/TPOT and PipeLLM's frontier pulls away toward native. At the
top rate the fleet is saturated and the SLO policy's deadline
shedding converts hopeless requests into headroom — higher goodput
than FIFO despite completing fewer requests.

Inline asserts pin the reproduction claims:

* accounting — every offered request resolves (completed + shed);
* at the lowest rate, PipeLLM's SLO attainment is ≥ 0.95;
* at the top rate the fleet swaps, and under the SLO policy shedding
  engages with zero requests lost untracked;
* PipeLLM's frontier dominates CC-serialized (goodput at the swap
  knee and in frontier area under the SLO policy);
* per-request TTFT/TPOT reached the telemetry metrics.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import ClusterConfig
from ..serve import LoadSpec, SloSpec, run_serve
from ..workloads import SHAREGPT_SERVE
from .tables import ExperimentResult

__all__ = ["serve_frontier", "SERVE_RESERVE_BYTES", "SERVE_MAX_OUTSTANDING"]

#: KV-pool squeeze that makes the sweep cross the swap threshold: a
#: two-replica OPT-13B fleet keeps ~1 GB of KV blocks per GPU, enough
#: for ~6 concurrent ShareGPT-serve requests before preemption.
SERVE_RESERVE_BYTES = 55 << 30
#: Per-replica outstanding budget — deep enough that KV pressure (not
#: the gateway window) is the binding constraint at high load.
SERVE_MAX_OUTSTANDING = 12

#: The systems of the frontier, in presentation order.
_SYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("native", "w/o CC"),
    ("cc", "CC"),
    ("pipellm", "PipeLLM"),
)


def _config(system: str) -> ClusterConfig:
    return ClusterConfig(
        replicas=2,
        system=system,
        policy="least-loaded",
        reserve_bytes=SERVE_RESERVE_BYTES,
        max_outstanding=SERVE_MAX_OUTSTANDING,
    )


def serve_frontier(scale: str = "quick") -> ExperimentResult:
    """Serving frontier: SLO attainment & goodput vs offered load."""
    quick = scale == "quick"
    rates = (8.0, 24.0, 40.0) if quick else (8.0, 16.0, 24.0, 32.0, 40.0)
    duration = 5.0 if quick else 10.0
    slo = SloSpec()

    result = ExperimentResult(
        experiment_id="serve",
        title="online serving frontier: latency vs offered load (extension)",
        columns=[
            "system", "admission", "rate_rps", "offered", "completed",
            "shed", "attainment", "goodput_rps", "p50_ttft_s", "p99_ttft_s",
            "mean_tpot_s", "swap_outs", "auth_fail",
        ],
    )

    #: (system, admission, rate) -> ServeResult, for the asserts.
    runs: Dict[Tuple[str, str, float], object] = {}
    for system, label in _SYSTEMS:
        for admission in ("fifo", "slo"):
            for rate in rates:
                load = LoadSpec(
                    trace=SHAREGPT_SERVE, rate=rate, duration=duration
                )
                run = run_serve(
                    _config(system), load, slo=slo, admission=admission
                )
                runs[(system, admission, rate)] = run
                # Accounting: the front end already raises if any
                # request vanished; re-assert the ledger closes.
                assert run.completed + run.shed == run.offered
                result.add_row(
                    system=label,
                    admission=admission,
                    rate_rps=rate,
                    offered=run.offered,
                    completed=run.completed,
                    shed=run.shed,
                    attainment=round(run.attainment, 4),
                    goodput_rps=round(run.goodput, 3),
                    p50_ttft_s=round(run.p50_ttft, 5),
                    p99_ttft_s=round(run.p99_ttft, 5),
                    mean_tpot_s=round(run.mean_tpot, 6),
                    swap_outs=run.swap_outs,
                    auth_fail=run.auth_failures,
                )

    low, top = rates[0], rates[-1]

    # At low load the confidential service meets its SLOs.
    low_run = runs[("pipellm", "slo", low)]
    assert low_run.attainment >= 0.95, (
        f"PipeLLM attainment {low_run.attainment:.3f} < 0.95 at {low} req/s"
    )

    # The top rate crosses the swap threshold and saturates the fleet:
    # deadline shedding engages, and nothing is lost untracked.
    top_pipellm = runs[("pipellm", "slo", top)]
    assert top_pipellm.swap_outs > 0, "top rate never hit KV pressure"
    assert top_pipellm.shed > 0, "overload never triggered shedding"

    # The PipeLLM frontier dominates CC-serialized. Two forms, both
    # robust to the noisy deep-overload tail (past saturation, goodput
    # depends on which individual requests land inside budget):
    # (1) at the knee — the first rate where swap pressure breaks CC's
    #     SLO attainment, i.e. where inline encryption lands on the
    #     critical path hard enough to matter — PipeLLM's goodput is
    #     at least CC's;
    # (2) in aggregate, the area under PipeLLM's goodput frontier
    #     covers CC's.
    knee = next(
        (
            r for r in rates
            if runs[("cc", "slo", r)].swap_outs > 0
            and runs[("cc", "slo", r)].attainment < 0.95
        ),
        None,
    )
    assert knee is not None, "CC never felt swap pressure across the sweep"
    assert (
        runs[("pipellm", "slo", knee)].goodput
        >= runs[("cc", "slo", knee)].goodput
    ), f"PipeLLM does not dominate CC at the swap knee ({knee} req/s)"
    area = {
        system: sum(runs[(system, "slo", r)].goodput for r in rates)
        for system in ("cc", "pipellm")
    }
    assert area["pipellm"] >= area["cc"], (
        f"PipeLLM frontier area {area['pipellm']:.1f} < CC {area['cc']:.1f}"
    )

    # Per-request latency metrics reached the telemetry layer (the
    # serve.* latency stats bind_gateway scrapes into the registry).
    assert low_run.ttfts and low_run.tpots

    gap = (
        runs[("pipellm", "slo", knee)].goodput
        - runs[("cc", "slo", knee)].goodput
    )
    result.add_note(
        f"PipeLLM sustains +{gap:.1f} req/s goodput over CC-serialized at "
        f"the swap knee ({knee:.0f} req/s offered) — swap encryption off "
        "the critical path."
    )
    result.add_note(
        "SLO admission sheds hopeless requests at overload and beats FIFO "
        "on goodput at the top rate for every system."
    )
    return result
