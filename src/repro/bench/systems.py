"""The systems compared throughout the evaluation (§7.1 baselines).

* ``w/o CC`` — native performance, confidential computing off.
* ``CC`` — NVIDIA Confidential Computing as shipped: inline AES-GCM
  on one CPU thread inside the memcpy path.
* ``CC-4t`` — the Fig. 9 strawman: CC with 4 encryption/decryption
  threads but no pipelining.
* ``PipeLLM`` — speculative pipelined encryption (this paper).
* ``PipeLLM-0`` — the Fig. 10 ablation: sequence prediction always
  wrong (right chunk set, reversed order).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..cc import CcMode, CudaContext, DeviceRuntime, Machine
from ..core import PipeLLMConfig, PipeLLMRuntime
from ..hw import HardwareParams

__all__ = [
    "SystemSpec",
    "WITHOUT_CC",
    "CC",
    "cc_threads",
    "pipellm",
    "pipellm_zero",
]


@dataclass(frozen=True)
class SystemSpec:
    """A named, buildable system configuration."""

    name: str
    cc_mode: CcMode
    enc_threads: int = 1
    dec_threads: int = 1
    pipellm_config: Optional[PipeLLMConfig] = None

    @property
    def uses_pipellm(self) -> bool:
        return self.pipellm_config is not None

    def build(
        self, params: Optional[HardwareParams] = None, sim=None, faults=None
    ) -> Tuple[Machine, DeviceRuntime]:
        """Instantiate a fresh machine plus its runtime.

        ``sim`` embeds the machine in an existing simulator (cluster
        replicas share one kernel); None keeps the historical
        one-machine-one-simulator behaviour. ``faults`` threads a
        :class:`repro.faults.FaultInjector` through the machine.
        """
        machine = Machine(
            self.cc_mode,
            params=params,
            enc_threads=self.enc_threads,
            dec_threads=self.dec_threads,
            sim=sim,
            faults=faults,
        )
        # Telemetry traces group machines by system name (e.g. one
        # Perfetto process per "PipeLLM" / "CC" instance).
        machine.telemetry.label = self.name
        if self.uses_pipellm:
            runtime: DeviceRuntime = PipeLLMRuntime(machine, self.pipellm_config)
        else:
            runtime = CudaContext(machine)
        return machine, runtime

    def with_threads(self, enc: int, dec: int) -> "SystemSpec":
        return replace(self, enc_threads=enc, dec_threads=dec)


WITHOUT_CC = SystemSpec("w/o CC", CcMode.DISABLED)
CC = SystemSpec("CC", CcMode.ENABLED)


def cc_threads(threads: int) -> SystemSpec:
    """The CC baseline with N crypto threads (Fig. 9's "CC-4t")."""
    return SystemSpec(f"CC-{threads}t", CcMode.ENABLED, enc_threads=threads, dec_threads=threads)


def pipellm(
    enc_threads: int = 1,
    dec_threads: int = 1,
    config: Optional[PipeLLMConfig] = None,
    name: str = "PipeLLM",
) -> SystemSpec:
    """PipeLLM over a CC-enabled machine.

    The paper uses multiple encryption threads for model offloading
    (to outrun PCIe) but only 1+1 threads for vLLM KV swapping.
    """
    return SystemSpec(
        name,
        CcMode.ENABLED,
        enc_threads=enc_threads,
        dec_threads=dec_threads,
        pipellm_config=config or PipeLLMConfig(),
    )


def pipellm_zero(enc_threads: int = 1, dec_threads: int = 1) -> SystemSpec:
    """Fig. 10's "PipeLLM-0": zero sequence-prediction success."""
    return pipellm(
        enc_threads,
        dec_threads,
        config=PipeLLMConfig(sabotage="reverse"),
        name="PipeLLM-0",
    )
