"""Continuous benchmark harness (``python -m repro bench``).

Runs a pinned-seed suite over the repo's standing campaigns — the
Fig. 2 microbenchmark, FlexGen offloading under CC and PipeLLM (with
full critical-path attribution from :mod:`repro.observatory`), the
multi-replica cluster, a fault storm, multi-GPU parallel decode, the
online-serving front end and the disaggregated prefill/decode fleet —
and writes one
schema-versioned ``BENCH_<n>.json`` artifact per run: throughput,
per-stage attribution, speculation stats, bottleneck verdicts and
wall-clock.

The paired comparator diffs two artifacts' **key metrics** (each
tagged with its improvement direction) and reports anything that
moved past the regression tolerance (default 5 %). Gated key metrics
are simulated quantities, so two same-seed runs compare exactly
equal. Wall-clock is tracked as a **warn-level** key metric: the
comparator reports movement in a separate ``warnings`` bucket that
never fails the gate (wall time is machine- and load-dependent), but
keeps the fast-path speedup visible run over run.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cluster import run_cluster
from ..core import ClusterConfig
from ..models import OPT_30B, OPT_66B
from ..observatory import profile_hub
from ..parallel import TensorParallelEngine
from ..sim import default_seed, set_default_seed
from ..telemetry import recording
from ..workloads import SyntheticShape
from .experiments import (
    OFFLOAD_DEC_THREADS,
    OFFLOAD_ENC_THREADS,
    Scale,
    fig2_microbenchmark,
    run_flexgen,
)
from .faults import _ADAPTIVE, _run_once
from .parallel import _SYSTEMS, _build as _parallel_build
from .systems import CC, WITHOUT_CC, pipellm

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SUITES",
    "compare_artifacts",
    "find_latest_artifact",
    "load_artifact",
    "next_artifact_path",
    "render_comparison",
    "run_suite",
]

BENCH_SCHEMA_VERSION = 1

#: Default regression tolerance: relative change beyond which a key
#: metric counts as regressed (in its bad direction).
REGRESSION_TOLERANCE = 0.05

_ARTIFACT_RE = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class SuiteScale:
    """Run sizes of one suite variant."""

    name: str
    flexgen_requests: int
    flexgen_output: int
    cluster_rate: float
    cluster_duration: float
    cluster_tenants: int
    fig2_transfers: int
    parallel_gpus: int
    parallel_batch: int
    parallel_tokens: int
    # Online-serving campaign (appended fields keep older call sites
    # positional-compatible).
    serve_rate: float = 24.0
    serve_duration: float = 5.0
    # Disaggregated prefill/decode campaign (appended, same rule).
    disagg_rate: float = 12.0
    disagg_duration: float = 4.0


SUITES: Dict[str, SuiteScale] = {
    "standard": SuiteScale(
        name="standard", flexgen_requests=48, flexgen_output=8,
        cluster_rate=4.0, cluster_duration=10.0, cluster_tenants=4,
        fig2_transfers=64,
        parallel_gpus=2, parallel_batch=64, parallel_tokens=3,
        serve_rate=24.0, serve_duration=5.0,
        disagg_rate=12.0, disagg_duration=4.0,
    ),
    "smoke": SuiteScale(
        name="smoke", flexgen_requests=16, flexgen_output=4,
        cluster_rate=3.0, cluster_duration=5.0, cluster_tenants=3,
        fig2_transfers=32,
        parallel_gpus=2, parallel_batch=32, parallel_tokens=2,
        serve_rate=16.0, serve_duration=3.0,
        disagg_rate=8.0, disagg_duration=2.5,
    ),
}


def _key(
    value: float, higher_is_better: bool, level: Optional[str] = None
) -> Dict[str, Any]:
    """One key-metric entry; ``level="warn"`` marks it non-gating.

    The ``level`` field is only emitted when set, so gated metrics
    keep the exact shape of every artifact already on disk.
    """
    out: Dict[str, Any] = {
        "value": float(value), "higher_is_better": bool(higher_is_better),
    }
    if level is not None:
        out["level"] = level
    return out


def _profiled_flexgen(system, suite: SuiteScale, seed: int) -> Dict[str, Any]:
    """One FlexGen OPT-66B run with full critical-path attribution."""
    shape = SyntheticShape(32, suite.flexgen_output)
    with recording() as session:
        result, runtime = run_flexgen(
            system, OPT_66B, shape, suite.flexgen_requests, suite.flexgen_requests
        )
    hub = session.hubs[0]
    machine = runtime.machine
    profile = profile_hub(
        hub, horizon=machine.sim.now,
        enc_bandwidth=machine.params.enc_bandwidth_per_thread,
    )
    wire = machine.metrics.latencies.get("telemetry.h2d_wire_s")
    out: Dict[str, Any] = {
        "system": system.name,
        "throughput_tok_s": result.throughput,
        "elapsed_s": result.elapsed,
        "swap_ins": result.swap_in_count,
        "verdict": profile.verdict,
        "attribution_s": {s: profile.totals[s] for s in sorted(profile.totals)},
        "attribution_share": {
            s: profile.share(s) for s in sorted(profile.totals)
        },
        "p50_wire_s": wire.p(50) if wire is not None else 0.0,
        "p99_wire_s": wire.p(99) if wire is not None else 0.0,
    }
    if hasattr(runtime, "stats"):
        stats = runtime.stats()
        out["speculation"] = {
            "hit_rate": stats["success_rate"],
            "saved_s": profile.speculation.saved_s,
            "wasted_s": profile.speculation.wasted_s,
            "nops_sent": stats["nops_sent"],
            "staged_total": stats["staged_total"],
            "invalidated": profile.speculation.invalidated,
        }
    return out


def _micro_campaign(suite: SuiteScale) -> Dict[str, Any]:
    scale = Scale(
        name=f"bench-{suite.name}", flexgen_requests=suite.flexgen_requests,
        flexgen_output=suite.flexgen_output, vllm_duration=10.0,
        peft_steps=2, fig2_transfers=suite.fig2_transfers,
    )
    table = fig2_microbenchmark(scale)
    out: Dict[str, Any] = {}
    for row in table.rows:
        key = f"{row['system']}@{row['size']}".replace(" ", "")
        out[key] = {
            "latency_us": row["latency_us"],
            "throughput_gbps": row["throughput_gbps"],
        }
    return out


def _cluster_campaign(suite: SuiteScale, seed: int) -> Dict[str, Any]:
    config = ClusterConfig(replicas=2, system="pipellm", seed=seed)
    result = run_cluster(
        config, rate=suite.cluster_rate, duration=suite.cluster_duration,
        tenants=suite.cluster_tenants,
    )
    return {
        "offered": result.offered,
        "completed": result.completed,
        "shed": result.shed,
        "throughput_req_s": result.throughput,
        "p50_latency_s": result.p50_latency,
        "p99_latency_s": result.p99_latency,
        "iv_observed": result.iv_observed,
        "auth_failures": result.auth_failures,
    }


def _faults_campaign(suite: SuiteScale) -> Dict[str, Any]:
    scale = Scale(
        name=f"bench-{suite.name}", flexgen_requests=suite.flexgen_requests,
        flexgen_output=suite.flexgen_output, vllm_duration=10.0,
        peft_steps=2, fig2_transfers=suite.fig2_transfers,
    )
    # Clean run calibrates the storm window, exactly like the full
    # campaign; both runs contribute metrics.
    _, _, _, _, dry, _ = _run_once(scale, 0.0, _ADAPTIVE, (0.0, 0.0))
    window = (0.15 * dry.elapsed, 0.55 * dry.elapsed)
    machine, runtime, injector, audit, stormy, _ = _run_once(
        scale, 0.3, _ADAPTIVE, window
    )
    stats = runtime.stats()
    return {
        "clean_throughput_tok_s": dry.throughput,
        "storm_rate": 0.3,
        "storm_throughput_tok_s": stormy.throughput,
        "injected": injector.injected_total,
        "auth_recoveries": stats["auth_recoveries"],
        "mode_switches": stats["mode_switches"],
        "final_mode": runtime.fault_controller.mode.value,
        "iv_observed": audit.observed,
    }


def _parallel_campaign(suite: SuiteScale) -> Dict[str, Any]:
    """Multi-GPU TP decode across the three systems (one GPU count)."""
    runs = {}
    audit = None
    for system in _SYSTEMS:
        machine, system_audit = _parallel_build(system, suite.parallel_gpus)
        engine = TensorParallelEngine(
            machine, OPT_30B, batch=suite.parallel_batch, label=system
        )
        runs[system] = engine.run(output_tokens=suite.parallel_tokens)
        if system == "PipeLLM":
            audit = system_audit
    nocc, cc, pipe = (runs[s] for s in _SYSTEMS)
    gap = nocc.throughput - cc.throughput
    return {
        "n_gpus": suite.parallel_gpus,
        "nocc_throughput_tok_s": nocc.throughput,
        "cc_throughput_tok_s": cc.throughput,
        "pipellm_throughput_tok_s": pipe.throughput,
        "recovery": (pipe.throughput - cc.throughput) / gap if gap > 0 else 0.0,
        "hit_rate": pipe.spec_hit_rate,
        "hops": pipe.hops,
        "bounce_bytes": pipe.bounce_bytes,
        "iv_observed": audit.observed if audit is not None else 0,
        "checksum": pipe.checksum,
    }


def _serve_campaign(suite: SuiteScale) -> Dict[str, Any]:
    """Online-serving front end: CC vs PipeLLM at one offered load."""
    from ..serve import LoadSpec, SloSpec, run_serve
    from ..workloads import SHAREGPT_SERVE
    from .serve import SERVE_MAX_OUTSTANDING, SERVE_RESERVE_BYTES

    out: Dict[str, Any] = {
        "rate_rps": suite.serve_rate,
        "duration_s": suite.serve_duration,
    }
    for system in ("cc", "pipellm"):
        config = ClusterConfig(
            replicas=2, system=system, policy="least-loaded",
            reserve_bytes=SERVE_RESERVE_BYTES,
            max_outstanding=SERVE_MAX_OUTSTANDING,
        )
        load = LoadSpec(
            trace=SHAREGPT_SERVE, rate=suite.serve_rate,
            duration=suite.serve_duration,
        )
        run = run_serve(config, load, slo=SloSpec(), admission="slo")
        out[system] = {
            "offered": run.offered,
            "completed": run.completed,
            "shed": run.shed,
            "attainment": run.attainment,
            "goodput_rps": run.goodput,
            "p99_ttft_s": run.p99_ttft,
            "mean_tpot_s": run.mean_tpot,
            "swap_outs": run.swap_outs,
            "auth_failures": run.auth_failures,
        }
    return out


def _disagg_campaign(suite: SuiteScale, seed: int) -> Dict[str, Any]:
    """Disaggregated prefill/decode vs monolithic at one offered load."""
    from ..core import DisaggConfig
    from ..disagg import run_disagg

    out: Dict[str, Any] = {
        "rate_rps": suite.disagg_rate,
        "duration_s": suite.disagg_duration,
    }
    configs = {
        "mono": DisaggConfig(prefill_workers=0, decode_workers=4,
                             system="cc", seed=seed),
        "disagg": DisaggConfig(prefill_workers=1, decode_workers=3,
                               system="pipellm", seed=seed),
    }
    for label, config in configs.items():
        run = run_disagg(
            config, rate=suite.disagg_rate, duration=suite.disagg_duration
        )
        out[label] = {
            "offered": run.offered,
            "completed": run.completed,
            "shed": run.shed,
            "goodput_rps": run.goodput,
            "p50_ttft_s": run.p50_ttft,
            "p99_ttft_s": run.p99_ttft,
            "migration_chunks": run.migration_chunks,
            "migration_hit_rate": run.migration_hit_rate,
            "migration_s_per_chunk": run.migration_s_per_chunk,
            "iv_observed": run.iv_observed,
        }
    return out


def run_suite(
    suite: str = "standard",
    seed: int = 1,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, Any]:
    """Run every campaign of one suite; returns the artifact document.

    ``clock`` is an (optional) wall-clock source injected by the CLI —
    the simulation tree itself never reads wall time. The artifact's
    ``key_metrics`` block is what the comparator gates on; every entry
    is a simulated quantity, deterministic under (suite, seed).
    """
    t0 = clock() if clock is not None else 0.0
    scale = SUITES[suite]
    # The override is process-wide CLI state; restore whatever was
    # there so a suite run never leaks its seed into later code.
    previous_seed = default_seed(None)  # type: ignore[arg-type]
    set_default_seed(seed)
    try:
        pipe = pipellm(OFFLOAD_ENC_THREADS, OFFLOAD_DEC_THREADS)
        campaigns = {
            "micro-fig2": _micro_campaign(scale),
            "offload-nocc": _profiled_flexgen(WITHOUT_CC, scale, seed),
            "offload-cc": _profiled_flexgen(CC, scale, seed),
            "offload-pipellm": _profiled_flexgen(pipe, scale, seed),
            "cluster": _cluster_campaign(scale, default_seed(seed)),
            "faults": _faults_campaign(scale),
            # Appended last: earlier campaigns' RNG draws are
            # unperturbed, so their metrics match pre-parallel artifacts
            # bit for bit.
            "parallel": _parallel_campaign(scale),
            # Same rule again: serve runs after everything above so all
            # pre-existing campaign metrics stay bit-identical.
            "serve": _serve_campaign(scale),
            # And again: disagg appended last for the same reason.
            "disagg": _disagg_campaign(scale, default_seed(seed)),
        }
    finally:
        set_default_seed(previous_seed)

    cc = campaigns["offload-cc"]
    pl = campaigns["offload-pipellm"]
    cl = campaigns["cluster"]
    fl = campaigns["faults"]
    key_metrics = {
        "micro_cc_32mb_gbps": _key(
            campaigns["micro-fig2"]["CC@32MB"]["throughput_gbps"], True
        ),
        "micro_nocc_32mb_gbps": _key(
            campaigns["micro-fig2"]["w/oCC@32MB"]["throughput_gbps"], True
        ),
        "offload_cc_throughput_tok_s": _key(cc["throughput_tok_s"], True),
        "offload_pipellm_throughput_tok_s": _key(pl["throughput_tok_s"], True),
        "pipellm_speedup_over_cc": _key(
            pl["throughput_tok_s"] / cc["throughput_tok_s"]
            if cc["throughput_tok_s"] else 0.0,
            True,
        ),
        "pipellm_hit_rate": _key(pl["speculation"]["hit_rate"], True),
        "pipellm_p99_wire_s": _key(pl["p99_wire_s"], False),
        "pipellm_encrypt_share": _key(
            pl["attribution_share"].get("encrypt", 0.0), False
        ),
        "cluster_throughput_req_s": _key(cl["throughput_req_s"], True),
        "cluster_p99_latency_s": _key(cl["p99_latency_s"], False),
        "faults_storm_throughput_tok_s": _key(fl["storm_throughput_tok_s"], True),
        "parallel_nocc_tok_s": _key(
            campaigns["parallel"]["nocc_throughput_tok_s"], True
        ),
        "parallel_cc_tok_s": _key(
            campaigns["parallel"]["cc_throughput_tok_s"], True
        ),
        "parallel_pipellm_tok_s": _key(
            campaigns["parallel"]["pipellm_throughput_tok_s"], True
        ),
        "parallel_recovery": _key(campaigns["parallel"]["recovery"], True),
        "parallel_hit_rate": _key(campaigns["parallel"]["hit_rate"], True),
        "serve_pipellm_goodput_rps": _key(
            campaigns["serve"]["pipellm"]["goodput_rps"], True
        ),
        "serve_pipellm_attainment": _key(
            campaigns["serve"]["pipellm"]["attainment"], True
        ),
        "serve_pipellm_p99_ttft_s": _key(
            campaigns["serve"]["pipellm"]["p99_ttft_s"], False
        ),
        "serve_cc_goodput_rps": _key(
            campaigns["serve"]["cc"]["goodput_rps"], True
        ),
        "disagg_goodput_rps": _key(
            campaigns["disagg"]["disagg"]["goodput_rps"], True
        ),
        "disagg_p50_ttft_s": _key(
            campaigns["disagg"]["disagg"]["p50_ttft_s"], False
        ),
        "disagg_hit_rate": _key(
            campaigns["disagg"]["disagg"]["migration_hit_rate"], True
        ),
        "disagg_s_per_chunk": _key(
            campaigns["disagg"]["disagg"]["migration_s_per_chunk"], False
        ),
    }

    wall_clock_s = (clock() - t0) if clock is not None else 0.0
    if clock is not None:
        # Tracked, never gated: wall time depends on the machine and
        # the crypto backend, not on any simulated quantity.
        key_metrics["wall_clock_s"] = _key(wall_clock_s, False, level="warn")

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "seed": seed,
        "verdicts": {
            "offload-cc": cc["verdict"],
            "offload-pipellm": pl["verdict"],
        },
        "key_metrics": key_metrics,
        "campaigns": campaigns,
        # Duplicated at top level for humans and older tooling; the
        # warn-level key metric above is what the comparator tracks.
        "wall_clock_s": wall_clock_s,
    }


# -- artifacts on disk ---------------------------------------------------


def artifact_index(path: Path) -> Optional[int]:
    match = _ARTIFACT_RE.match(path.name)
    return int(match.group(1)) if match else None


def find_latest_artifact(directory: Path, below: Optional[int] = None) -> Optional[Path]:
    """Highest-numbered ``BENCH_<n>.json`` (optionally with n < below)."""
    best: Tuple[int, Optional[Path]] = (-1, None)
    for path in directory.glob("BENCH_*.json"):
        index = artifact_index(path)
        if index is None or (below is not None and index >= below):
            continue
        if index > best[0]:
            best = (index, path)
    return best[1]


def next_artifact_path(directory: Path) -> Path:
    latest = find_latest_artifact(directory)
    index = artifact_index(latest) + 1 if latest is not None else 0
    return directory / f"BENCH_{index}.json"


# -- comparator ----------------------------------------------------------


def compare_artifacts(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float = REGRESSION_TOLERANCE,
) -> Dict[str, List[Dict[str, Any]]]:
    """Diff two artifacts' key metrics.

    Returns ``{"regressions": [...], "improvements": [...],
    "unchanged": [...], "warnings": [...]}`` where each entry carries
    the metric name, both values and the relative change (positive =
    candidate higher). A metric regresses when it moved more than
    ``tolerance`` in its bad direction; the verdicts flipping is
    always a regression. Metrics tagged ``level: warn`` in either
    artifact (wall clock) never regress: any beyond-tolerance movement
    lands in ``warnings``, which callers report but do not gate on.
    """
    out: Dict[str, List[Dict[str, Any]]] = {
        "regressions": [], "improvements": [], "unchanged": [],
        "warnings": [],
    }
    base_metrics = baseline.get("key_metrics", {})
    cand_metrics = candidate.get("key_metrics", {})
    for name in sorted(set(base_metrics) & set(cand_metrics)):
        base = base_metrics[name]
        cand = cand_metrics[name]
        higher_is_better = base.get("higher_is_better", True)
        warn_only = "warn" in (base.get("level"), cand.get("level"))
        b, c = base["value"], cand["value"]
        change = (c - b) / abs(b) if b else (0.0 if c == b else float("inf"))
        entry = {
            "metric": name, "baseline": b, "candidate": c,
            "change": change, "higher_is_better": higher_is_better,
        }
        bad = -change if higher_is_better else change
        if warn_only:
            if abs(change) > tolerance:
                out["warnings"].append(entry)
            else:
                out["unchanged"].append(entry)
        elif bad > tolerance:
            out["regressions"].append(entry)
        elif bad < -tolerance:
            out["improvements"].append(entry)
        else:
            out["unchanged"].append(entry)
    for campaign, verdict in baseline.get("verdicts", {}).items():
        cand_verdict = candidate.get("verdicts", {}).get(campaign)
        if cand_verdict is not None and cand_verdict != verdict:
            out["regressions"].append({
                "metric": f"verdict:{campaign}", "baseline": verdict,
                "candidate": cand_verdict, "change": float("nan"),
                "higher_is_better": True,
            })
    return out


def render_comparison(diff: Dict[str, List[Dict[str, Any]]]) -> str:
    lines: List[str] = []
    for bucket, marker in (
        ("regressions", "REGRESSION"), ("warnings", "WARN"),
        ("improvements", "improved"), ("unchanged", "ok"),
    ):
        for entry in diff.get(bucket, []):
            if isinstance(entry["baseline"], str):
                lines.append(
                    f"  {marker:<10} {entry['metric']}: "
                    f"{entry['baseline']} -> {entry['candidate']}"
                )
                continue
            arrow = "+" if entry["change"] >= 0 else ""
            lines.append(
                f"  {marker:<10} {entry['metric']}: "
                f"{entry['baseline']:.6g} -> {entry['candidate']:.6g} "
                f"({arrow}{100 * entry['change']:.2f}%)"
            )
    summary = (
        f"{len(diff['regressions'])} regressions, "
        f"{len(diff['improvements'])} improvements, "
        f"{len(diff['unchanged'])} unchanged"
    )
    warnings = diff.get("warnings", [])
    if warnings:
        summary += f", {len(warnings)} warnings"
    return summary + ("\n" + "\n".join(lines) if lines else "")


def load_artifact(path: Path) -> Dict[str, Any]:
    doc = json.loads(path.read_text())
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema v{version}, harness speaks "
            f"v{BENCH_SCHEMA_VERSION}"
        )
    return doc
