"""vLLM-like serving substrate: paged KV cache + request-wise swapping."""

from .block_manager import BlockAllocationError, BlockManager
from .engine import VllmConfig, VllmEngine, VllmResult
from .scheduler import GroupState, SchedulerState, SequenceGroup

__all__ = [
    "BlockAllocationError",
    "BlockManager",
    "GroupState",
    "SchedulerState",
    "SequenceGroup",
    "VllmConfig",
    "VllmEngine",
    "VllmResult",
]
