"""vLLM-like serving engine with KV-cache swapping.

Reproduces the substrate of the paper's case study 2 (§3) and the
Fig. 3b / Fig. 8 / Fig. 9 / Fig. 10 experiments: model weights stay
resident; memory pressure from many concurrent requests is handled by
request-wise KV swapping (preempt → swap out → resume LIFO). Every
iteration also moves small control transfers (token ids in, sampled
tokens out) — the traffic that perturbs PipeLLM's IV stream and
exercises NOP padding and the adaptive leeway.

The engine runs against any :class:`DeviceRuntime`; the normalized
latency metric (s per output token, averaged over requests) matches
the paper's serving plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...cc.api import DeviceRuntime, TransferHandle
from ...cc.machine import Machine
from ...hw.memory import MemoryChunk
from ...models import KvGeometry, ModelSpec, TransformerCostModel
from ...sim import SeededRng, mean, percentile
from ...workloads import Request
from .block_manager import BlockManager
from .scheduler import GroupState, SchedulerState, SequenceGroup

__all__ = ["VllmConfig", "VllmEngine", "VllmResult"]

#: Functional payload bytes for KV swap chunks and control transfers.
_PAYLOAD_BYTES = 16


@dataclass
class VllmConfig:
    """One vLLM serving test case."""

    spec: ModelSpec
    requests: List[Request]
    block_size: int = 16
    #: GPU bytes kept free for activations and workspace.
    reserve_bytes: int = 4 << 30
    max_num_seqs: int = 256
    #: Resume hysteresis (fraction of total blocks that must be free
    #: beyond the group's own need) — vLLM's watermark, which prevents
    #: swap-in/swap-out thrashing at the pressure boundary.
    resume_watermark: float = 0.02
    seed: int = 1
    #: Safety horizon (simulated seconds) after which the run aborts.
    max_sim_time: float = 36_000.0


@dataclass
class VllmResult:
    """Latency summary of one run."""

    normalized_latencies: List[float]
    elapsed: float
    swap_out_count: int
    swap_in_count: int
    finished: int

    @property
    def mean_normalized_latency(self) -> float:
        """Seconds per generated token, averaged over requests."""
        return mean(self.normalized_latencies)

    def latency_percentile(self, q: float) -> float:
        """Normalized-latency percentile across requests (q in [0,100])."""
        return percentile(self.normalized_latencies, q)


class VllmEngine:
    """Continuous batching + request-wise KV swapping."""

    def __init__(self, machine: Machine, runtime: DeviceRuntime, config: VllmConfig) -> None:
        if not config.requests:
            raise ValueError("config.requests must not be empty")
        self.machine = machine
        self.runtime = runtime
        self.config = config
        self.cost = TransformerCostModel(config.spec)
        self.geometry = KvGeometry(config.spec, block_size=config.block_size)
        self._rng = SeededRng(config.seed)

        total_blocks = self.geometry.gpu_block_budget(
            machine.params.gpu_memory_bytes, reserved_bytes=config.reserve_bytes
        )
        if total_blocks <= 0:
            raise ValueError("model leaves no GPU room for KV cache")
        self.blocks = BlockManager(total_blocks)
        machine.gpu.alloc("weights", config.spec.total_bytes)
        machine.gpu.alloc("kv-pool", total_blocks * self.geometry.block_bytes)

        self.state = SchedulerState()
        self._future = sorted(
            (SequenceGroup(request=r) for r in config.requests),
            key=lambda g: g.request.arrival_time,
        )
        # Reusable host buffers for the per-iteration control traffic.
        self._token_in = machine.host_memory.allocate(4096, "tokens.in", b"\x01" * 8)
        self._token_out = machine.host_memory.allocate(4096, "tokens.out", b"\x02" * 8)

        self.swap_out_count = 0
        self.swap_in_count = 0
        self.iterations = 0
        self.result: Optional[VllmResult] = None

    # -- public API -------------------------------------------------------------

    def run(self) -> VllmResult:
        self.machine.sim.process(self._main())
        self.machine.run()
        if self.result is None:
            raise RuntimeError("vLLM run did not complete")
        return self.result

    # -- engine loop ---------------------------------------------------------------

    def _main(self):
        sim = self.machine.sim
        start = sim.now
        while not self._all_done():
            if sim.now - start > self.config.max_sim_time:
                break
            self._admit_arrivals()
            step_start = sim.now
            made_progress = yield from self._iteration()
            if made_progress:
                # One scheduler step on the "serving" telemetry lane.
                sim.tracer.record("serving.vllm", "step", step_start, sim.now)
            if not made_progress:
                next_arrival = self._next_arrival_time()
                if next_arrival is None:
                    break  # Nothing running and nothing coming.
                yield sim.timeout(max(next_arrival - sim.now, 1e-6))
        self._finalize(sim.now - start)

    def _iteration(self):
        """One scheduler step; returns False when there was no work."""
        state = self.state
        geometry = self.geometry

        swapped_in = self._schedule_swap_ins()
        prefill_groups = self._schedule_admissions()
        if not state.running:
            return False
        self.iterations += 1

        # Block growth for this decode step; preempt until it fits.
        yield from self._make_room()

        # Newly admitted prompts go up as small transfers (decode-step
        # inputs live on the GPU — only fresh prompt tokens cross the
        # bus host→device).
        for group in prefill_groups:
            self.runtime.memcpy_h2d(
                MemoryChunk(self._token_in.addr, max(4 * group.request.prompt_len, _PAYLOAD_BYTES),
                            b"\x01" * _PAYLOAD_BYTES, "tokens.in")
            )
        # The batch boundary: everything must be on-device before the
        # step's kernels run (cudaDeviceSynchronize in the paper).
        yield self.runtime.synchronize()
        for group, region in swapped_in:
            # The group may have been re-preempted meanwhile (and own a
            # NEW region); free exactly the region this swap-in consumed.
            self.machine.host_memory.free(region)
            if group.swap_region is region:
                group.swap_region = None

        work = self._step_work(prefill_groups)
        yield self.machine.gpu.compute(work.flops, work.bytes_touched, layers=work.layers)

        # Sampled tokens come back as a small transfer (not waited on).
        self.runtime.memcpy_d2h(
            MemoryChunk(self._token_out.addr, max(4 * state.running_seqs, _PAYLOAD_BYTES),
                        b"\x02" * _PAYLOAD_BYTES, "tokens.out")
        )

        self._advance_generation()
        return True

    # -- scheduling phases ---------------------------------------------------------

    def _admit_arrivals(self) -> None:
        now = self.machine.sim.now
        while self._future and self._future[0].request.arrival_time <= now:
            self.state.waiting.append(self._future.pop(0))

    def _next_arrival_time(self) -> Optional[float]:
        if self._future:
            return self._future[0].request.arrival_time
        return None

    def _schedule_swap_ins(self):
        """Resume swapped groups LIFO while their blocks fit.

        Returns ``(group, region)`` pairs; the regions are freed after
        the batch's synchronization barrier lands the data on-device.
        """
        resumed = []
        state = self.state
        watermark = int(self.blocks.total_blocks * self.config.resume_watermark)
        while state.swapped:
            group = state.swapped[-1]
            needed = group.blocks_held(self.geometry)
            if not self.blocks.can_allocate(needed + watermark):
                break
            if state.running_seqs + group.request.parallel_n > self.config.max_num_seqs:
                break
            state.swapped.pop()
            self.blocks.allocate(group.owner, needed)
            region = group.swap_region
            self._issue_swap_in(group)
            group.state = GroupState.RUNNING
            state.running.append(group)
            resumed.append((group, region))
        return resumed

    def _schedule_admissions(self) -> List[SequenceGroup]:
        """FCFS admission of waiting groups (prefill this iteration)."""
        admitted: List[SequenceGroup] = []
        state = self.state
        while state.waiting and not state.swapped:
            group = state.waiting[0]
            needed = group.blocks_held(self.geometry)
            if not self.blocks.can_allocate(needed):
                break
            if state.running_seqs + group.request.parallel_n > self.config.max_num_seqs:
                break
            state.waiting.pop(0)
            self.blocks.allocate(group.owner, needed)
            group.state = GroupState.RUNNING
            group.first_schedule_time = self.machine.sim.now
            state.running.append(group)
            admitted.append(group)
        return admitted

    def _make_room(self):
        """Preempt (swap out) until this step's block growth fits."""
        state = self.state
        while True:
            growth = sum(g.step_block_growth(self.geometry) for g in state.running)
            if self.blocks.can_allocate(growth) or len(state.running) <= 1:
                break
            victim = state.pick_victim()
            if victim is None:
                break
            yield from self._swap_out(victim)
        # Grant the growth now; the compute step will fill the blocks.
        growth = sum(g.step_block_growth(self.geometry) for g in state.running)
        for group in state.running:
            self.blocks.allocate(group.owner, group.step_block_growth(self.geometry))
        return growth

    # -- swapping -----------------------------------------------------------------------

    def _swap_out(self, group: SequenceGroup):
        state = self.state
        state.running.remove(group)
        nbytes = group.kv_bytes(self.geometry)
        group.swap_epoch += 1
        tag = f"kv.{group.owner}.e{group.swap_epoch}"
        payload = self._rng.fork(tag).bytes(_PAYLOAD_BYTES)
        region = self.machine.host_memory.allocate(nbytes, tag=tag)
        group.swap_region = region
        # Seed the GPU-side functional contents so the D2H carries
        # deterministic bytes that the later swap-in must reproduce.
        self.machine.gpu._contents[tag] = payload
        handle = self.runtime.memcpy_d2h(MemoryChunk(region.addr, nbytes, payload, tag))
        yield handle.api_done
        self.blocks.free_owner(group.owner)
        group.state = GroupState.SWAPPED
        state.swapped.append(group)
        self.swap_out_count += 1

    def _issue_swap_in(self, group: SequenceGroup) -> TransferHandle:
        region = group.swap_region
        if region is None:
            raise RuntimeError(f"{group.owner} swapped without a region")
        chunk = self.machine.host_memory.chunk_at(region.addr)
        handle = self.runtime.memcpy_h2d(chunk)
        self.swap_in_count += 1
        return handle

    # -- compute & progress ------------------------------------------------------------------

    def _step_work(self, prefill_groups: List[SequenceGroup]):
        from ...models import LayerWork

        prefill_tokens = sum(g.request.prompt_len for g in prefill_groups)
        decode_groups = [g for g in self.state.running if g not in prefill_groups]
        decode_seqs = sum(g.request.parallel_n for g in decode_groups)
        flops = 0.0
        bytes_touched = 0.0
        if prefill_tokens:
            w = self.cost.prefill(prefill_tokens)
            flops += w.flops
            bytes_touched += w.bytes_touched
        if decode_seqs:
            ctx = mean([float(g.context_len()) for g in decode_groups])
            w = self.cost.decode_step(decode_seqs, ctx)
            flops += w.flops
            bytes_touched += w.bytes_touched
        return LayerWork(flops, bytes_touched, layers=self.config.spec.n_layers)

    def _advance_generation(self) -> None:
        now = self.machine.sim.now
        still_running: List[SequenceGroup] = []
        for group in self.state.running:
            group.generated += 1
            if group.done:
                group.state = GroupState.FINISHED
                group.finish_time = now
                self.blocks.free_owner(group.owner)
                self.state.finished.append(group)
            else:
                still_running.append(group)
        self.state.running = still_running

    # -- termination ------------------------------------------------------------------------------

    def _all_done(self) -> bool:
        state = self.state
        return not (self._future or state.waiting or state.running or state.swapped)

    def _finalize(self, elapsed: float) -> None:
        latencies = [g.normalized_latency() for g in self.state.finished]
        self.result = VllmResult(
            normalized_latencies=latencies,
            elapsed=elapsed,
            swap_out_count=self.swap_out_count,
            swap_in_count=self.swap_in_count,
            finished=len(self.state.finished),
        )
