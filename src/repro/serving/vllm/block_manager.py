"""Paged KV-cache block accounting (vLLM-style).

Tracks how many fixed-size KV blocks each sequence group holds on the
GPU. Only counts matter for the swap behaviour (vLLM's block *tables*
map logical to physical blocks; the pressure dynamics depend purely on
the counts), so the manager is a checked counting allocator with an
owner index.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["BlockManager", "BlockAllocationError"]


class BlockAllocationError(RuntimeError):
    """An allocation was attempted that the manager cannot satisfy."""


class BlockManager:
    """Counting allocator over a fixed GPU block budget."""

    def __init__(self, total_blocks: int) -> None:
        if total_blocks < 0:
            raise ValueError("total_blocks must be non-negative")
        self.total_blocks = total_blocks
        self._allocations: Dict[str, int] = {}
        self.peak_used = 0

    @property
    def used_blocks(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.used_blocks

    def owned_by(self, owner: str) -> int:
        return self._allocations.get(owner, 0)

    def can_allocate(self, n_blocks: int) -> bool:
        return n_blocks <= self.free_blocks

    def allocate(self, owner: str, n_blocks: int) -> None:
        """Grant ``n_blocks`` more blocks to ``owner``."""
        if n_blocks < 0:
            raise ValueError("n_blocks must be non-negative")
        if not self.can_allocate(n_blocks):
            raise BlockAllocationError(
                f"{owner}: need {n_blocks}, free {self.free_blocks}"
            )
        self._allocations[owner] = self._allocations.get(owner, 0) + n_blocks
        self.peak_used = max(self.peak_used, self.used_blocks)

    def free_owner(self, owner: str) -> int:
        """Release everything ``owner`` holds; returns blocks freed."""
        return self._allocations.pop(owner, 0)
