"""Sequence groups and the continuous-batching scheduler state.

A :class:`SequenceGroup` is one request with ``parallel_n`` output
sequences sharing the prompt KV (vLLM's parallel sampling — the
decoding policy the paper configures with n = 2/4/6). The scheduler
implements vLLM's preemption-by-swapping: under block pressure the
most recently arrived running group is swapped out in full
(request-wise swapping), and swapped groups are resumed most-recent
first — the LIFO pattern of Figure 5b.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ...hw.memory import Region
from ...models import KvGeometry
from ...workloads import Request

__all__ = ["GroupState", "SequenceGroup", "SchedulerState"]


class GroupState(enum.Enum):
    WAITING = "waiting"
    RUNNING = "running"
    SWAPPED = "swapped"
    FINISHED = "finished"


@dataclass
class SequenceGroup:
    """One request's scheduling state."""

    request: Request
    state: GroupState = GroupState.WAITING
    #: Tokens generated so far by each of the parallel sequences
    #: (they advance in lock-step — one step = one token each).
    generated: int = 0
    #: Host region holding the group's KV while swapped out.
    swap_region: Optional[Region] = None
    swap_epoch: int = 0
    finish_time: Optional[float] = None
    first_schedule_time: Optional[float] = None

    @property
    def owner(self) -> str:
        return f"req{self.request.request_id}"

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_len

    def blocks_held(self, geometry: KvGeometry) -> int:
        """GPU blocks the group occupies at its current progress."""
        prompt = geometry.blocks_for_tokens(self.request.prompt_len)
        per_seq = geometry.blocks_for_tokens(max(self.generated, 1))
        return prompt + self.request.parallel_n * per_seq

    def blocks_after_step(self, geometry: KvGeometry) -> int:
        prompt = geometry.blocks_for_tokens(self.request.prompt_len)
        per_seq = geometry.blocks_for_tokens(self.generated + 1)
        return prompt + self.request.parallel_n * per_seq

    def step_block_growth(self, geometry: KvGeometry) -> int:
        """New blocks this decode step will require."""
        return self.blocks_after_step(geometry) - self.blocks_held(geometry)

    def kv_bytes(self, geometry: KvGeometry) -> int:
        """Bytes moved when this group is swapped (all its blocks)."""
        return self.blocks_held(geometry) * geometry.block_bytes

    def context_len(self) -> int:
        return self.request.prompt_len + self.generated

    def normalized_latency(self) -> float:
        """(finish − arrival) / output tokens — the paper's metric."""
        if self.finish_time is None:
            raise ValueError("group not finished")
        return (self.finish_time - self.request.arrival_time) / self.request.output_len


@dataclass
class SchedulerState:
    """The three queues of the continuous-batching scheduler."""

    waiting: List[SequenceGroup] = field(default_factory=list)
    running: List[SequenceGroup] = field(default_factory=list)
    #: Stack of preempted groups; resumed LIFO (top first).
    swapped: List[SequenceGroup] = field(default_factory=list)
    finished: List[SequenceGroup] = field(default_factory=list)

    @property
    def running_seqs(self) -> int:
        return sum(g.request.parallel_n for g in self.running)

    def pick_victim(self) -> Optional[SequenceGroup]:
        """vLLM preempts the lowest-priority running group — under
        FCFS priority, the most recently arrived."""
        candidates = [g for g in self.running if g.generated > 0]
        if not candidates:
            candidates = self.running
        if not candidates:
            return None
        return max(candidates, key=lambda g: (g.request.arrival_time, g.request.request_id))
