"""PEFT-like LoRA fine-tuning with DeepSpeed-style model offloading.

Reproduces the substrate of the paper's case study 3 (§3) and the
Fig. 3c / Fig. 7 fine-tuning experiments: base-model weights are
offloaded to host memory (ZeRO-Offload keeps them there to free GPU
memory for activations and larger batches) and streamed in layer by
layer — forward in layer order, backward in reverse — the repetitive
pattern of Figure 5a with period 2·L.

LoRA keeps the *trainable* state tiny: only the adapter gradients
travel device→host and the updated adapters travel back each step.
Crucially for PipeLLM's validator, the adapter regions are *written*
by the optimizer every step, so any speculative ciphertext staged from
them is invalidated through the page-fault path — base weights, by
contrast, are read-only and always safely pre-encryptable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cc.api import DeviceRuntime, TransferHandle
from ..cc.machine import Machine
from ..hw.memory import MemoryChunk, Region
from ..models import ModelSpec, TransformerCostModel
from ..sim import SeededRng
from ..workloads import FineTuneBatch

__all__ = ["PeftConfig", "PeftEngine", "PeftResult"]

_PREFETCH_DEPTH = 2
_PAYLOAD_BYTES = 24

#: Backward pass costs roughly 2× the forward GEMMs.
_BACKWARD_FACTOR = 2.0


@dataclass
class PeftConfig:
    """One LoRA fine-tuning test case."""

    spec: ModelSpec
    batches: List[FineTuneBatch]
    #: LoRA rank (adapter size: 2·r·h per projection, 4 projections).
    lora_rank: int = 16
    #: How many layers stay resident on the GPU (DeepSpeed offloads
    #: the rest to make room for activations; None = computed from
    #: the activation footprint).
    resident_layers: Optional[int] = None
    #: Bytes of GPU memory reserved per batch token for activations.
    activation_bytes_per_token: int = 1 << 20
    seed: int = 1


@dataclass
class PeftResult:
    """Training-throughput summary of one run."""

    config_label: str
    total_tokens: int
    steps: int
    elapsed: float
    offloaded_layers: int

    @property
    def throughput(self) -> float:
        """Training tokens per second."""
        return self.total_tokens / self.elapsed if self.elapsed > 0 else 0.0


class PeftEngine:
    """Layer-streaming forward/backward fine-tuning loop."""

    def __init__(self, machine: Machine, runtime: DeviceRuntime, config: PeftConfig) -> None:
        if not config.batches:
            raise ValueError("config.batches must not be empty")
        self.machine = machine
        self.runtime = runtime
        self.config = config
        self.cost = TransformerCostModel(config.spec)
        self._rng = SeededRng(config.seed)
        spec = config.spec

        resident = (
            config.resident_layers
            if config.resident_layers is not None
            else self._compute_resident_layers()
        )
        self.n_resident = max(0, min(spec.n_layers, resident))
        self.offloaded = list(range(self.n_resident, spec.n_layers))
        runtime.hint_weight_chunk_size(spec.layer_bytes)

        self._regions: Dict[int, Region] = {}
        for layer in self.offloaded:
            self._regions[layer] = machine.host_memory.allocate(
                spec.layer_bytes,
                tag=f"{spec.name}.ft.layer.{layer}",
                payload=self._rng.bytes(_PAYLOAD_BYTES),
            )
        # Host-side LoRA adapter state, rewritten by the optimizer each
        # step (exercises the write-fault invalidation path).
        self.adapter_bytes = int(8 * config.lora_rank * spec.hidden * spec.n_layers * 2)
        self._adapters = machine.host_memory.allocate(
            max(self.adapter_bytes, 4096), tag="lora.adapters", payload=b"adapters-v0"
        )

        self.swap_in_count = 0
        self.result: Optional[PeftResult] = None

    def _compute_resident_layers(self) -> int:
        spec = self.config.spec
        mean_tokens = sum(b.total_tokens for b in self.config.batches) / len(self.config.batches)
        activation_bytes = int(mean_tokens * self.config.activation_bytes_per_token)
        budget = (
            self.machine.params.gpu_memory_bytes
            - activation_bytes
            - spec.embedding_bytes
            - _PREFETCH_DEPTH * spec.layer_bytes
        )
        return int(budget // spec.layer_bytes)

    # -- public API ------------------------------------------------------------

    def run(self) -> PeftResult:
        self.machine.sim.process(self._main())
        self.machine.run()
        if self.result is None:
            raise RuntimeError("PEFT run did not complete")
        return self.result

    # -- training loop ----------------------------------------------------------

    def _step_layer_sequence(self) -> List[int]:
        """Offloaded-layer loads of one step: forward then backward."""
        forward = [l for l in range(self.config.spec.n_layers) if l in self._regions]
        return forward + list(reversed(forward))

    def _main(self):
        config = self.config
        start = self.machine.sim.now
        per_step = self._step_layer_sequence()
        schedule: List[int] = []
        for _ in config.batches:
            schedule.extend(per_step)

        inflight: Dict[int, TransferHandle] = {}
        cursor = 0

        def issue_prefetch():
            nonlocal cursor
            while cursor < len(schedule) and len(inflight) < _PREFETCH_DEPTH:
                layer = schedule[cursor]
                if layer in inflight:
                    break
                region = self._regions[layer]
                chunk = self.machine.host_memory.chunk_at(region.addr)
                handle = self.runtime.memcpy_h2d(chunk)
                yield handle.api_done  # Blocks under CC: inline AES.
                inflight[layer] = handle
                cursor += 1

        for batch in config.batches:
            tokens = batch.total_tokens
            for phase, factor in (("forward", 1.0), ("backward", _BACKWARD_FACTOR)):
                layer_order = (
                    range(config.spec.n_layers)
                    if phase == "forward"
                    else range(config.spec.n_layers - 1, -1, -1)
                )
                phase_start = self.machine.sim.now
                for layer in layer_order:
                    if layer in self._regions:
                        yield from issue_prefetch()
                        handle = inflight.pop(layer, None)
                        if handle is None:
                            region = self._regions[layer]
                            chunk = self.machine.host_memory.chunk_at(region.addr)
                            handle = self.runtime.memcpy_h2d(chunk)
                            yield handle.api_done
                        yield handle.complete
                        self.swap_in_count += 1
                    work = self.cost.prefill_layer(tokens)
                    compute_done = self.machine.gpu.compute(
                        factor * work.flops, work.bytes_touched, layers=1
                    )
                    yield from issue_prefetch()
                    yield compute_done
                # One forward/backward phase on the "serving" lane.
                self.machine.sim.tracer.record(
                    "serving.peft", phase, phase_start, self.machine.sim.now
                )

            # Optimizer step: adapter gradients come down, updated
            # adapters are written on the CPU (invalidating any staged
            # ciphertext covering them), then go back up.
            grad_chunk = MemoryChunk(
                self._adapters.addr, max(self.adapter_bytes, 4096),
                b"grads", "lora.grads",
            )
            handle = self.runtime.memcpy_d2h(grad_chunk)
            yield handle.api_done
            yield self.runtime.synchronize()
            yield self.runtime.cpu_access(self._adapters.addr)
            self.machine.host_memory.write(
                self._adapters.addr, f"adapters-b{batch.batch_id}".encode()
            )
            up = self.machine.host_memory.chunk_at(self._adapters.addr)
            handle = self.runtime.memcpy_h2d(up)
            yield handle.complete

        elapsed = self.machine.sim.now - start
        total_tokens = sum(b.total_tokens for b in config.batches)
        self.result = PeftResult(
            config_label=f"{config.spec.name} lora-r{config.lora_rank}",
            total_tokens=total_tokens,
            steps=len(config.batches),
            elapsed=elapsed,
            offloaded_layers=len(self.offloaded),
        )
