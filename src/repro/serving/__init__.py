"""LLM system substrates: FlexGen-, vLLM- and PEFT-like engines."""

from .flexgen import FlexGenConfig, FlexGenEngine, FlexGenResult
from .layerwise import LayerwiseConfig, LayerwiseKvEngine, LayerwiseResult
from .peft import PeftConfig, PeftEngine, PeftResult
from .vllm import VllmConfig, VllmEngine, VllmResult
from .zero import ZeroOffloadConfig, ZeroOffloadEngine, ZeroOffloadResult

__all__ = [
    "FlexGenConfig",
    "FlexGenEngine",
    "FlexGenResult",
    "LayerwiseConfig",
    "LayerwiseKvEngine",
    "LayerwiseResult",
    "PeftConfig",
    "PeftEngine",
    "PeftResult",
    "VllmConfig",
    "VllmEngine",
    "VllmResult",
    "ZeroOffloadConfig",
    "ZeroOffloadEngine",
    "ZeroOffloadResult",
]
