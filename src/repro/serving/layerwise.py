"""Layer-wise KV-cache swapping — the FIFO pattern of Figure 5 (§5.1).

The paper distinguishes two KV swapping granularities: request-wise
(vLLM, LIFO — :mod:`repro.serving.vllm`) and *layer-wise*, where a
throughput-oriented engine keeps a huge batch alive by holding most of
the KV cache in host memory and streaming each layer's KV in for its
computation and back out afterwards: "applications swap out KV cache
of each layer in order, and then retrieve them in the same order, thus
the pattern is FIFO". This engine exercises exactly that pattern end
to end.

Unlike weight streaming, layer KV is *rewritten every step* (each
decode appends a token's K/V to every layer), so the swap-in of step
``t`` must carry the bytes written back at step ``t-1``. This makes
the engine a sharp test of staleness handling: speculative ciphertext
staged before the write-back is invalid, and the runtime must notice
through the page-protection path rather than ship old KV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cc.api import DeviceRuntime
from ..cc.machine import Machine
from ..hw.memory import MemoryChunk, Region
from ..models import ModelSpec, TransformerCostModel
from ..workloads import SyntheticShape

__all__ = ["LayerwiseConfig", "LayerwiseKvEngine", "LayerwiseResult"]

_PAYLOAD_BYTES = 16


@dataclass
class LayerwiseConfig:
    """One layer-wise KV-swapping test case."""

    spec: ModelSpec
    shape: SyntheticShape
    batch_size: int
    #: How many layers' KV stay resident on the GPU (the rest stream).
    resident_kv_layers: Optional[int] = None
    #: GPU bytes reserved for activations/workspace.
    reserve_bytes: int = 4 << 30

    def kv_layer_bytes(self, context: int) -> int:
        """KV bytes of ONE layer for the whole batch at a context."""
        return int(self.batch_size * context * self.spec.kv_bytes_per_token_layer())

    def compute_resident(self, gpu_memory_bytes: int) -> int:
        max_context = self.shape.prompt_len + self.shape.output_len
        per_layer = self.kv_layer_bytes(max_context)
        budget = (
            gpu_memory_bytes
            - self.spec.total_bytes
            - self.reserve_bytes
            - 2 * per_layer  # double-buffer for the streamed layer
        )
        if budget < 0:
            return 0
        return max(0, min(self.spec.n_layers, int(budget // per_layer)))


@dataclass
class LayerwiseResult:
    config_label: str
    generated_tokens: int
    elapsed: float
    streamed_layers: int
    swap_in_count: int

    @property
    def throughput(self) -> float:
        return self.generated_tokens / self.elapsed if self.elapsed > 0 else 0.0


class LayerwiseKvEngine:
    """Decode loop streaming per-layer KV in FIFO order."""

    def __init__(self, machine: Machine, runtime: DeviceRuntime, config: LayerwiseConfig) -> None:
        self.machine = machine
        self.runtime = runtime
        self.config = config
        self.cost = TransformerCostModel(config.spec)
        spec = config.spec

        resident = (
            config.resident_kv_layers
            if config.resident_kv_layers is not None
            else config.compute_resident(machine.params.gpu_memory_bytes)
        )
        self.n_resident = max(0, min(spec.n_layers, resident))
        self.streamed = list(range(self.n_resident, spec.n_layers))

        # One stable host region per streamed layer. The logical size
        # is the layer's KV at maximum context (a fixed-size arena, as
        # real engines preallocate), so the classifier sees one stable
        # chunk size — which we register as the KV hint.
        max_context = config.shape.prompt_len + config.shape.output_len
        self.kv_bytes = config.kv_layer_bytes(max_context)
        runtime.hint_kv_block_size(self.kv_bytes)
        self._regions: Dict[int, Region] = {}
        for layer in self.streamed:
            self._regions[layer] = machine.host_memory.allocate(
                self.kv_bytes, tag=f"kv.layer.{layer}",
                payload=self._payload(layer, step=-1),
            )

        self.swap_in_count = 0
        self.result: Optional[LayerwiseResult] = None

    @staticmethod
    def _payload(layer: int, step: int) -> bytes:
        return f"kv-L{layer}-s{step}".encode()[:_PAYLOAD_BYTES]

    # -- public API ---------------------------------------------------------

    def run(self) -> LayerwiseResult:
        self.machine.sim.process(self._main())
        self.machine.run()
        if self.result is None:
            raise RuntimeError("layer-wise run did not complete")
        return self.result

    # -- decode loop ------------------------------------------------------------

    def _main(self):
        config = self.config
        sim = self.machine.sim
        start = sim.now

        for step in range(config.shape.output_len):
            context = config.shape.prompt_len + step
            for layer in range(config.spec.n_layers):
                streamed = layer in self._regions
                if streamed:
                    region = self._regions[layer]
                    yield self.runtime.cpu_access(region.addr)
                    chunk = self.machine.host_memory.chunk_at(region.addr)
                    handle = self.runtime.memcpy_h2d(chunk)
                    yield handle.api_done
                    yield handle.complete
                    self.swap_in_count += 1
                work = self.cost.decode_layer(config.batch_size, context)
                yield self.machine.gpu.compute(work.flops, work.bytes_touched, layers=1)
                if streamed:
                    # Write the grown KV back out — FIFO: layer order.
                    region = self._regions[layer]
                    self.machine.gpu._contents[region.tag] = self._payload(layer, step)
                    out = self.runtime.memcpy_d2h(
                        MemoryChunk(region.addr, self.kv_bytes,
                                    self._payload(layer, step), region.tag)
                    )
                    yield out.api_done
            yield self.runtime.synchronize()

        self.result = LayerwiseResult(
            config_label=f"{config.spec.name} layerwise {config.shape.label}",
            generated_tokens=config.batch_size * config.shape.output_len,
            elapsed=sim.now - start,
            streamed_layers=len(self.streamed),
            swap_in_count=self.swap_in_count,
        )
