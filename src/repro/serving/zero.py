"""ZeRO-Offload-style full fine-tuning (DeepSpeed, §2.1).

The paper's PEFT case study fine-tunes LoRA adapters: the streamed
base weights are read-only, PipeLLM's favorite case. DeepSpeed's
ZeRO-Offload also supports *full* fine-tuning — fp16 weights stream to
the GPU per layer, gradients stream back per layer, and a CPU-side
Adam step updates the master weights between steps.

That makes the weight stream **read-write**: every host weight buffer
is rewritten once per step by the optimizer. For PipeLLM this is the
adversarial case for weight speculation:

* ciphertext staged *before* the optimizer step is stale and must die
  through the page-protection fault (§5.2), never ship;
* ciphertext staged *after* the update is valid for the whole next
  step — so prediction still wins, it just must re-encrypt once per
  layer per step;
* the gradient stream doubles the D2H volume, loading the
  asynchronous decryptor and the decryption thread pool.

The engine mirrors :class:`~repro.serving.peft.PeftEngine`'s structure
(forward layer order, backward reversed, prefetch window) plus the
per-layer gradient swap-outs and the CPU optimizer phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cc.api import DeviceRuntime, TransferHandle
from ..cc.machine import Machine
from ..hw.memory import MemoryChunk, Region
from ..models import ModelSpec, TransformerCostModel
from ..sim import SeededRng
from ..workloads import FineTuneBatch

__all__ = ["ZeroOffloadConfig", "ZeroOffloadEngine", "ZeroOffloadResult"]

_PREFETCH_DEPTH = 2
_PAYLOAD_BYTES = 20
_BACKWARD_FACTOR = 2.0

#: CPU Adam step throughput over the fp32 master weights (B/s): reads
#: master+grad+two moments, writes master+moments — DDR-bound.
_OPTIMIZER_BANDWIDTH = 20e9


@dataclass
class ZeroOffloadConfig:
    """One full fine-tuning test case."""

    spec: ModelSpec
    batches: List[FineTuneBatch]
    #: Layers resident on the GPU; the rest stream per pass.
    resident_layers: int = 0
    seed: int = 1


@dataclass
class ZeroOffloadResult:
    config_label: str
    total_tokens: int
    steps: int
    elapsed: float
    offloaded_layers: int

    @property
    def throughput(self) -> float:
        return self.total_tokens / self.elapsed if self.elapsed > 0 else 0.0


class ZeroOffloadEngine:
    """Full fine-tuning with weight + gradient streaming."""

    def __init__(self, machine: Machine, runtime: DeviceRuntime, config: ZeroOffloadConfig) -> None:
        if not config.batches:
            raise ValueError("config.batches must not be empty")
        self.machine = machine
        self.runtime = runtime
        self.config = config
        self.cost = TransformerCostModel(config.spec)
        self._rng = SeededRng(config.seed)
        spec = config.spec

        self.n_resident = max(0, min(spec.n_layers, config.resident_layers))
        self.offloaded = list(range(self.n_resident, spec.n_layers))
        runtime.hint_weight_chunk_size(spec.layer_bytes)

        #: Host fp16 weights per offloaded layer — REWRITTEN each step.
        self._weights: Dict[int, Region] = {}
        #: Host gradient buffers per offloaded layer (D2H destinations).
        self._grads: Dict[int, Region] = {}
        for layer in self.offloaded:
            self._weights[layer] = machine.host_memory.allocate(
                spec.layer_bytes, tag=f"{spec.name}.zero.w.{layer}",
                payload=self._weight_payload(layer, step=-1),
            )
            self._grads[layer] = machine.host_memory.allocate(
                spec.layer_bytes, tag=f"{spec.name}.zero.g.{layer}"
            )

        self.swap_in_count = 0
        self.result: Optional[ZeroOffloadResult] = None

    @staticmethod
    def _weight_payload(layer: int, step: int) -> bytes:
        return f"w-L{layer}-s{step}".encode()[:_PAYLOAD_BYTES]

    # -- public API ---------------------------------------------------------

    def run(self) -> ZeroOffloadResult:
        self.machine.sim.process(self._main())
        self.machine.run()
        if self.result is None:
            raise RuntimeError("ZeRO-Offload run did not complete")
        return self.result

    # -- training loop ----------------------------------------------------------

    def _main(self):
        config = self.config
        sim = self.machine.sim
        start = sim.now
        spec = config.spec

        inflight: Dict[int, TransferHandle] = {}
        schedule: List[int] = []
        per_step = self.offloaded + list(reversed(self.offloaded))
        for _ in config.batches:
            schedule.extend(per_step)
        cursor = 0

        def issue_prefetch():
            nonlocal cursor
            while cursor < len(schedule) and len(inflight) < _PREFETCH_DEPTH:
                layer = schedule[cursor]
                if layer in inflight:
                    break
                region = self._weights[layer]
                yield self.runtime.cpu_access(region.addr)
                chunk = self.machine.host_memory.chunk_at(region.addr)
                handle = self.runtime.memcpy_h2d(chunk)
                yield handle.api_done
                inflight[layer] = handle
                cursor += 1

        for step_index, batch in enumerate(config.batches):
            tokens = batch.total_tokens
            # Forward, then backward with per-layer gradient swap-outs.
            for phase, factor in (("forward", 1.0), ("backward", _BACKWARD_FACTOR)):
                order = (
                    range(spec.n_layers)
                    if phase == "forward"
                    else range(spec.n_layers - 1, -1, -1)
                )
                for layer in order:
                    if layer in self._weights:
                        yield from issue_prefetch()
                        handle = inflight.pop(layer, None)
                        if handle is None:
                            region = self._weights[layer]
                            yield self.runtime.cpu_access(region.addr)
                            chunk = self.machine.host_memory.chunk_at(region.addr)
                            handle = self.runtime.memcpy_h2d(chunk)
                            yield handle.api_done
                        yield handle.complete
                        self.swap_in_count += 1
                    work = self.cost.prefill_layer(tokens)
                    compute = self.machine.gpu.compute(
                        factor * work.flops, work.bytes_touched, layers=1
                    )
                    yield from issue_prefetch()
                    yield compute
                    if phase == "backward" and layer in self._grads:
                        grad = self._grads[layer]
                        tag = grad.tag
                        self.machine.gpu._contents[tag] = f"g-L{layer}-s{step_index}".encode()
                        out = self.runtime.memcpy_d2h(
                            MemoryChunk(grad.addr, spec.layer_bytes,
                                        self.machine.gpu._contents[tag], tag)
                        )
                        yield out.api_done

            # CPU optimizer phase: wait for gradients, run Adam over the
            # master weights, rewrite the fp16 weight buffers in place.
            yield self.runtime.synchronize()
            optimizer_bytes = 0
            for layer in self.offloaded:
                yield self.runtime.cpu_access(self._grads[layer].addr)
                optimizer_bytes += 6 * spec.layer_bytes  # fp32 master+moments r/w
            yield sim.timeout(optimizer_bytes / _OPTIMIZER_BANDWIDTH)
            for layer in self.offloaded:
                # The in-place update: staged weight ciphertext for this
                # layer dies here through the write fault.
                self.machine.host_memory.write(
                    self._weights[layer].addr, self._weight_payload(layer, step_index)
                )

        self.result = ZeroOffloadResult(
            config_label=f"{spec.name} zero-offload",
            total_tokens=sum(b.total_tokens for b in config.batches),
            steps=len(config.batches),
            elapsed=sim.now - start,
            offloaded_layers=len(self.offloaded),
        )
