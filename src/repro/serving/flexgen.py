"""FlexGen-like throughput-oriented inference with model offloading.

Reproduces the substrate of the paper's case study 1 (§3) and the
Fig. 3a / Fig. 7 experiments: a model larger than GPU memory is served
by keeping a prefix of layers resident and streaming the rest from
host memory every pass, in a fixed layer order — the *repetitive*
swap pattern of Figure 5a. The engine overlaps the next layer's load
with the current layer's compute (double buffering), exactly the
structure that makes CC's inline encryption catastrophic: the
``cudaMemcpyAsync`` call itself blocks on the CPU AES, destroying the
overlap.

The engine is written purely against :class:`DeviceRuntime`, so the
same code runs on "w/o CC", "CC" and PipeLLM machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cc.api import DeviceRuntime, TransferHandle
from ..cc.machine import Machine
from ..hw.memory import Region
from ..models import ModelSpec, TransformerCostModel
from ..sim import SeededRng
from ..workloads import SyntheticShape

__all__ = ["FlexGenConfig", "FlexGenEngine", "FlexGenResult"]

#: In-flight prefetched layer loads (FlexGen double buffering).
_PREFETCH_DEPTH = 2

#: Functional payload bytes per streamed layer (timing uses the
#: logical layer size; the payload only feeds the crypto layer).
_PAYLOAD_BYTES = 24


@dataclass
class FlexGenConfig:
    """One FlexGen test case."""

    spec: ModelSpec
    shape: SyntheticShape
    batch_size: int
    n_requests: int
    #: GPU bytes reserved for KV cache, activations and workspace
    #: (the paper pins all KV on the GPU for the offloading study).
    reserve_bytes: Optional[int] = None
    seed: int = 1

    def kv_bytes(self) -> int:
        tokens = self.shape.prompt_len + self.shape.output_len
        return int(self.batch_size * tokens * self.spec.kv_bytes_per_token())

    def resident_layers(self, gpu_memory_bytes: int) -> int:
        """Layers that fit on the GPU beside KV + workspace + 2 stream buffers."""
        reserve = self.reserve_bytes if self.reserve_bytes is not None else self.kv_bytes()
        budget = (
            gpu_memory_bytes
            - reserve
            - self.spec.embedding_bytes
            - _PREFETCH_DEPTH * self.spec.layer_bytes
        )
        resident = int(budget // self.spec.layer_bytes)
        return max(0, min(self.spec.n_layers, resident))


@dataclass
class FlexGenResult:
    """Throughput summary of one run."""

    config_label: str
    generated_tokens: int
    elapsed: float
    offloaded_layers: int
    swap_in_count: int

    @property
    def throughput(self) -> float:
        """Generated tokens per second (the paper's FlexGen metric)."""
        return self.generated_tokens / self.elapsed if self.elapsed > 0 else 0.0


class FlexGenEngine:
    """Layer-streaming batched generation over a DeviceRuntime."""

    def __init__(self, machine: Machine, runtime: DeviceRuntime, config: FlexGenConfig) -> None:
        self.machine = machine
        self.runtime = runtime
        self.config = config
        self.cost = TransformerCostModel(config.spec)
        self._rng = SeededRng(config.seed)
        spec = config.spec

        self.n_resident = config.resident_layers(machine.params.gpu_memory_bytes)
        self.offloaded = list(range(self.n_resident, spec.n_layers))
        runtime.hint_weight_chunk_size(spec.layer_bytes)

        # Host copies of the offloaded layers (read-only weights).
        self._regions: Dict[int, Region] = {}
        for layer in self.offloaded:
            payload = self._rng.bytes(_PAYLOAD_BYTES)
            self._regions[layer] = machine.host_memory.allocate(
                spec.layer_bytes, tag=f"{spec.name}.layer.{layer}", payload=payload
            )

        # Device-memory accounting for the resident part.
        machine.gpu.alloc("weights.resident", self.n_resident * spec.layer_bytes)
        machine.gpu.alloc("embeddings", spec.embedding_bytes)
        machine.gpu.alloc("kv+workspace", config.reserve_bytes or config.kv_bytes())
        machine.gpu.alloc("stream-buffers", _PREFETCH_DEPTH * spec.layer_bytes)

        self.swap_in_count = 0
        self.result: Optional[FlexGenResult] = None

    # -- public API -----------------------------------------------------------

    def run(self) -> FlexGenResult:
        """Execute the whole workload; returns the throughput summary."""
        self.machine.sim.process(self._main())
        self.machine.run()
        if self.result is None:
            raise RuntimeError("FlexGen run did not complete")
        return self.result

    # -- generation loop ----------------------------------------------------------

    def _passes(self) -> List[str]:
        """The pass schedule of one batch: 1 prefill + N-1 decode steps."""
        return ["prefill"] + ["decode"] * (self.config.shape.output_len - 1)

    def _main(self):
        config = self.config
        n_batches = -(-config.n_requests // config.batch_size)
        start = self.machine.sim.now

        # Flattened schedule of every offloaded-layer load in the run,
        # so prefetch can run ahead across pass and batch boundaries.
        schedule: List[int] = []
        passes_per_batch = len(self._passes())
        for _ in range(n_batches * passes_per_batch):
            schedule.extend(self.offloaded)

        inflight: Dict[int, TransferHandle] = {}
        cursor = 0

        def issue_prefetch():
            nonlocal cursor
            while cursor < len(schedule) and len(inflight) < _PREFETCH_DEPTH:
                layer = schedule[cursor]
                if layer in inflight:
                    break  # Same layer already in flight; wait for it.
                region = self._regions[layer]
                yield self.runtime.cpu_access(region.addr)
                chunk = self.machine.host_memory.chunk_at(region.addr)
                handle = self.runtime.memcpy_h2d(chunk)
                # The issuing thread blocks here under CC (inline AES);
                # this is precisely the overlap-killer of §3.
                yield handle.api_done
                inflight[layer] = handle
                cursor += 1

        for batch_index in range(n_batches):
            batch = min(config.batch_size, config.n_requests - batch_index * config.batch_size)
            for pass_index, pass_kind in enumerate(self._passes()):
                context = config.shape.prompt_len + pass_index
                pass_start = self.machine.sim.now
                for layer in range(config.spec.n_layers):
                    if layer in self.offloaded:
                        yield from issue_prefetch()
                        handle = inflight.pop(layer, None)
                        if handle is None:
                            # Prefetch fell behind (can happen right at
                            # startup); issue the load synchronously.
                            region = self._regions[layer]
                            chunk = self.machine.host_memory.chunk_at(region.addr)
                            handle = self.runtime.memcpy_h2d(chunk)
                            yield handle.api_done
                        # FlexGen waits on the stream event of this
                        # specific load (not a device-wide barrier), so
                        # its own prefetch pipeline keeps running.
                        yield handle.complete
                        self.swap_in_count += 1
                    work = self._layer_work(pass_kind, batch, context)
                    compute_done = self.machine.gpu.compute(
                        work.flops, work.bytes_touched, layers=1
                    )
                    # Keep the pipeline fed while the GPU computes.
                    yield from issue_prefetch()
                    yield compute_done
                # One model pass on the "serving" telemetry lane.
                self.machine.sim.tracer.record(
                    "serving.flexgen", pass_kind, pass_start, self.machine.sim.now
                )

        elapsed = self.machine.sim.now - start
        generated = config.n_requests * config.shape.output_len
        self.result = FlexGenResult(
            config_label=f"{config.spec.name} {config.shape.label}",
            generated_tokens=generated,
            elapsed=elapsed,
            offloaded_layers=len(self.offloaded),
            swap_in_count=self.swap_in_count,
        )

    def _layer_work(self, pass_kind: str, batch: int, context: int):
        if pass_kind == "prefill":
            return self.cost.prefill_layer(batch * self.config.shape.prompt_len)
        return self.cost.decode_layer(batch, context)
