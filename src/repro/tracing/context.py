"""Causal trace contexts and the span collector.

One serving request crosses many machines: the front end admits it,
the gateway queues and dispatches it, a replica prefills/decodes it
(possibly across a crash and a failover), and — under tensor
parallelism — inter-GPU hops bounce its activations through the CVM.
The per-machine :class:`~repro.telemetry.hub.TelemetryHub` sees each
leg as a flat lane; nothing ties the legs together.

A :class:`TraceContext` is the thread that does: a ``(trace_id,
span_id, parent_span_id)`` triple minted at the request's entry point
and propagated through every layer the request touches. Each layer
records :class:`CausalSpan`\\ s under its context, so one request
yields one causal span DAG (a tree of timed intervals rooted at the
request's end-to-end span) instead of per-machine fragments.

Identifiers are fully deterministic: ``trace_id`` derives from the
request id (``serve.req-3``, ``cluster.req-7``, ``<machine>.hop-12``)
and ``span_id`` is a per-trace counter — no wall clock, no
randomness, so two runs at one seed produce byte-identical DAGs.

The active :class:`TraceCollector` is discovered the same way the
telemetry hub discovers its recording session: a module-level stack
(:func:`collecting` / :func:`active_collector`) that instrumented
layers consult with one cheap call, keeping the no-tracing path free.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ROOT_PARENT",
    "TraceContext",
    "CausalSpan",
    "TraceCollector",
    "active_collector",
    "collecting",
]

#: Sentinel ``parent_span_id`` of a trace's root span.
ROOT_PARENT = -1


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span within one trace.

    Layers pass contexts, never spans: a context is immutable, cheap
    to thread through call chains and safe to stash on request
    objects that outlive the code that minted them.
    """

    trace_id: str
    span_id: int
    parent_span_id: int = ROOT_PARENT


@dataclass
class CausalSpan:
    """One timed interval of one request's causal journey.

    ``end`` is ``nan`` while the span is open; a span left open at
    the end of a run is *dangling* and fails the DAG closure check
    (see :func:`repro.tracing.critical_path.check_closure`).
    """

    trace_id: str
    span_id: int
    parent_span_id: int
    name: str
    #: Stage label driving fleet attribution (see ``STAGE_CLASSES``).
    stage: str
    #: Which machine/component recorded the span (hub label).
    machine: str
    start: float
    end: float = math.nan
    status: str = "ok"

    @property
    def open(self) -> bool:
        return math.isnan(self.end)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "stage": self.stage,
            "machine": self.machine,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }


class TraceCollector:
    """Accumulates the causal span DAGs of every traced request.

    One collector spans one run (all machines, all hubs); spans carry
    their machine label so the fleet view never loses locality. The
    collector is append-mostly: ``begin`` opens a span and returns
    the child context to propagate, ``end`` closes it, ``add``
    records an already-closed interval in one call.
    """

    def __init__(self) -> None:
        self.spans: List[CausalSpan] = []
        self._by_key: Dict[Tuple[str, int], CausalSpan] = {}
        self._next_span_id: Dict[str, int] = {}
        self._trace_order: List[str] = []

    # -- span lifecycle --------------------------------------------------

    def begin(
        self,
        parent: Optional[TraceContext],
        name: str,
        stage: str,
        machine: str,
        start: float,
        trace_id: Optional[str] = None,
    ) -> TraceContext:
        """Open one span; returns the context its children propagate.

        With ``parent=None`` this mints a new trace (``trace_id``
        required and must be unique); otherwise the span nests under
        the parent context within the parent's trace.
        """
        if parent is None:
            if not trace_id:
                raise ValueError("a root span needs an explicit trace_id")
            if trace_id in self._next_span_id:
                raise ValueError(f"trace {trace_id!r} already exists")
            self._next_span_id[trace_id] = 0
            self._trace_order.append(trace_id)
            parent_span_id = ROOT_PARENT
        else:
            trace_id = parent.trace_id
            parent_span_id = parent.span_id
            if trace_id not in self._next_span_id:
                raise ValueError(f"unknown trace {trace_id!r}")
        span_id = self._next_span_id[trace_id]
        self._next_span_id[trace_id] = span_id + 1
        span = CausalSpan(
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=parent_span_id,
            name=name,
            stage=stage,
            machine=machine,
            start=start,
        )
        self.spans.append(span)
        self._by_key[(trace_id, span_id)] = span
        return TraceContext(trace_id, span_id, parent_span_id)

    def start_trace(
        self, trace_id: str, name: str, stage: str, machine: str, start: float
    ) -> TraceContext:
        """Mint one new trace; sugar over ``begin(None, ...)``."""
        return self.begin(None, name, stage, machine, start, trace_id=trace_id)

    def end(self, ctx: TraceContext, end: float, status: str = "ok") -> None:
        """Close the span behind ``ctx``. Closing twice is an error —
        it would mean two layers both think they own the span."""
        span = self._by_key.get((ctx.trace_id, ctx.span_id))
        if span is None:
            raise KeyError(f"no span {ctx.span_id} in trace {ctx.trace_id!r}")
        if not span.open:
            raise ValueError(
                f"span {ctx.trace_id!r}/{ctx.span_id} already closed"
            )
        span.end = end
        span.status = status

    def add(
        self,
        parent: Optional[TraceContext],
        name: str,
        stage: str,
        machine: str,
        start: float,
        end: float,
        status: str = "ok",
        trace_id: Optional[str] = None,
    ) -> TraceContext:
        """Record one already-closed interval under ``parent``."""
        ctx = self.begin(parent, name, stage, machine, start, trace_id=trace_id)
        self.end(ctx, end, status=status)
        return ctx

    # -- telemetry-record adoption ---------------------------------------

    def adopt_record(self, record, machine: str = "") -> Optional[TraceContext]:
        """Materialize a completed hub lifecycle record as child spans.

        Called by :meth:`TelemetryHub.mark_complete` for records whose
        submission carried a bound trace context: the memcpy/hop
        becomes one ``transfer`` span under the bound parent, and the
        record's exact critical-path intervals become its stage
        children — so machine-level fidelity (encrypt/pcie/decrypt
        waits measured by the runtime's timed halves) flows into the
        causal DAG without re-instrumenting the runtime.
        """
        parent = record.trace
        if parent is None:
            return None
        name = f"{record.direction}:{record.kind or record.strategy or 'xfer'}"
        xfer = self.begin(
            parent, name, "transfer", machine, record.submit_time
        )
        for stage, start, end in record.stages:
            self.add(xfer, stage, stage, machine, start, end)
        self.end(xfer, record.complete_time)
        return xfer

    # -- queries ---------------------------------------------------------

    def trace_ids(self) -> List[str]:
        """Every trace minted, in creation order."""
        return list(self._trace_order)

    def trace(self, trace_id: str) -> List[CausalSpan]:
        """All spans of one trace, in creation order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def root(self, trace_id: str) -> Optional[CausalSpan]:
        """The trace's root span (parent == :data:`ROOT_PARENT`)."""
        for span in self.spans:
            if span.trace_id == trace_id and span.parent_span_id == ROOT_PARENT:
                return span
        return None

    def open_spans(self) -> List[CausalSpan]:
        """Every span still open — should be empty after a clean run."""
        return [s for s in self.spans if s.open]

    def __len__(self) -> int:
        return len(self.spans)


_COLLECTORS: List[TraceCollector] = []


def active_collector() -> Optional[TraceCollector]:
    """The innermost live :func:`collecting` collector, if any."""
    return _COLLECTORS[-1] if _COLLECTORS else None


@contextlib.contextmanager
def collecting(collector: Optional[TraceCollector] = None):
    """Collect causal spans from everything run inside the block.

    Layers discover the collector through :func:`active_collector`,
    mirroring how machines discover the telemetry recording session —
    so ``with recording(), collecting() as dag:`` turns on both the
    per-machine event stream and the cross-machine causal DAG.
    """
    collector = collector if collector is not None else TraceCollector()
    _COLLECTORS.append(collector)
    try:
        yield collector
    finally:
        _COLLECTORS.remove(collector)
