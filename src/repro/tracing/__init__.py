"""Causal request tracing, burn-rate alerting, flight recording.

The diagnosability layer over :mod:`repro.telemetry`:

* :class:`TraceContext` / :class:`TraceCollector` — deterministic
  trace-context propagation: one context minted per request at the
  serving front end (or gateway, or per interconnect hop) and
  threaded through every layer, yielding one causal span DAG per
  request instead of flat per-machine lanes;
* :mod:`repro.tracing.critical_path` — exact critical-path extraction
  over those DAGs (the chain telescopes to the measured request
  latency float-exactly), DAG closure checks, and fleet-level
  attribution with encryption-/bridge-/pcie-/compute-bound verdicts;
* :class:`AlertEngine` — multi-window SLO burn-rate alerting plus
  anomaly-burst rules over the recovery-event stream, in simulated
  time only;
* :class:`FlightRecorder` — bounded per-machine event rings that
  snapshot on crash/auth-failure/alert, feeding the deterministic
  post-mortem bundle behind ``python -m repro postmortem``.
"""

from .alerts import Alert, AlertEngine, BurnRateRule, EventRule, default_event_rules
from .context import (
    ROOT_PARENT,
    CausalSpan,
    TraceCollector,
    TraceContext,
    active_collector,
    collecting,
)
from .critical_path import (
    CLASS_VERDICTS,
    STAGE_CLASSES,
    FleetAttribution,
    Segment,
    TraceCriticalPath,
    check_closure,
    critical_path,
    critical_path_duration,
    extract_trace,
    fleet_attribution,
    stage_class,
)
from .recorder import (
    FlightRecorder,
    postmortem_bundle,
    render_critical_path_table,
    write_postmortem,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "CLASS_VERDICTS",
    "CausalSpan",
    "EventRule",
    "FleetAttribution",
    "FlightRecorder",
    "ROOT_PARENT",
    "STAGE_CLASSES",
    "Segment",
    "TraceCollector",
    "TraceContext",
    "TraceCriticalPath",
    "active_collector",
    "check_closure",
    "collecting",
    "critical_path",
    "critical_path_duration",
    "default_event_rules",
    "extract_trace",
    "fleet_attribution",
    "postmortem_bundle",
    "render_critical_path_table",
    "stage_class",
    "write_postmortem",
]
