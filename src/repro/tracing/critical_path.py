"""Exact critical-path extraction over causal span DAGs.

Given one request's span tree (rooted at its end-to-end span), the
extractor answers "what was this request *actually waiting on*, moment
by moment?" with a gapless chain of :class:`Segment`\\ s covering the
root interval — the request-level generalization of the per-machine
stage attribution in :mod:`repro.observatory.profiler`.

The algorithm is a backward *last-finisher* walk: starting from the
root's end, repeatedly descend into the child span that finished last
before the cursor (the thing whose completion unblocked progress),
attribute the gap between that child's end and the cursor to the
enclosing span itself, and recurse into the child over the window it
covers. Every segment boundary is an existing span timestamp used on
both sides of the cut, so the chain telescopes with float-identical
endpoints: ``segments[-1].end - segments[0].start`` equals the root
span's duration — and therefore the measured request latency —
*exactly*, which :func:`critical_path_duration` verifies on every
call.

:func:`check_closure` is the DAG hygiene gate (exactly one root, no
orphan parents, no dangling open spans — even across crash/failover),
and :func:`fleet_attribution` rolls per-trace critical paths up into
per-stage-class time and a bottleneck verdict (encryption-bound /
bridge-bound / migration-bound / pcie-bound / compute-bound /
queue-bound) that generalizes the Fig. 2 logic from one machine to
the whole fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .context import ROOT_PARENT, CausalSpan, TraceCollector

__all__ = [
    "STAGE_CLASSES",
    "CLASS_VERDICTS",
    "Segment",
    "TraceCriticalPath",
    "FleetAttribution",
    "stage_class",
    "critical_path",
    "critical_path_duration",
    "check_closure",
    "extract_trace",
    "fleet_attribution",
]

#: Span stage → attribution class. The classes are the fleet-level
#: buckets the verdict logic reasons over: CPU AES-GCM waits ("aes"),
#: host↔GPU wire time ("pcie"), the CC bounce bridge between GPUs
#: ("bridge"), encrypted KV-cache movement between disaggregated
#: workers ("migration"), GPU busy time ("compute") and every form of
#: waiting for a turn ("queueing"). Unknown stages land in "other".
STAGE_CLASSES: Dict[str, str] = {
    "encrypt": "aes",
    "decrypt": "aes",
    "handshake": "aes",
    "pcie": "pcie",
    "control": "pcie",
    "staging": "pcie",
    "wire-order": "pcie",
    "transfer": "pcie",
    "interconnect": "bridge",
    "migration": "migration",
    "kv-chunk": "migration",
    "compute": "compute",
    "step": "compute",
    "queue": "queueing",
    "hold": "queueing",
    "service": "queueing",
    "request": "queueing",
}

#: Attribution class → per-run verdict, in dominance-check order
#: (ties break toward the earlier entry; "other" never wins alone).
CLASS_VERDICTS: Tuple[Tuple[str, str], ...] = (
    ("aes", "encryption-bound"),
    ("bridge", "bridge-bound"),
    ("migration", "migration-bound"),
    ("compute", "compute-bound"),
    ("pcie", "pcie-bound"),
    ("queueing", "queue-bound"),
    ("other", "other-bound"),
)


def stage_class(stage: str) -> str:
    """The attribution class of one span stage label."""
    return STAGE_CLASSES.get(stage, "other")


@dataclass(frozen=True)
class Segment:
    """One interval of the critical path, attributed to one span."""

    stage: str
    start: float
    end: float
    name: str
    machine: str
    span_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "name": self.name,
            "machine": self.machine,
            "span_id": self.span_id,
        }


def critical_path(spans: Sequence[CausalSpan]) -> List[Segment]:
    """The gapless blocking chain over one trace's span tree.

    ``spans`` must be the spans of exactly one trace with one closed
    root. Open children are skipped (they never finished, so nothing
    was unblocked by them); children reaching past their window are
    clamped, so imperfect nesting degrades attribution, never
    exactness.
    """
    roots = [s for s in spans if s.parent_span_id == ROOT_PARENT]
    if len(roots) != 1:
        raise ValueError(f"expected exactly one root span, got {len(roots)}")
    root = roots[0]
    if root.open:
        raise ValueError(f"root span of {root.trace_id!r} is still open")

    children: Dict[int, List[CausalSpan]] = {}
    for span in spans:
        if span.parent_span_id != ROOT_PARENT:
            children.setdefault(span.parent_span_id, []).append(span)

    segments: List[Segment] = []

    def walk(span: CausalSpan, lo: float, hi: float) -> None:
        kids = [
            c for c in children.get(span.span_id, ())
            if not c.open and c.end > c.start
        ]
        # Last finisher first; start and span_id break exact-time ties
        # deterministically.
        kids.sort(key=lambda c: (c.end, c.start, c.span_id), reverse=True)
        cursor = hi
        for child in kids:
            if cursor <= lo:
                break
            if child.start >= cursor:
                continue  # Entirely after the cursor: not blocking.
            if child.end <= lo:
                break  # Sorted by end: nothing earlier can reach lo.
            child_end = min(child.end, cursor)
            if child_end < cursor:
                # Gap between the child's finish and the cursor: the
                # enclosing span's own time.
                segments.append(Segment(
                    span.stage, child_end, cursor,
                    span.name, span.machine, span.span_id,
                ))
            child_lo = max(lo, child.start)
            walk(child, child_lo, child_end)
            cursor = child_lo
        if cursor > lo:
            segments.append(Segment(
                span.stage, lo, cursor, span.name, span.machine, span.span_id
            ))

    if root.end > root.start:
        walk(root, root.start, root.end)
    segments.sort(key=lambda s: (s.start, s.end))
    return segments


def critical_path_duration(segments: Sequence[Segment]) -> float:
    """End-to-end duration of one gapless segment chain.

    Verifies the chain property (each segment starts exactly where
    the previous one ended — float-identical, not approximately) and
    returns ``last.end - first.start``, which is exact by
    construction. An empty chain (zero-duration root) is 0.0.
    """
    if not segments:
        return 0.0
    for prev, cur in zip(segments, segments[1:]):
        if cur.start != prev.end:
            raise ValueError(
                f"critical path has a seam: segment ending at {prev.end!r} "
                f"followed by one starting at {cur.start!r}"
            )
    return segments[-1].end - segments[0].start


def check_closure(spans: Sequence[CausalSpan]) -> List[str]:
    """DAG hygiene problems of one trace's spans; empty = closed.

    Checks: exactly one root; every parent id resolves to a span in
    the trace (no orphans); no span is left open (no dangling spans,
    even across crash/failover); no span ends before it starts.
    """
    problems: List[str] = []
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_span_id == ROOT_PARENT]
    if len(roots) != 1:
        problems.append(f"{len(roots)} roots (expected 1)")
    for span in spans:
        where = f"span {span.span_id} ({span.name!r})"
        if span.parent_span_id != ROOT_PARENT and span.parent_span_id not in ids:
            problems.append(f"{where}: orphan parent {span.parent_span_id}")
        if span.open:
            problems.append(f"{where}: dangling (never closed)")
        elif span.end < span.start:
            problems.append(f"{where}: ends before it starts")
    return problems


@dataclass
class TraceCriticalPath:
    """One request's extracted critical path plus its roll-ups."""

    trace_id: str
    status: str
    segments: List[Segment]
    closure_problems: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return critical_path_duration(self.segments)

    def by_class(self) -> Dict[str, float]:
        """Critical-path seconds per attribution class."""
        out: Dict[str, float] = {}
        for segment in self.segments:
            cls = stage_class(segment.stage)
            out[cls] = out.get(cls, 0.0) + segment.duration
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "status": self.status,
            "duration_s": self.duration,
            "segments": len(self.segments),
            "by_class": {k: v for k, v in sorted(self.by_class().items())},
            "closure_problems": list(self.closure_problems),
        }


def extract_trace(
    collector: TraceCollector, trace_id: str
) -> TraceCriticalPath:
    """Critical path + closure report for one trace in a collector."""
    spans = collector.trace(trace_id)
    problems = check_closure(spans)
    root = collector.root(trace_id)
    status = root.status if root is not None else "missing-root"
    if problems:
        return TraceCriticalPath(trace_id, status, [], problems)
    return TraceCriticalPath(trace_id, status, critical_path(spans))


@dataclass
class FleetAttribution:
    """Critical-path time by stage class across every traced request."""

    n_traces: int
    total_s: float
    by_class: Dict[str, float]
    verdict: str
    closure_problems: List[str] = field(default_factory=list)

    def share(self, cls: str) -> float:
        return self.by_class.get(cls, 0.0) / self.total_s if self.total_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_traces": self.n_traces,
            "total_s": self.total_s,
            "by_class": {k: v for k, v in sorted(self.by_class.items())},
            "shares": {
                k: self.share(k) for k in sorted(self.by_class)
            },
            "verdict": self.verdict,
            "closure_problems": list(self.closure_problems),
        }


def fleet_attribution(
    collector: TraceCollector,
    trace_ids: Optional[Iterable[str]] = None,
) -> FleetAttribution:
    """Aggregate every trace's critical path into one verdict.

    Traces failing closure contribute their problems (namespaced by
    trace id) but no time — a broken DAG must never silently skew
    the attribution it invalidates.
    """
    ids = list(trace_ids) if trace_ids is not None else collector.trace_ids()
    by_class: Dict[str, float] = {}
    problems: List[str] = []
    n = 0
    for trace_id in ids:
        path = extract_trace(collector, trace_id)
        if path.closure_problems:
            problems.extend(f"{trace_id}: {p}" for p in path.closure_problems)
            continue
        n += 1
        for cls, seconds in path.by_class().items():
            by_class[cls] = by_class.get(cls, 0.0) + seconds
    total = sum(by_class.values())
    verdict, best = "idle", 0.0
    if n and total > 0:
        for cls, cls_verdict in CLASS_VERDICTS:
            seconds = by_class.get(cls, 0.0)
            if seconds > best:
                best, verdict = seconds, cls_verdict
    return FleetAttribution(
        n_traces=n, total_s=total, by_class=by_class, verdict=verdict,
        closure_problems=problems,
    )
