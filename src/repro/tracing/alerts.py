"""SLO burn-rate alerting over the telemetry stream.

The classic SRE construction, driven purely by *simulated* time: an
SLO grants an error budget (e.g. 10% of requests may miss their
TTFT/TPOT targets); the **burn rate** of a trailing window is the
window's error fraction divided by that budget. A burn rate of 1.0
spends the budget exactly on schedule; sustained rates far above it
page. Requiring *two* windows — a long one for significance and a
short one for recency — keeps the engine silent through both brief
blips (short window trips, long does not) and long-healed incidents
(long window still polluted, short window clean).

Two rule families feed one :class:`AlertEngine`:

* :class:`BurnRateRule` — consumes explicit pass/fail SLO samples
  (the serving front end reports one per completion or shed);
* :class:`EventRule` — watches the typed event stream for anomaly
  bursts: GCM auth-failure recoveries, IV resyncs, degradation-mode
  flapping — counted over a trailing window.

Every firing appends a typed :class:`Alert` record and, when the
engine owns a hub, emits an :class:`~repro.telemetry.events.AlertEvent`
on the bus (its own ``alerts`` lane in Chrome exports), which is also
what arms the flight recorder's snapshot trigger.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..telemetry.events import AlertEvent, RecoveryEvent, TelemetryEvent

__all__ = [
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "EventRule",
    "default_event_rules",
]


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window burn-rate rule over one pass/fail SLO signal."""

    name: str
    #: Which sample stream this rule consumes ("slo", "ttft", ...).
    signal: str
    #: Allowed error fraction (1 - SLO target), the budget burn is
    #: measured against.
    budget: float
    long_window: float
    short_window: float
    #: Both windows must burn at ≥ this multiple of the budget.
    threshold: float = 2.0
    #: Minimum long-window samples before the rule may fire (a single
    #: early failure is 100% error fraction, not an incident).
    min_samples: int = 8
    cooldown: float = 0.0
    severity: str = "page"


@dataclass(frozen=True)
class EventRule:
    """Trailing-window count rule over recovery-event anomalies."""

    name: str
    #: :class:`RecoveryEvent` actions this rule counts.
    actions: Tuple[str, ...]
    window: float
    #: Fire when ≥ this many matching events land inside the window.
    threshold: int
    cooldown: float = 0.0
    severity: str = "page"


@dataclass(frozen=True)
class Alert:
    """One rule firing, stamped with simulated time."""

    time: float
    rule: str
    severity: str
    burn_rate: float
    window_s: float
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "rule": self.rule,
            "severity": self.severity,
            "burn_rate": self.burn_rate,
            "window_s": self.window_s,
            "detail": self.detail,
        }


def default_event_rules(
    window: float = 1.0, cooldown: Optional[float] = None
) -> Tuple[EventRule, ...]:
    """The standard anomaly rules, dimensioned to one timescale.

    ``window`` should be a fraction of the run being watched (the
    fault campaign passes ~40% of its measured window); ``cooldown``
    defaults to the window so one incident pages once, not per event.
    """
    cooldown = window if cooldown is None else cooldown
    return (
        # GCM tag-validation failures surviving via re-encryption: one
        # is noise, a burst is an integrity incident.
        EventRule("auth-anomaly", ("auth-recover",), window, 3, cooldown),
        # IV-stream desync resyncs: the audit invariant held, but the
        # stream needed repair more than once in quick succession.
        EventRule("iv-anomaly", ("resync",), window, 2, cooldown),
        # Speculative→degraded→probing controller flapping: four mode
        # changes inside one window means it cannot hold a regime.
        EventRule(
            "mode-flap", ("degrade", "probe", "restore"), window, 4, cooldown
        ),
    )


class AlertEngine:
    """Evaluates burn-rate and anomaly rules as signals arrive.

    Evaluation is event-driven — every observed sample or event
    carries its simulated timestamp, so the engine never reads a
    clock of its own and replays byte-identically under one seed.
    """

    def __init__(
        self,
        hub=None,
        slo_rules: Tuple[BurnRateRule, ...] = (),
        event_rules: Tuple[EventRule, ...] = (),
        max_samples: int = 4096,
    ) -> None:
        #: Optional hub AlertEvents are emitted on (the bus lane).
        self.hub = hub
        self.slo_rules = tuple(slo_rules)
        self.event_rules = tuple(event_rules)
        self.alerts: List[Alert] = []
        self._samples: Dict[str, Deque[Tuple[float, bool]]] = {}
        self._event_times: Dict[str, Deque[float]] = {
            rule.name: deque() for rule in self.event_rules
        }
        self._last_fired: Dict[str, float] = {}
        self._max_samples = max_samples

    # -- wiring ----------------------------------------------------------

    def watch(self, hub) -> None:
        """Subscribe to one hub's event stream (anomaly rules)."""
        hub.subscribe(self.observe_event)

    def attach_session(self, session) -> None:
        """Watch every hub of a recording session, present and future.

        Chains any previously installed ``on_register`` hook so the
        engine composes with a flight recorder on one session.
        """
        for hub in session.hubs:
            self.watch(hub)
        previous = session.on_register

        def _register(hub) -> None:
            if previous is not None:
                previous(hub)
            self.watch(hub)

        session.on_register = _register

    # -- signal intake ---------------------------------------------------

    def observe_slo(self, time: float, ok: bool, signal: str = "slo") -> None:
        """One pass/fail SLO sample (e.g. a completion's attainment)."""
        samples = self._samples.get(signal)
        if samples is None:
            samples = self._samples[signal] = deque(maxlen=self._max_samples)
        samples.append((time, bool(ok)))
        for rule in self.slo_rules:
            if rule.signal == signal:
                self._evaluate_burn(rule, time)

    def observe_event(self, event: TelemetryEvent) -> None:
        """Bus subscriber: feed anomaly rules from recovery events."""
        if not isinstance(event, RecoveryEvent):
            return
        for rule in self.event_rules:
            if event.action in rule.actions:
                self._evaluate_count(rule, event.time, event.action)

    # -- evaluation ------------------------------------------------------

    def _burn(self, signal: str, now: float, window: float) -> Tuple[float, int]:
        """(burn numerator = error fraction, sample count) of a window."""
        total = bad = 0
        for time, ok in reversed(self._samples.get(signal, ())):
            if time < now - window:
                break
            total += 1
            bad += not ok
        return (bad / total if total else 0.0), total

    def _evaluate_burn(self, rule: BurnRateRule, now: float) -> None:
        if not self._cooled(rule.name, now, rule.cooldown):
            return
        long_frac, long_n = self._burn(rule.signal, now, rule.long_window)
        short_frac, _ = self._burn(rule.signal, now, rule.short_window)
        if long_n < rule.min_samples:
            return
        long_burn = long_frac / rule.budget
        short_burn = short_frac / rule.budget
        if long_burn >= rule.threshold and short_burn >= rule.threshold:
            self._fire(rule.name, rule.severity, now, long_burn,
                       rule.long_window,
                       f"signal={rule.signal} short_burn={short_burn:.2f}")

    def _evaluate_count(self, rule: EventRule, now: float, action: str) -> None:
        times = self._event_times[rule.name]
        times.append(now)
        while times and times[0] < now - rule.window:
            times.popleft()
        if not self._cooled(rule.name, now, rule.cooldown):
            return
        if len(times) >= rule.threshold:
            self._fire(rule.name, rule.severity, now,
                       len(times) / max(rule.threshold, 1), rule.window,
                       f"action={action} count={len(times)}")

    def _cooled(self, name: str, now: float, cooldown: float) -> bool:
        last = self._last_fired.get(name)
        return last is None or now - last >= cooldown

    def _fire(
        self, name: str, severity: str, now: float, burn: float,
        window: float, detail: str,
    ) -> None:
        self._last_fired[name] = now
        alert = Alert(now, name, severity, burn, window, detail)
        self.alerts.append(alert)
        if self.hub is not None:
            self.hub.metrics.counter("alerts.fired").add()
            self.hub.metrics.counter(f"alerts.{name}").add()
            self.hub.emit(AlertEvent(
                time=now, rule=name, severity=severity, burn_rate=burn,
                window_s=window, detail=detail,
            ))
