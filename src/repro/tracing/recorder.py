"""The fault flight recorder and deterministic post-mortem bundles.

A :class:`FlightRecorder` keeps a bounded ring of the most recent
telemetry events *per machine* — cheap enough to leave on for a whole
campaign — and snapshots every ring the moment something goes wrong:
a replica crash, a GCM auth-failure recovery, or an alert-engine
firing. The snapshot is what a post-incident reviewer actually wants:
"the last N things each machine saw, as of the moment of impact",
not a gigabyte of full-run history.

:func:`postmortem_bundle` folds the recorder's snapshots, the alert
log, every traced request's critical path and the fleet verdict into
one JSON-serializable document; :func:`write_postmortem` writes it to
disk alongside a Chrome trace and a human-readable critical-path
table. Everything is keyed, sorted and timestamped in simulated time
only, so ``python -m repro postmortem`` produces byte-identical
bundles under one seed.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from ..telemetry.events import AlertEvent, ClusterEvent, RecoveryEvent, TelemetryEvent
from .context import TraceCollector
from .critical_path import extract_trace, fleet_attribution

__all__ = [
    "FlightRecorder",
    "postmortem_bundle",
    "render_critical_path_table",
    "write_postmortem",
]


def _event_row(event: TelemetryEvent) -> Dict[str, Any]:
    row = {"time": event.time, "kind": event.kind}
    row.update(event.args())
    return row


class FlightRecorder:
    """Bounded per-machine event rings with snapshot-on-fault."""

    def __init__(self, ring_size: int = 256) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.ring_size = ring_size
        #: Machine label → ring of its most recent events.
        self.rings: Dict[str, Deque[TelemetryEvent]] = {}
        #: Every snapshot taken, in trigger order.
        self.snapshots: List[Dict[str, Any]] = []

    # -- wiring ----------------------------------------------------------

    def watch(self, hub) -> None:
        """Ring-buffer one hub's event stream and arm the triggers."""
        label = hub.label or f"machine-{len(self.rings)}"
        ring = self.rings.setdefault(label, deque(maxlen=self.ring_size))

        def _observe(event: TelemetryEvent, _ring=ring) -> None:
            _ring.append(event)
            reason = self._trigger(event)
            if reason is not None:
                self.snapshot(reason, event.time)

        hub.subscribe(_observe)

    def attach_session(self, session) -> None:
        """Watch every hub of a recording session, present and future.

        Chains any ``on_register`` hook already installed (e.g. an
        :class:`~repro.tracing.alerts.AlertEngine`), so several
        watchers can share one session.
        """
        for hub in session.hubs:
            self.watch(hub)
        previous = session.on_register

        def _register(hub) -> None:
            if previous is not None:
                previous(hub)
            self.watch(hub)

        session.on_register = _register

    # -- triggers --------------------------------------------------------

    @staticmethod
    def _trigger(event: TelemetryEvent) -> Optional[str]:
        if isinstance(event, ClusterEvent) and event.action == "crash":
            return f"crash:replica-{event.replica}"
        if isinstance(event, RecoveryEvent) and event.action == "auth-recover":
            return "auth-failure"
        if isinstance(event, AlertEvent):
            return f"alert:{event.rule}"
        return None

    def snapshot(self, reason: str, time: float) -> Dict[str, Any]:
        """Freeze every ring's current contents into one snapshot."""
        snap = {
            "reason": reason,
            "time": time,
            "rings": {
                label: [_event_row(e) for e in ring]
                for label, ring in sorted(self.rings.items())
            },
        }
        self.snapshots.append(snap)
        return snap


def postmortem_bundle(
    recorder: Optional[FlightRecorder] = None,
    collector: Optional[TraceCollector] = None,
    alerts=None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One JSON-serializable post-mortem document.

    Sections are independent: any of the recorder, the span collector
    and the alert engine may be absent and its section is empty — a
    bundle from a run that only recorded events is still a bundle.
    """
    traces: List[Dict[str, Any]] = []
    fleet: Dict[str, Any] = {}
    closure = {"traces_checked": 0, "problems": []}
    if collector is not None:
        for trace_id in collector.trace_ids():
            path = extract_trace(collector, trace_id)
            traces.append(path.as_dict())
            closure["traces_checked"] += 1
            closure["problems"].extend(
                f"{trace_id}: {p}" for p in path.closure_problems
            )
        fleet = fleet_attribution(collector).as_dict()
    return {
        "schema": "repro.postmortem/v1",
        "meta": dict(meta or {}),
        "snapshots": list(recorder.snapshots) if recorder is not None else [],
        "alerts": [a.as_dict() for a in alerts.alerts] if alerts is not None else [],
        "traces": traces,
        "fleet": fleet,
        "closure": closure,
    }


def render_critical_path_table(collector: TraceCollector) -> str:
    """Fixed-width per-trace critical-path table (one row per trace)."""
    header = (
        f"{'trace':28} {'status':12} {'dur_ms':>9} {'segs':>5}  dominant"
    )
    lines = [header, "-" * len(header)]
    for trace_id in collector.trace_ids():
        path = extract_trace(collector, trace_id)
        if path.closure_problems:
            lines.append(
                f"{trace_id:28} {'BROKEN':12} {'-':>9} {'-':>5}  "
                + "; ".join(path.closure_problems)
            )
            continue
        by_class = path.by_class()
        dominant = max(sorted(by_class), key=lambda c: by_class[c]) \
            if by_class else "-"
        lines.append(
            f"{trace_id:28} {path.status:12} {path.duration * 1e3:>9.4f} "
            f"{len(path.segments):>5}  {dominant}"
        )
    if len(lines) == 2:
        lines.append("(no traces collected)")
    return "\n".join(lines)


def write_postmortem(
    outdir,
    bundle: Dict[str, Any],
    hubs=(),
    collector: Optional[TraceCollector] = None,
) -> Dict[str, str]:
    """Write the bundle + companions; returns name → path written.

    ``postmortem.json`` is the bundle (sorted keys, stable layout),
    ``trace.json`` the Chrome trace over ``hubs``, and
    ``critical_paths.txt`` the human-readable table.
    """
    from ..telemetry.export import chrome_trace

    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}

    bundle_path = out / "postmortem.json"
    bundle_path.write_text(
        json.dumps(bundle, indent=2, sort_keys=True) + "\n"
    )
    written["postmortem"] = str(bundle_path)

    trace_path = out / "trace.json"
    trace_path.write_text(
        json.dumps(chrome_trace(hubs), indent=2, sort_keys=True) + "\n"
    )
    written["trace"] = str(trace_path)

    if collector is not None:
        table_path = out / "critical_paths.txt"
        table_path.write_text(render_critical_path_table(collector) + "\n")
        written["critical_paths"] = str(table_path)
    return written
