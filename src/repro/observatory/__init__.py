"""Performance observatory: profiler, metrics registry, dashboard.

The quantitative lens on everything the rest of the repo simulates:

* :mod:`repro.observatory.profiler` — exact per-request blocking-time
  attribution (encrypt / wire-order / staging / control / PCIe /
  decrypt), the Fig. 2 bottleneck verdict, speculation accounting;
* :mod:`repro.observatory.registry` — pull-style metric families with
  labels, Prometheus text exposition and JSON snapshots, driven purely
  by simulated time;
* :mod:`repro.observatory.dashboard` — ``python -m repro dash``, a
  live ASCII view (utilization, latency percentiles, speculation
  hit-rate, IV-audit status, degradation mode) that provably does not
  perturb the simulation;
* :mod:`repro.observatory.lint` — the structural wall-clock hygiene
  check keeping simulated and real time apart.
"""

from .lint import ALLOWED_WALL_CLOCK_FILES, wall_clock_call_sites
from .profiler import (
    STAGES,
    AttributionProfile,
    RequestAttribution,
    SpeculationAccount,
    attribute_request,
    profile_hub,
    render_profile,
    render_waterfall,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_gateway,
    bind_machine,
)

__all__ = [
    "ALLOWED_WALL_CLOCK_FILES",
    "AttributionProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestAttribution",
    "STAGES",
    "SpeculationAccount",
    "attribute_request",
    "bind_gateway",
    "bind_machine",
    "profile_hub",
    "render_profile",
    "render_waterfall",
    "wall_clock_call_sites",
]
