"""Wall-clock hygiene lint for the simulation tree.

Every metric in this repo is defined over **simulated** seconds; a
single stray ``time.time()`` in the instrumented path would silently
mix wall-clock into latency math and make runs irreproducible. This
module AST-scans ``src/repro`` for wall-clock reads and is enforced by
a test, so the invariant holds structurally rather than by review.

Allowed call sites: the CLI entry point and the dashboard refresh
loop — the only places that interact with a human in real time.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Sequence, Tuple

__all__ = ["ALLOWED_WALL_CLOCK_FILES", "WALL_CLOCK_CALLS", "wall_clock_call_sites"]

#: ``time.<attr>`` calls that read the wall clock.
WALL_CLOCK_CALLS = ("time", "monotonic", "perf_counter", "process_time")

#: Repo-relative paths (under ``src/repro``) where wall-clock reads
#: are legitimate: the human-facing CLI and the dashboard's refresh
#: pacing. Everything else must take timestamps from ``sim.now`` or
#: as injected parameters.
ALLOWED_WALL_CLOCK_FILES = (
    "cli.py",
    "observatory/dashboard.py",
)


def _wall_clock_calls_in(source: str) -> List[Tuple[int, str]]:
    """(lineno, call) for every wall-clock read in one module."""
    tree = ast.parse(source)
    hits: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in WALL_CLOCK_CALLS
        ):
            hits.append((node.lineno, f"time.{func.attr}()"))
        elif isinstance(func, ast.Name) and func.id in ("monotonic", "perf_counter"):
            # `from time import monotonic` style.
            hits.append((node.lineno, f"{func.id}()"))
    return hits


def wall_clock_call_sites(
    root: Path, allowed: Sequence[str] = ALLOWED_WALL_CLOCK_FILES
) -> List[str]:
    """Disallowed wall-clock reads under ``root``, as ``path:line call``.

    ``root`` is the ``src/repro`` package directory; paths in the
    result (and in ``allowed``) are relative to it.
    """
    violations: List[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in allowed:
            continue
        for lineno, call in _wall_clock_calls_in(path.read_text()):
            violations.append(f"{rel}:{lineno} {call}")
    return violations
