"""Critical-path profiler: blocking-time attribution per request.

The runtime's timed halves record the *exact* sequential wait
intervals of every request's wire path into its lifecycle record
(:meth:`repro.telemetry.hub.RequestRecord.mark_stage`): how long the
request waited for encryption readiness, the IV wire-order chain, the
private→shared staging bounce, the CC control plane, the PCIe DMA and
the CPU decryption. The intervals of one request are non-overlapping
and tile ``[submit_time, complete_time]`` up to a (reported) residual,
so attributing end-to-end latency is pure arithmetic here — no event
parsing, no double counting.

From those attributions the profiler derives the paper's Fig. 2
story at a glance:

* per-stage blocking-time totals and shares (aggregate and per
  request),
* a dominant-bottleneck **verdict** — ``encryption-bound`` when the
  crypto stages dominate the blocked time (the CC baseline's regime),
  ``pcie-bound`` when the transfer stages do (PipeLLM's regime: the
  AES wait is hidden behind speculation), ``compute-bound`` when the
  GPU is the busiest resource over the horizon,
* **speculation accounting**: encryption seconds moved off the
  critical path by staged hits versus seconds wasted pre-encrypting
  chunks that were later invalidated, plus NOP-padding overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.stats import mean, percentile
from ..telemetry.events import ClusterEvent, SpeculationEvent
from ..telemetry.hub import RequestRecord, TelemetryHub

__all__ = [
    "AttributionProfile",
    "RequestAttribution",
    "SpeculationAccount",
    "STAGES",
    "attribute_request",
    "profile_hub",
    "render_profile",
    "render_waterfall",
]

#: Canonical stage order, critical-path position first. "other" is the
#: residual of wire latency not covered by any recorded interval
#: (process-scheduling slack; ~0 in practice) — keeping it explicit is
#: what makes the attributions sum to end-to-end latency exactly.
STAGES: Tuple[str, ...] = (
    "encrypt",
    "wire-order",
    "staging",
    "control",
    "pcie",
    "interconnect",
    "decrypt",
    "gateway",
    "other",
)

#: Stage buckets behind the bottleneck verdict. Crypto stages are the
#: CPU AES-GCM waits; transfer stages are everything that moves or
#: orders bytes on the CPU↔GPU wire.
CRYPTO_STAGES = ("encrypt", "decrypt")
TRANSFER_STAGES = ("wire-order", "staging", "control", "pcie", "interconnect")


@dataclass
class RequestAttribution:
    """Blocking-time breakdown of one request, summing to its latency."""

    request_id: int
    direction: str
    kind: str
    outcome: str
    strategy: str
    size: int
    submit_time: float
    complete_time: float
    #: Stage name → blocked seconds. Includes the "other" residual, so
    #: ``sum(stages.values()) == total`` to float precision.
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """End-to-end wire latency (submission to landing)."""
        return self.complete_time - self.submit_time

    def share(self, stage: str) -> float:
        return self.stages.get(stage, 0.0) / self.total if self.total > 0 else 0.0


def attribute_request(record: RequestRecord) -> Optional[RequestAttribution]:
    """Fold one completed lifecycle record into a stage breakdown.

    Returns None for requests that never completed (no latency to
    attribute). The residual between the recorded intervals and the
    wire latency lands in "other" — clamped at zero against float
    noise, so the invariant ``sum(stages) == total`` always holds.
    """
    total = record.wire_latency
    if not total == total or total < 0:  # nan-safe: incomplete request
        return None
    stages: Dict[str, float] = {}
    covered = 0.0
    for stage, start, end in record.stages:
        duration = end - start
        stages[stage] = stages.get(stage, 0.0) + duration
        covered += duration
    residual = total - covered
    if residual > 0.0:
        stages["other"] = residual
    elif residual < 0.0:
        # Float noise only; rescale so the invariant is exact.
        scale = total / covered if covered > 0 else 0.0
        for stage in stages:
            stages[stage] *= scale
    return RequestAttribution(
        request_id=record.request_id,
        direction=record.direction,
        kind=record.kind,
        outcome=record.outcome,
        strategy=record.strategy,
        size=record.size,
        submit_time=record.submit_time,
        complete_time=record.complete_time,
        stages=stages,
    )


@dataclass
class SpeculationAccount:
    """Encryption seconds moved off vs wasted by the pipeline (§5)."""

    #: AES seconds staged hits did NOT spend on the critical path
    #: (chunk bytes / one-thread AES bandwidth, per hit).
    saved_s: float = 0.0
    #: AES seconds spent pre-encrypting entries later invalidated.
    wasted_s: float = 0.0
    #: NOPs padded to close IV gaps (each costs one tiny wire message).
    nops_padded: int = 0
    hits: int = 0
    misses: int = 0
    invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def net_saved_s(self) -> float:
        return self.saved_s - self.wasted_s


@dataclass
class AttributionProfile:
    """Aggregate attribution over every completed request of one hub."""

    label: str
    requests: List[RequestAttribution]
    #: Stage → total blocked seconds across all requests.
    totals: Dict[str, float]
    speculation: SpeculationAccount
    #: GPU busy fraction over the horizon (0.0 when no tracer spans).
    gpu_busy_fraction: float = 0.0
    #: Mean gateway/admission-queue wait per dispatched request
    #: (cluster mode only; 0.0 standalone).
    gateway_wait_mean_s: float = 0.0

    @property
    def total_blocked_s(self) -> float:
        return sum(self.totals.values())

    def share(self, stage: str) -> float:
        total = self.total_blocked_s
        return self.totals.get(stage, 0.0) / total if total > 0 else 0.0

    def bucket_share(self, stages: Sequence[str]) -> float:
        return sum(self.share(stage) for stage in stages)

    @property
    def verdict(self) -> str:
        """Dominant-bottleneck call, reproducing the Fig. 2 regimes."""
        crypto = self.bucket_share(CRYPTO_STAGES)
        transfer = self.bucket_share(TRANSFER_STAGES)
        if self.gpu_busy_fraction > 0.5 and self.gpu_busy_fraction > max(crypto, transfer):
            return "compute-bound"
        if not self.requests:
            return "idle"
        return "encryption-bound" if crypto >= transfer else "pcie-bound"

    def latency_percentiles(self) -> Dict[str, float]:
        latencies = [r.total for r in self.requests]
        return {
            "p50": percentile(latencies, 50),
            "p95": percentile(latencies, 95),
            "p99": percentile(latencies, 99),
            "mean": mean(latencies),
        }

    def find(self, request_id: int) -> Optional[RequestAttribution]:
        for request in self.requests:
            if request.request_id == request_id:
                return request
        return None


def _speculation_account(
    hub: TelemetryHub, enc_bandwidth: Optional[float]
) -> SpeculationAccount:
    account = SpeculationAccount()
    for record in hub.requests:
        account.nops_padded += record.nops_padded
        if record.outcome in ("hit_now", "hit_future"):
            account.hits += 1
            if enc_bandwidth:
                account.saved_s += record.size / enc_bandwidth
        elif record.outcome in ("stale", "miss"):
            account.misses += 1
    for event in hub.events_of(SpeculationEvent):
        if event.action == "invalidate":
            account.invalidated += 1
            if enc_bandwidth:
                account.wasted_s += event.size / enc_bandwidth
    return account


def _gateway_wait_mean(gateway_hub: TelemetryHub) -> float:
    """Mean enqueue→dispatch wait from the gateway's cluster events."""
    enqueued: Dict[int, float] = {}
    waits: List[float] = []
    for event in gateway_hub.events_of(ClusterEvent):
        if event.action == "enqueue":
            enqueued[event.request_id] = event.time
        elif event.action == "dispatch" and event.request_id in enqueued:
            waits.append(event.time - enqueued.pop(event.request_id))
    return mean(waits)


def profile_hub(
    hub: TelemetryHub,
    horizon: Optional[float] = None,
    enc_bandwidth: Optional[float] = None,
    gateway_hub: Optional[TelemetryHub] = None,
) -> AttributionProfile:
    """Profile every completed request recorded on ``hub``.

    ``horizon`` (defaults to the hub's simulated now, else the last
    completion) scales the GPU-busy fraction; ``enc_bandwidth`` (the
    machine's one-thread AES rate, B/s) prices the speculation
    account; ``gateway_hub`` adds cluster queue-wait attribution.
    """
    requests = [
        attribution
        for attribution in (attribute_request(r) for r in hub.requests)
        if attribution is not None
    ]
    totals: Dict[str, float] = {}
    for request in requests:
        for stage, seconds in request.stages.items():
            totals[stage] = totals.get(stage, 0.0) + seconds

    if horizon is None:
        if hub.sim is not None:
            horizon = hub.sim.now
        elif requests:
            horizon = max(r.complete_time for r in requests)
        else:
            horizon = 0.0
    gpu_busy = hub.tracer.busy_time("gpu")
    gpu_fraction = min(1.0, gpu_busy / horizon) if horizon and horizon > 0 else 0.0

    return AttributionProfile(
        label=hub.label,
        requests=requests,
        totals=totals,
        speculation=_speculation_account(hub, enc_bandwidth),
        gpu_busy_fraction=gpu_fraction,
        gateway_wait_mean_s=(
            _gateway_wait_mean(gateway_hub) if gateway_hub is not None else 0.0
        ),
    )


# -- rendering ----------------------------------------------------------


def _bar(fraction: float, width: int = 28) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_waterfall(attribution: RequestAttribution, width: int = 56) -> str:
    """ASCII waterfall of one request's critical path.

    Each recorded stage becomes one row positioned on the request's
    own [submit, complete] timeline; the summary row restates the
    attribution invariant.
    """
    lines = [
        f"request {attribution.request_id}  {attribution.direction}"
        f"  {attribution.kind or '?'}  {attribution.size} B"
        + (f"  outcome={attribution.outcome}" if attribution.outcome else "")
        + (f"  strategy={attribution.strategy}" if attribution.strategy else ""),
        f"  submit {attribution.submit_time * 1e3:.4f} ms →"
        f" complete {attribution.complete_time * 1e3:.4f} ms"
        f"  (wire {attribution.total * 1e6:.2f} us)",
    ]
    total = attribution.total
    label_width = max((len(s) for s in attribution.stages), default=5) + 2
    extras = [s for s in attribution.stages if s not in STAGES]
    for stage in list(STAGES) + extras:
        seconds = attribution.stages.get(stage)
        if seconds is None:
            continue
        lines.append(
            f"  {stage.ljust(label_width)}"
            f"{_bar(seconds / total if total > 0 else 0.0, width)}"
            f" {seconds * 1e6:9.2f} us ({100 * attribution.share(stage):5.1f}%)"
        )
    covered = sum(attribution.stages.values())
    lines.append(
        f"  {'total'.ljust(label_width)}{' ' * width} {covered * 1e6:9.2f} us"
        f" (= wire latency)"
    )
    return "\n".join(lines)


def render_profile(profile: AttributionProfile) -> str:
    """Human-readable aggregate report for one profiled hub."""
    lines = [
        f"critical-path profile: {profile.label or 'machine'}"
        f"  ({len(profile.requests)} requests,"
        f" {profile.total_blocked_s * 1e3:.3f} ms blocked)",
        f"verdict: {profile.verdict}"
        f"  (crypto {100 * profile.bucket_share(CRYPTO_STAGES):.1f}%"
        f" / transfer {100 * profile.bucket_share(TRANSFER_STAGES):.1f}%"
        f" / gpu busy {100 * profile.gpu_busy_fraction:.1f}%)",
    ]
    for stage in STAGES:
        if stage not in profile.totals:
            continue
        share = profile.share(stage)
        lines.append(
            f"  {stage.ljust(12)}{_bar(share)}"
            f" {profile.totals[stage] * 1e3:9.3f} ms ({100 * share:5.1f}%)"
        )
    pct = profile.latency_percentiles()
    lines.append(
        f"  latency p50 {pct['p50'] * 1e6:.1f} us"
        f"  p95 {pct['p95'] * 1e6:.1f} us  p99 {pct['p99'] * 1e6:.1f} us"
    )
    spec = profile.speculation
    if spec.hits or spec.misses:
        lines.append(
            f"  speculation: hit-rate {100 * spec.hit_rate:.1f}%"
            f"  saved {spec.saved_s * 1e3:.3f} ms"
            f"  wasted {spec.wasted_s * 1e3:.3f} ms"
            f"  (net {spec.net_saved_s * 1e3:+.3f} ms,"
            f" {spec.nops_padded} NOPs, {spec.invalidated} invalidations)"
        )
    if profile.gateway_wait_mean_s:
        lines.append(
            f"  gateway queue wait: mean {profile.gateway_wait_mean_s * 1e3:.3f} ms"
        )
    return "\n".join(lines)
