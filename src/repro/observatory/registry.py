"""Pull-style metrics registry: Prometheus exposition + JSON snapshot.

:class:`repro.sim.stats.MetricSet` is the *push* side — hardware and
runtime code record into it as the simulation runs. This module adds
the *pull* side a real serving stack exposes to its monitoring plane:
named metric families (counter / gauge / histogram) with label sets,
collector callbacks that refresh gauges at scrape time, Prometheus
text exposition and a JSON snapshot.

Everything in the registry is driven by **simulated time**: collector
callbacks receive the horizon (the machine's ``sim.now``) so
utilizations are fractions of simulated seconds, never wall-clock.
:func:`bind_machine` wires one machine's whole stack in — hw (PCIe /
crypto-engine / GPU / staging occupancy), core (speculation counters,
degradation mode), faults (injection/recovery counters), telemetry
(wire latencies, tap drops) — and :func:`bind_gateway` adds the
cluster plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "bind_gateway",
    "bind_machine",
]

LabelValues = Tuple[str, ...]


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double-quote and line-feed are the three escapes."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Child:
    """One (family, label-values) time series."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value


class _HistogramChild:
    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * len(self.buckets)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
        self.total += 1
        self.sum += value


class MetricFamily:
    """A named metric with a fixed label schema and typed children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._children: Dict[LabelValues, Any] = {}

    def _make_child(self):
        return _Child()

    def labels(self, *values: str, **kw: str):
        if kw:
            if values:
                raise ValueError("pass labels positionally or by name, not both")
            values = tuple(kw[name] for name in self.label_names)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values}"
            )
        key = tuple(str(v) for v in values)
        if key not in self._children:
            self._children[key] = self._make_child()
        return self._children[key]

    def children(self) -> Iterable[Tuple[LabelValues, Any]]:
        return sorted(self._children.items())

    # Label-less convenience: family behaves as its own single child.

    def _default(self):
        return self.labels()


class Counter(MetricFamily):
    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(MetricFamily):
    kind = "gauge"

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = (),
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs explicit buckets")
        super().__init__(name, help, labels)
        self.buckets = tuple(sorted(float(b) for b in buckets))

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)


class MetricsRegistry:
    """Families by name, plus pull-time collector callbacks.

    ``collect(horizon)`` runs every registered collector (they refresh
    gauges from live simulation state) and returns the families;
    :meth:`exposition` and :meth:`snapshot` are the two wire formats.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[float], None]] = []

    # -- registration ---------------------------------------------------

    def _register(self, family: MetricFamily) -> MetricFamily:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family):
                raise ValueError(f"{family.name} already registered as {existing.kind}")
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", labels: Sequence[str] = (),
        buckets: Sequence[float] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets))  # type: ignore[return-value]

    def register_collector(self, collector: Callable[[float], None]) -> None:
        """``collector(horizon)`` runs at every scrape, horizon in
        simulated seconds."""
        self._collectors.append(collector)

    # -- scraping -------------------------------------------------------

    def collect(self, horizon: float) -> List[MetricFamily]:
        for collector in self._collectors:
            collector(horizon)
        return [self._families[name] for name in sorted(self._families)]

    def exposition(self, horizon: float) -> str:
        """Prometheus text format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.collect(horizon):
            full = f"{self.namespace}_{family.name}"
            if family.help:
                lines.append(f"# HELP {full} {family.help}")
            lines.append(f"# TYPE {full} {family.kind}")
            for values, child in family.children():
                if isinstance(child, _HistogramChild):
                    for bound, count in zip(child.buckets, child.counts):
                        bucket_labels = _label_str(
                            family.label_names + ("le",), values + (f"{bound:g}",)
                        )
                        lines.append(f"{full}_bucket{bucket_labels} {count}")
                    inf_labels = _label_str(
                        family.label_names + ("le",), values + ("+Inf",)
                    )
                    lines.append(f"{full}_bucket{inf_labels} {child.total}")
                    label_str = _label_str(family.label_names, values)
                    lines.append(f"{full}_sum{label_str} {_format_value(child.sum)}")
                    lines.append(f"{full}_count{label_str} {child.total}")
                else:
                    label_str = _label_str(family.label_names, values)
                    lines.append(f"{full}{label_str} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self, horizon: float) -> Dict[str, Any]:
        """JSON-friendly scrape: {family: {kind, help, series: [...]}}."""
        out: Dict[str, Any] = {}
        for family in self.collect(horizon):
            series = []
            for values, child in family.children():
                labels = dict(zip(family.label_names, values))
                if isinstance(child, _HistogramChild):
                    series.append({
                        "labels": labels,
                        "sum": child.sum,
                        "count": child.total,
                        "buckets": {
                            f"{b:g}": c for b, c in zip(child.buckets, child.counts)
                        },
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind, "help": family.help, "series": series,
            }
        return out


# -- stack bindings ------------------------------------------------------


def bind_machine(
    registry: MetricsRegistry, machine, runtime=None, label: str = ""
) -> None:
    """Register one machine's hw/crypto/core/faults metrics.

    Installs a pull collector that, at scrape time, mirrors the
    machine's always-on :class:`MetricSet` counters/latencies into
    labelled families and recomputes resource utilizations over the
    simulated horizon.
    """
    label = label or machine.telemetry.label or "machine-0"

    util = registry.gauge(
        "resource_utilization",
        "Busy fraction of one resource over the simulated horizon",
        labels=("machine", "resource"),
    )
    counters = registry.gauge(
        "machine_counter",
        "Mirror of the machine's always-on MetricSet counters",
        labels=("machine", "name"),
    )
    latency = registry.gauge(
        "wire_latency_seconds",
        "Wire latency percentiles per direction",
        labels=("machine", "direction", "quantile"),
    )
    mode_gauge = registry.gauge(
        "pipeline_mode",
        "Degradation state: 0 speculative, 1 probing, 2 degraded",
        labels=("machine",),
    )
    hit_rate = registry.gauge(
        "speculation_hit_rate",
        "Staged-service fraction of validated swap-ins",
        labels=("machine",),
    )
    link_hit_rate = registry.gauge(
        "interconnect_hit_rate",
        "Staged-hop fraction of speculated link transfers",
        labels=("machine",),
    )

    def collect(horizon: float) -> None:
        if horizon > 0:
            pcie_busy = max(
                machine.pcie.h2d.busy_time(),
                machine.pcie.d2h.busy_time(),
                machine.pcie.h2d_cc.busy_time(),
                machine.pcie.d2h_cc.busy_time(),
            )
            util.labels(label, "pcie").set(min(1.0, pcie_busy / horizon))
            util.labels(label, "crypto-engine").set(
                min(1.0, machine.engine.utilization(horizon))
            )
            util.labels(label, "gpu").set(
                min(1.0, machine.gpu.compute_seconds / horizon)
            )
            fabric = getattr(machine, "interconnect", None)
            if fabric is not None:
                for pipe in fabric.pipes():
                    util.labels(label, pipe.name).set(
                        min(1.0, pipe.busy_time() / horizon)
                    )
        for name, counter in machine.metrics.counters.items():
            counters.labels(label, name).set(float(counter.value))
        for direction in ("h2d", "d2h"):
            stat = machine.metrics.latencies.get(f"telemetry.{direction}_wire_s")
            if stat is None or not stat.count:
                continue
            for q in (50, 95, 99):
                latency.labels(label, direction, f"p{q}").set(stat.p(q))
        if runtime is not None and hasattr(runtime, "fault_controller"):
            mode_gauge.labels(label).set(
                {"speculative": 0.0, "probing": 1.0, "degraded": 2.0}[
                    runtime.fault_controller.mode.value
                ]
            )
        if runtime is not None and hasattr(runtime, "validator"):
            hit_rate.labels(label).set(runtime.validator.success_rate)
        fabric = getattr(machine, "interconnect", None)
        if fabric is not None and (fabric.spec_hits or fabric.spec_misses):
            link_hit_rate.labels(label).set(fabric.hit_rate())

    registry.register_collector(collect)


#: Histogram bounds for per-request serving latencies (seconds): spans
#: sub-millisecond cache hits up to deep saturation.
_SERVE_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def bind_gateway(registry: MetricsRegistry, gateway, audit=None) -> None:
    """Register the cluster plane: gateway counters, queue depth, IV
    audit — and, when a serving front end runs on this gateway, the
    per-request TTFT/TPOT latency distributions (p50/p95/p99 quantile
    gauges plus Prometheus histograms)."""
    counters = registry.gauge(
        "gateway_counter",
        "Mirror of the gateway's MetricSet counters",
        labels=("name",),
    )
    depth = registry.gauge("gateway_queue_depth", "Admission queue depth now")
    audit_gauge = registry.gauge(
        "iv_audit",
        "Cluster IV-audit progress",
        labels=("field",),
    )
    serve_quantiles = registry.gauge(
        "serve_latency_seconds",
        "Per-request serving latency percentiles (TTFT / TPOT)",
        labels=("metric", "quantile"),
    )
    serve_hist = registry.histogram(
        "serve_latency_hist_seconds",
        "Per-request serving latency distributions (TTFT / TPOT)",
        labels=("metric",),
        buckets=_SERVE_BUCKETS,
    )
    #: Samples already mirrored into the histogram, per metric —
    #: histogram children are cumulative, so each scrape observes only
    #: the LatencyStat samples that arrived since the last one.
    seen: Dict[str, int] = {"ttft": 0, "tpot": 0}

    def collect(horizon: float) -> None:
        for name, counter in gateway.metrics.counters.items():
            counters.labels(name).set(float(counter.value))
        series = gateway.metrics.series.get("cluster.gateway.queue_depth")
        if series is not None and series.points:
            depth.set(series.points[-1][1])
        if audit is not None:
            audit_gauge.labels("observed").set(float(audit.observed))
            audit_gauge.labels("keys").set(float(audit.keys_seen()))
        for metric in ("ttft", "tpot"):
            stat = gateway.metrics.latencies.get(f"serve.{metric}_s")
            if stat is None or not stat.count:
                continue
            for q in (50, 95, 99):
                serve_quantiles.labels(metric, f"p{q}").set(stat.p(q))
            child = serve_hist.labels(metric)
            for sample in stat.samples[seen[metric]:]:
                child.observe(sample)
            seen[metric] = len(stat.samples)

    registry.register_collector(collect)
