"""Live ASCII dashboard over one running machine (``repro dash``).

The dashboard *observes* a simulation without perturbing it: the
serving engine's main process is started, then the kernel is advanced
in fixed slices of simulated time and one frame is rendered per slice
from the metrics registry and the critical-path profiler. Rendering is
strictly read-only — a run with ``render=False`` produces the exact
same simulation state and summary, which a test pins byte-for-byte.

Wall-clock use in this module is limited to ``time.sleep`` pacing of
the refresh loop (so a human can watch); no wall-clock value ever
enters a metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..bench.systems import SystemSpec, pipellm
from ..models import OPT_66B
from ..serving import FlexGenConfig, FlexGenEngine
from ..telemetry import recording
from ..workloads import SyntheticShape
from .profiler import CRYPTO_STAGES, TRANSFER_STAGES, profile_hub
from .registry import MetricsRegistry, bind_gateway, bind_machine

__all__ = [
    "Dashboard",
    "DashboardRun",
    "run_flexgen_dashboard",
    "run_serve_dashboard",
]


def _bar(fraction: float, width: int = 24) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + f"] {100 * fraction:5.1f}%"


_MODE_NAMES = {0.0: "SPECULATIVE", 1.0: "PROBING", 2.0: "DEGRADED"}


class Dashboard:
    """Renders one machine's live state as a fixed-width ASCII frame."""

    def __init__(self, machine, runtime=None, label: str = "", gateway=None) -> None:
        self.machine = machine
        self.runtime = runtime
        self.registry = MetricsRegistry()
        bind_machine(self.registry, machine, runtime=runtime, label=label or "dash")
        if gateway is not None:
            bind_gateway(self.registry, gateway)
        self._label = label or "dash"

    def frame(self) -> str:
        now = self.machine.sim.now
        snap = self.registry.snapshot(now)
        lines = [
            f"== repro dash · t={now * 1e3:10.3f} ms simulated ==",
            "",
            "utilization",
        ]
        for series in snap["resource_utilization"]["series"]:
            resource = series["labels"]["resource"]
            lines.append(f"  {resource.ljust(14)}{_bar(series['value'])}")

        lines.append("")
        lines.append("wire latency (simulated)")
        latency = {
            (s["labels"]["direction"], s["labels"]["quantile"]): s["value"]
            for s in snap["wire_latency_seconds"]["series"]
        }
        for direction in ("h2d", "d2h"):
            if (direction, "p50") not in latency:
                continue
            lines.append(
                f"  {direction}  p50 {latency[(direction, 'p50')] * 1e6:9.1f} us"
                f"   p95 {latency[(direction, 'p95')] * 1e6:9.1f} us"
                f"   p99 {latency[(direction, 'p99')] * 1e6:9.1f} us"
            )

        lines.append("")
        lines.append("speculation")
        hit_series = snap["speculation_hit_rate"]["series"]
        if hit_series:
            lines.append(f"  hit-rate      {_bar(hit_series[0]['value'])}")
        counters = {
            s["labels"]["name"]: s["value"]
            for s in snap["machine_counter"]["series"]
        }
        lines.append(
            f"  nops {int(counters.get('runtime.nops_sent', 0))}"
            f"   on-demand {int(counters.get('runtime.ondemand_encryptions', 0))}"
            f"   deferred {int(counters.get('runtime.deferred', 0))}"
            f"   auth-recoveries {int(counters.get('runtime.auth_recoveries', 0))}"
        )
        mode_series = snap["pipeline_mode"]["series"]
        if mode_series:
            mode = _MODE_NAMES.get(mode_series[0]["value"], "?")
            lines.append(f"  pipeline mode {mode}")

        serve = snap.get("serve_latency_seconds", {}).get("series", [])
        if serve:
            quantiles = {
                (s["labels"]["metric"], s["labels"]["quantile"]): s["value"]
                for s in serve
            }
            gateway_counters = {
                s["labels"]["name"]: s["value"]
                for s in snap.get("gateway_counter", {}).get("series", [])
            }
            lines.append("")
            lines.append("serving (TTFT / TPOT)")
            for metric in ("ttft", "tpot"):
                if (metric, "p50") not in quantiles:
                    continue
                lines.append(
                    f"  {metric}  p50 {quantiles[(metric, 'p50')] * 1e3:8.2f} ms"
                    f"   p95 {quantiles[(metric, 'p95')] * 1e3:8.2f} ms"
                    f"   p99 {quantiles[(metric, 'p99')] * 1e3:8.2f} ms"
                )
            lines.append(
                f"  completed {int(gateway_counters.get('serve.completed', 0))}"
                f"   slo-ok {int(gateway_counters.get('serve.slo_attained', 0))}"
                f"   shed {int(gateway_counters.get('serve.shed', 0))}"
            )

        tap_hub = self.machine.telemetry
        if tap_hub.enabled:
            from ..telemetry.export import event_lane

            lane_counts: Dict[str, int] = {}
            for event in tap_hub.events:
                lane = event_lane(event)
                lane_counts[lane] = lane_counts.get(lane, 0) + 1
            lanes = "  ".join(
                f"{lane}={count}" for lane, count in sorted(lane_counts.items())
            ) or "none"
            lines.append("")
            lines.append("telemetry")
            lines.append(
                f"  events {len(tap_hub.events)}"
                f"   ring-dropped {tap_hub.dropped_events}"
                f"   tap-dropped "
                f"{int(counters.get('telemetry.tap.dropped_events', 0))}"
            )
            lines.append(f"  lanes: {lanes}")

        lines.append("")
        endpoint = self.machine.cpu_endpoint
        if endpoint is not None:
            tx = endpoint.tx_iv.current
            rx = self.machine.gpu.endpoint.rx_iv.current
            status = "aligned" if tx == rx else f"desync ({tx - rx:+d})"
            lines.append(
                f"iv audit: cpu-tx {tx}  gpu-rx {rx}  {status}"
                f"   gpu auth failures {self.machine.gpu.auth_failures}"
            )

        hub = self.machine.telemetry
        if hub.enabled and hub.requests:
            profile = profile_hub(
                hub, horizon=now,
                enc_bandwidth=self.machine.params.enc_bandwidth_per_thread,
            )
            lines.append(
                f"critical path: {profile.verdict}"
                f"  (crypto {100 * profile.bucket_share(CRYPTO_STAGES):.0f}%"
                f" / transfer {100 * profile.bucket_share(TRANSFER_STAGES):.0f}%"
                f" over {len(profile.requests)} requests)"
            )
        return "\n".join(lines)


@dataclass
class DashboardRun:
    """Outcome of one dashboard-observed run.

    ``summary`` is a pure function of the simulation (never of
    rendering), so render on/off must produce identical summaries.
    """

    summary: Dict[str, Any]
    frames: List[str]


def run_flexgen_dashboard(
    system: Optional[SystemSpec] = None,
    n_requests: int = 12,
    output_len: int = 4,
    interval_s: float = 0.05,
    render: bool = True,
    sink: Optional[Callable[[str], None]] = None,
    refresh_wall_s: float = 0.0,
    seed: int = 1,
) -> DashboardRun:
    """Run FlexGen OPT-66B offloading with a live dashboard attached.

    ``interval_s`` is the frame period in **simulated** seconds;
    ``refresh_wall_s`` optionally sleeps between frames so the refresh
    is watchable in a terminal. With ``render=False`` no frame is
    built at all — the returned summary is identical either way.
    """
    if system is None:
        system = pipellm(8, 2)
    with recording():
        machine, runtime = system.build()
        config = FlexGenConfig(
            OPT_66B, SyntheticShape(32, output_len),
            batch_size=max(1, n_requests), n_requests=n_requests, seed=seed,
        )
        engine = FlexGenEngine(machine, runtime, config)
        dash = Dashboard(machine, runtime=runtime, label=system.name)

        machine.sim.process(engine._main())
        frames: List[str] = []
        while engine.result is None:
            machine.run(until=machine.sim.now + interval_s)
            if render:
                frame = dash.frame()
                frames.append(frame)
                if sink is not None:
                    sink(frame)
                if refresh_wall_s > 0.0:
                    time.sleep(refresh_wall_s)
        result = engine.result

    profile = profile_hub(
        machine.telemetry,
        horizon=machine.sim.now,
        enc_bandwidth=machine.params.enc_bandwidth_per_thread,
    )
    summary: Dict[str, Any] = {
        "system": system.name,
        "throughput_tok_s": result.throughput,
        "elapsed_s": result.elapsed,
        "generated_tokens": result.generated_tokens,
        "swap_ins": result.swap_in_count,
        "verdict": profile.verdict,
        "requests_profiled": len(profile.requests),
        "speculation_hit_rate": profile.speculation.hit_rate,
        "final_sim_time_s": machine.sim.now,
    }
    if hasattr(runtime, "stats"):
        stats = runtime.stats()
        summary["success_rate"] = stats.get("success_rate", 0.0)
        summary["nops_sent"] = stats.get("nops_sent", 0.0)
    if render and sink is not None:
        sink(dash.frame())
    return DashboardRun(summary=summary, frames=frames)


def run_serve_dashboard(
    rate: float = 10.0,
    duration: float = 4.0,
    system: str = "pipellm",
    interval_s: float = 0.25,
    render: bool = True,
    sink: Optional[Callable[[str], None]] = None,
    refresh_wall_s: float = 0.0,
    seed: int = 1,
) -> DashboardRun:
    """Online-serving run with a live dashboard over the gateway.

    Frames render replica 0's machine plus the gateway's serving
    plane: TTFT/TPOT p50/p95/p99 from the metrics registry and the
    completed / SLO-attained / shed counters. Same contract as the
    FlexGen dashboard: rendering is read-only, so ``render=False``
    yields an identical summary.
    """
    from ..bench.serve import SERVE_MAX_OUTSTANDING, SERVE_RESERVE_BYTES
    from ..cluster import Cluster
    from ..core import ClusterConfig
    from ..serve import LoadSpec, ServeFrontend, generate_load

    with recording():
        config = ClusterConfig(
            replicas=2,
            system=system,
            policy="least-loaded",
            reserve_bytes=SERVE_RESERVE_BYTES,
            max_outstanding=SERVE_MAX_OUTSTANDING,
        )
        cluster = Cluster(config)
        frontend = ServeFrontend(cluster)
        load = LoadSpec(rate=rate, duration=duration, seed=seed)
        requests = generate_load(load)
        replica = cluster.replicas[0]
        dash = Dashboard(
            replica.machine, runtime=replica.runtime,
            label=f"serve-{system}", gateway=cluster.gateway,
        )

        cluster.sim.process(frontend._arrivals(
            sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        ))
        frames: List[str] = []
        while len(frontend.responses) < len(requests):
            before = cluster.sim.now
            cluster.sim.run(until=cluster.sim.now + interval_s)
            if render:
                frame = dash.frame()
                frames.append(frame)
                if sink is not None:
                    sink(frame)
                if refresh_wall_s > 0.0:
                    time.sleep(refresh_wall_s)
            if cluster.sim.now == before:
                break  # drained without resolving everything — bug guard
        result = frontend.result(duration)
        result.trace = load.trace.name
        result.rate = load.rate

    summary = result.as_dict()
    summary["final_sim_time_s"] = cluster.sim.now
    if render and sink is not None:
        sink(dash.frame())
    return DashboardRun(summary=summary, frames=frames)
