"""Live encrypted KV-cache migration between disaggregated workers.

Disaggregated serving moves every prefilled KV cache from a prefill
worker's GPU to a decode worker's GPU — tens of megabytes per request,
on the TTFT critical path. Under confidential computing that movement
is exactly the traffic PipeLLM was built for: a strictly ordered
stream of same-sized chunks whose (destination, size) schedule a §5.1
hypothesis racer learns after one observation.

:class:`MigrationFabric` owns the cluster's migration plane:

* **per-link sessions** — every directed (prefill incarnation →
  decode incarnation) pair gets its own AES-GCM key and IV streams,
  chained off the fleet root key via the same HKDF link machinery the
  multi-GPU interconnect uses (:func:`repro.crypto.handshake.
  derive_link_session`). A recovered worker is a new incarnation, so
  post-crash streams can never collide with pre-crash ones — which
  the cluster-wide :class:`~repro.cluster.tenant.ClusterIvAudit`
  attached to every endpoint proves.
* **speculative staging** — :class:`MigrationSpeculator` (the
  :class:`~repro.parallel.speculate.LinkSpeculator` pattern applied
  per *source worker*) predicts each chunk's (destination, size); on
  a hit the chunk ships pre-encrypted under the predicted IV and the
  wire runs at the CC DMA rate with crypto off the critical path; on
  a miss the staged ciphertext is discarded *before the wire* and the
  chunk serializes behind inline AES-GCM, so TX/RX streams never
  desynchronize.
* **degradation** — a :class:`~repro.faults.policies.
  DegradationController` parks speculation under a mispredict storm;
  parked chunks take the serialized-but-safe path until the
  time-driven probe re-enables staging.

Per-chunk timing (two CC channel legs: source GPU → source CVM →
destination CVM → destination GPU; the host-to-host hop rides inside
the same occupancy, as §7.2 measures end to end):

==========  ==========================================================
system      seconds per chunk
==========  ==========================================================
native      ``2 × ncc_occupancy`` — cleartext DMA at line rate
cc          ``2 × cc_occupancy`` — inline single-thread AES serialized
            into every leg (the CC-as-shipped baseline)
pipellm     hit: ``2 × cc_dma_time`` (pre-staged ciphertext, crypto
            concurrent); miss: the serialized ``cc`` cost
==========  ==========================================================

Chunks are padded to :data:`MIGRATION_CHUNK_BYTES` so the predictor's
(destination, size) key is constant across a migration — the same
reason real transports pick one MTU and stick to it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.classify import SwapClass, TransferClassifier
from ..core.predictor import SwapPredictor
from ..crypto import derive_link_session
from ..faults.policies import DegradationController, FaultPolicy
from ..hw import MB, HardwareParams
from ..sim import Simulator
from ..tracing import active_collector

__all__ = [
    "MIGRATION_CHUNK_BYTES",
    "MigrationFabric",
    "MigrationRecord",
    "MigrationSpeculator",
]

#: Fixed migration transfer unit. One OPT-13B token is ~0.8 MB of KV,
#: so a 64-token prompt is ~50 chunks — long enough for the repetitive
#: hypothesis to win after its single cold miss.
MIGRATION_CHUNK_BYTES = 1 * MB

#: Functional payload bytes per chunk (payload tiering: the cipher
#: carries these; the chunk's logical size drives all timing).
_PAYLOAD_BYTES = 16


class MigrationSpeculator:
    """Per-source-worker schedule prediction for migration chunks.

    Mirrors :class:`~repro.parallel.speculate.LinkSpeculator`: each
    prefill worker's outgoing chunk sequence feeds its own
    :class:`~repro.core.predictor.SwapPredictor` (a chunk to decode
    worker *d* of *n* bytes is "swap-in of (d, n)"), with one shared
    :class:`DegradationController` parking speculation fabric-wide
    under a mispredict storm. Parked lookups ship nothing staged, so
    IV streams stay monotone throughout.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        policy: Optional[FaultPolicy] = None,
        faults=None,
        warmup: int = 8,
    ) -> None:
        self.clock = clock
        #: Per-source lookups excluded from the degradation EMA — a
        #: cold detector's first misses say nothing about the fabric.
        self.warmup = warmup
        self.faults = faults
        self.controller = DegradationController(policy or FaultPolicy(), clock)
        self._classifiers: Dict[str, TransferClassifier] = {}
        self._predictors: Dict[str, SwapPredictor] = {}
        self._seen: Dict[str, int] = {}
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.parked = 0

    def _predictor(self, src: str) -> SwapPredictor:
        if src not in self._predictors:
            # Every chunk is a "swap": threshold 1 keeps the weights
            # detectors (repetitive/Markov) fed for all of them.
            classifier = TransferClassifier(swap_threshold=1)
            self._classifiers[src] = classifier
            self._predictors[src] = SwapPredictor(classifier)
        return self._predictors[src]

    def lookup(self, src: str, dst: int, nbytes: int) -> bool:
        """One chunk is about to migrate: was its crypto pre-arranged?

        Always feeds the observation (the predictor keeps learning
        while parked); returns True only when the prediction matched
        *and* the degradation controller currently allows speculation.
        """
        self.controller.poll()
        predictor = self._predictor(src)
        # Migration streams are strictly ordered, same-sized chunk
        # trains — the weights-class hypotheses fit exactly.
        self._classifiers[src].register_weight_size(nbytes)
        predicted = predictor.predict(1, SwapClass.WEIGHTS)
        hit = bool(predicted) and predicted[0].key == (dst, nbytes)
        predictor.observe_swap_in(dst, nbytes)
        if hit and self.faults is not None and self.faults.migration_mispredict(
            f"{src}->d{dst}"
        ):
            hit = False
        self.lookups += 1
        self._seen[src] = self._seen.get(src, 0) + 1
        if not self.controller.speculation_enabled:
            self.parked += 1
            self.misses += 1
            return False
        if self._seen[src] > self.warmup:
            self.controller.observe(hit)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class MigrationRecord:
    """One KV migration attempt, chunk by chunk."""

    rid: int
    src: str
    dst: str
    kv_bytes: int
    chunks: int
    start: float
    end: float = 0.0
    delivered: int = 0
    hits: int = 0
    misses: int = 0
    resends: int = 0
    #: "ok" | "src-crashed" | "dst-crashed"
    status: str = "ok"
    #: True when this attempt re-ships a retained prefill copy after a
    #: decode-side crash (no prefill recompute).
    resumed: bool = False

    @property
    def complete(self) -> bool:
        return self.status == "ok" and self.delivered == self.chunks


def chunk_payload(rid: int, index: int) -> bytes:
    """Deterministic functional bytes of one KV chunk.

    Both ends derive the expectation independently, so the receiver
    can assert bit-exact round-trips without trusting the wire.
    """
    return hashlib.sha256(f"kv:{rid}:chunk{index}".encode()).digest()[:_PAYLOAD_BYTES]


class _MigrationLink:
    """One directed encrypted channel between two worker incarnations."""

    def __init__(self, label: str, session, audit) -> None:
        self.label = label
        self.tx, self.rx = session.endpoints(
            cpu_name=f"{label}:tx", gpu_name=f"{label}:rx"
        )
        if audit is not None:
            self.tx.attach_audit(audit)
            self.rx.attach_audit(audit)
        #: Wire serialization point: chunks on one directed link go
        #: back to back, concurrent migrations on it queue.
        self.busy_until = 0.0


class MigrationFabric:
    """The cluster's KV migration plane: links, crypto, speculation."""

    def __init__(
        self,
        sim: Simulator,
        fleet_key: bytes,
        params: HardwareParams,
        system: str = "pipellm",
        audit=None,
        faults=None,
        policy: Optional[FaultPolicy] = None,
        chunk_bytes: int = MIGRATION_CHUNK_BYTES,
    ) -> None:
        if system not in ("native", "cc", "pipellm"):
            raise ValueError(f"unknown migration system {system!r}")
        self.sim = sim
        self.fleet_key = bytes(fleet_key)
        self.params = params
        self.system = system
        self.audit = audit
        self.faults = faults
        self.chunk_bytes = chunk_bytes
        self.speculator: Optional[MigrationSpeculator] = None
        if system == "pipellm":
            self.speculator = MigrationSpeculator(
                clock=lambda: sim.now, policy=policy, faults=faults
            )
        self._links: Dict[Tuple[str, str], _MigrationLink] = {}
        self.records: List[MigrationRecord] = []
        self.bytes_moved = 0
        #: Pure wire occupancy (queueing excluded) — the denominator
        #: of the speculation-recovery acceptance math.
        self.wire_seconds = 0.0
        self.chunks_shipped = 0

    # -- links -----------------------------------------------------------

    def link(self, src, dst) -> _MigrationLink:
        """The directed link between two *incarnations* (cached).

        The label bakes in both epochs, so a crashed-and-recovered
        worker talks over a freshly keyed channel: HKDF with a new
        info string yields a new AES-GCM key and new starting IVs,
        and the old incarnation's lanes simply stop moving.
        """
        src_label = f"{src.label}.e{src.epoch}"
        dst_label = f"{dst.label}.e{dst.epoch}"
        key = (src_label, dst_label)
        if key not in self._links:
            label = f"migrate:{src_label}->{dst_label}"
            session = derive_link_session(self.fleet_key, label)
            self._links[key] = _MigrationLink(label, session, self.audit)
        return self._links[key]

    # -- per-chunk timing -------------------------------------------------

    def chunk_seconds(self, staged: bool) -> float:
        """Wire occupancy of one chunk (two CC channel legs)."""
        p, n = self.params, self.chunk_bytes
        if self.system == "native":
            return 2.0 * p.ncc_occupancy(n)
        if staged:
            return 2.0 * p.cc_dma_time(n)
        return 2.0 * p.cc_occupancy(n)

    # -- migration -------------------------------------------------------

    def migrate(self, creq, src, dst, resumed: bool = False):
        """Ship one request's KV cache ``src`` → ``dst`` (a process).

        Yields simulator timeouts; returns the :class:`MigrationRecord`
        (via ``yield from``). Aborts — without crashing the process —
        the moment either incarnation dies, leaving ``status`` set so
        the scheduler can pick resume vs replay.
        """
        chunks = max(1, -(-creq.kv_bytes // self.chunk_bytes))
        src_epoch, dst_epoch = src.epoch, dst.epoch
        link = self.link(src, dst)
        record = MigrationRecord(
            rid=creq.rid, src=link.label.split("->")[0][len("migrate:"):],
            dst=f"{dst.label}.e{dst.epoch}", kv_bytes=creq.kv_bytes,
            chunks=chunks, start=self.sim.now, resumed=resumed,
        )
        self.records.append(record)
        collector = active_collector()
        span = None
        if collector is not None and creq.trace is not None:
            span = collector.begin(
                creq.trace, f"migrate:{src.label}->{dst.label}", "migration",
                "fabric", self.sim.now,
            )
        for index in range(chunks):
            if not (src.alive and src.epoch == src_epoch):
                record.status = "src-crashed"
                break
            if not (dst.alive and dst.epoch == dst_epoch):
                record.status = "dst-crashed"
                break
            staged = False
            if self.speculator is not None:
                staged = self.speculator.lookup(
                    f"{src.label}.e{src_epoch}", dst.worker_id, self.chunk_bytes
                )
            payload = chunk_payload(creq.rid, index)
            if self.system == "native":
                message = None
            elif staged:
                # The §5.1 staged fast path, verbatim from the
                # interconnect: encrypt under the guessed counter,
                # commit when the ciphertext actually ships, and the
                # committed counter MUST equal the guess (a mismatch
                # here would silently desync the streams).
                predicted = link.tx.tx_iv.current
                message = link.tx.encrypt_with_iv(
                    payload, predicted, nbytes_logical=self.chunk_bytes
                )
                committed = link.tx.commit_tx_iv()
                assert committed == predicted, "staged migration IV desynced"
            else:
                # Serialized: inline encryption consumes the next IV
                # on the spot; any discarded staged ciphertext never
                # touched the wire, so nothing desyncs.
                message = link.tx.encrypt_next(
                    payload, nbytes_logical=self.chunk_bytes
                )
            seconds = self.chunk_seconds(staged)
            if self.faults is not None and self.faults.migration_drop(link.label):
                # Wire loss: retransmit the SAME ciphertext — the IV
                # was consumed exactly once, only occupancy doubles.
                seconds += self.chunk_seconds(staged=False)
                record.resends += 1
            start = max(self.sim.now, link.busy_until)
            link.busy_until = start + seconds
            self.wire_seconds += seconds
            self.chunks_shipped += 1
            yield self.sim.timeout(link.busy_until - self.sim.now)
            if not (dst.alive and dst.epoch == dst_epoch):
                record.status = "dst-crashed"
                break
            if message is not None:
                plain = link.rx.decrypt_next(message)
                assert plain == payload, "migrated KV chunk corrupted"
            record.delivered += 1
            record.hits += int(staged)
            record.misses += int(message is not None and not staged)
            self.bytes_moved += self.chunk_bytes
        record.end = self.sim.now
        if span is not None:
            collector.end(
                span, self.sim.now,
                status="ok" if record.complete else record.status,
            )
        return record

    # -- stats -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.speculator.hit_rate if self.speculator is not None else 0.0

    def stats(self) -> Dict[str, float]:
        done = [r for r in self.records if r.complete]
        return {
            "migrations": len(self.records),
            "completed": len(done),
            "resumed": sum(1 for r in self.records if r.resumed),
            "chunks": sum(r.delivered for r in self.records),
            "resends": sum(r.resends for r in self.records),
            "bytes": self.bytes_moved,
            "hit_rate": self.hit_rate,
            "links": len(self._links),
            "wire_seconds": self.wire_seconds,
            "chunks_shipped": self.chunks_shipped,
        }
