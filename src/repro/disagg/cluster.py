"""Disaggregated fleet orchestration: pools + scheduler + workload.

:class:`DisaggCluster` builds the whole split-serving fleet inside a
**single shared simulator** — dedicated prefill workers and
continuous-batching decode workers, each its own attested
:class:`repro.cc.Machine` incarnation — wires them to a
:class:`~repro.disagg.migration.MigrationFabric` whose per-link
AES-GCM sessions all chain off one fleet root key, drives a
multi-tenant Poisson workload through the migration-aware scheduler,
optionally crashes a worker mid-flight, and folds everything into a
:class:`DisaggResult`.

One :class:`~repro.cluster.tenant.ClusterIvAudit` watches every
migration endpoint ever derived — across crashes, re-attestations and
resumed migrations — so a completed run *is* the proof that no IV was
ever reused anywhere on the migration plane.

With ``prefill_workers=0`` the same machinery runs the monolithic
baseline (inline prefill on the decode pool, no migration), which is
what the TTFT/goodput comparisons in :mod:`repro.bench.disagg` are
measured against.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster import ClusterIvAudit
from ..cluster.cluster import CLUSTER_TRACE
from ..core import DisaggConfig
from ..crypto import hkdf
from ..faults import FaultInjector
from ..hw import HardwareParams, get_params
from ..models import KvGeometry, OPT_13B, ModelSpec
from ..sim import SeededRng, Simulator, default_seed, mean, percentile
from ..workloads import TraceSpec, poisson_trace
from .migration import MigrationFabric
from .scheduler import DisaggScheduler
from .workers import DecodeWorker, DisaggRequest, PrefillWorker

__all__ = ["DisaggCluster", "DisaggResult", "run_disagg"]


@dataclass
class DisaggResult:
    """Everything one disaggregated run measured."""

    prefill_workers: int
    decode_workers: int
    system: str
    duration: float
    offered: int
    completed: int
    shed: int
    unfinished: int
    failovers: int
    replays: int
    resumes: int
    crashes: int
    #: Migration plane: attempts / completions / chunks delivered /
    #: wire retransmissions / speculation hit rate / encrypted links.
    migrations: int
    migrations_completed: int
    migration_chunks: int
    migration_resends: int
    migration_hit_rate: float
    migration_links: int
    #: Mean wire seconds per delivered migration chunk (the number the
    #: speculation-recovery acceptance math runs on).
    migration_s_per_chunk: float
    #: Distinct (key, stream) IV lanes audited / total IVs observed.
    iv_lanes: int
    iv_observed: int
    #: Time-to-first-token per completed request (seconds).
    ttfts: List[float] = field(default_factory=list)
    #: End-to-end latencies of completed requests (seconds).
    latencies: List[float] = field(default_factory=list)
    #: worker label -> GPU-busy fraction of the run.
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Completed requests per simulated second."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def p50_ttft(self) -> float:
        return percentile(self.ttfts, 50)

    @property
    def p99_ttft(self) -> float:
        return percentile(self.ttfts, 99)

    @property
    def mean_ttft(self) -> float:
        return mean(self.ttfts)

    @property
    def mean_latency(self) -> float:
        return mean(self.latencies)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies, 99)

    def as_dict(self) -> Dict[str, object]:
        return {
            "prefill_workers": self.prefill_workers,
            "decode_workers": self.decode_workers,
            "system": self.system,
            "duration_s": self.duration,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "unfinished": self.unfinished,
            "failovers": self.failovers,
            "replays": self.replays,
            "resumes": self.resumes,
            "crashes": self.crashes,
            "migrations": self.migrations,
            "migrations_completed": self.migrations_completed,
            "migration_chunks": self.migration_chunks,
            "migration_resends": self.migration_resends,
            "migration_hit_rate": self.migration_hit_rate,
            "migration_links": self.migration_links,
            "migration_s_per_chunk": self.migration_s_per_chunk,
            "iv_lanes": self.iv_lanes,
            "iv_observed": self.iv_observed,
            "goodput_rps": self.goodput,
            "mean_ttft_s": self.mean_ttft,
            "p50_ttft_s": self.p50_ttft,
            "p99_ttft_s": self.p99_ttft,
            "mean_latency_s": self.mean_latency,
            "p99_latency_s": self.p99_latency,
            "utilization": dict(self.utilization),
        }


class DisaggCluster:
    """Prefill + decode pools + migration fabric in one simulator."""

    def __init__(
        self,
        config: DisaggConfig,
        spec: ModelSpec = OPT_13B,
        params: Optional[HardwareParams] = None,
    ) -> None:
        self.config = config
        self.spec = spec
        self.params = params or get_params(config.hw_pack or "h100-cc")
        self.sim = Simulator()
        self.audit = ClusterIvAudit()
        self.geometry = KvGeometry(spec, block_size=config.block_size)
        self.faults: Optional[FaultInjector] = None
        if config.fault_plan is not None:
            self.faults = FaultInjector(
                config.fault_plan, seed=default_seed(config.seed)
            ).bind(self.sim)

        def child(label: str):
            return None if self.faults is None else self.faults.child(label)

        self.prefill_pool = [
            PrefillWorker(
                self.sim, worker_id=i, spec=spec, system=config.system,
                block_size=config.block_size, reserve_bytes=config.reserve_bytes,
                params=self.params, faults=child(f"p{i}"),
            )
            for i in range(config.prefill_workers)
        ]
        self.decode_pool = [
            DecodeWorker(
                self.sim, worker_id=i, spec=spec, system=config.system,
                block_size=config.block_size, reserve_bytes=config.reserve_bytes,
                params=self.params, faults=child(f"d{i}"),
            )
            for i in range(config.decode_workers)
        ]
        # The fleet root key every migration link chains off. Derived,
        # not random: same seed → same keys → byte-identical replays.
        fleet_key = hkdf(
            default_seed(config.seed).to_bytes(8, "big"),
            salt=b"pipellm-disagg", info=b"fleet-root", length=16,
        )
        self.fabric = MigrationFabric(
            self.sim, fleet_key, self.params, system=config.system,
            audit=self.audit, faults=self.faults,
        )
        self.scheduler = DisaggScheduler(
            self.sim, self.prefill_pool, self.decode_pool, self.fabric,
            decode_policy=config.decode_policy,
        )

    @property
    def workers(self) -> List:
        return [*self.prefill_pool, *self.decode_pool]

    # -- workload --------------------------------------------------------

    def workload(
        self,
        rate: float,
        duration: float,
        tenants: int = 4,
        trace: TraceSpec = CLUSTER_TRACE,
        parallel_n: int = 1,
    ) -> List[DisaggRequest]:
        """Poisson arrivals spread over ``tenants`` tenants.

        Seeded by the config's seed (overridable process-wide via the
        CLI ``--seed``), so runs are reproducible end to end. The KV
        footprint each request will migrate is fixed here, from the
        prompt alone — decode-side growth never crosses the wire.
        """
        rng = SeededRng(default_seed(self.config.seed))
        requests = poisson_trace(trace, rate, duration, rng, parallel_n=parallel_n)
        rng_t = rng.fork("tenants")
        out: List[DisaggRequest] = []
        for request in requests:
            tenant = f"tenant-{rng_t.randint(0, tenants - 1)}"
            out.append(DisaggRequest(
                rid=request.request_id,
                tenant=tenant,
                request=request,
                submit_time=request.arrival_time,
                kv_bytes=self.geometry.bytes_for_tokens(request.prompt_len)
                * request.parallel_n,
            ))
        return out

    # -- execution -------------------------------------------------------

    def run(
        self,
        requests: List[DisaggRequest],
        until: Optional[float] = None,
    ) -> DisaggResult:
        """Drive ``requests`` through the fleet and summarize the run."""
        self.sim.process(self._arrivals(sorted(requests, key=lambda c: c.submit_time)))
        if self.config.fail_at is not None:
            self.sim.process(self._fault())
        plan = self.config.fault_plan
        if self.faults is not None and plan is not None and plan.replica_crash_rate > 0:
            horizon = plan.stop
            if horizon is None:
                horizon = max((c.submit_time for c in requests), default=0.0)
            self.sim.process(self._fault_plane(horizon))
        self.sim.run(until=until)
        return self._result(requests)

    def _arrivals(self, requests: List[DisaggRequest]):
        for creq in requests:
            delay = creq.submit_time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            creq.submit_time = self.sim.now
            self.scheduler.submit(creq)

    def _fault(self):
        config = self.config
        yield self.sim.timeout(config.fail_at)
        self.scheduler.fail(config.fail_kind, config.fail_index)
        if config.recover_after > 0:
            yield self.sim.timeout(config.recover_after)
            self.scheduler.recover(config.fail_kind, config.fail_index)

    def _fault_plane(self, horizon: float):
        """Random worker crashes across both pools, plan-paced."""
        inj = self.faults
        plan = self.config.fault_plan
        while True:
            interval = inj.next_crash_interval()
            if interval is None or self.sim.now + interval > horizon:
                return
            yield self.sim.timeout(interval)
            if not plan.active(self.sim.now):
                continue
            index = inj.pick_replica(len(self.workers))
            kind = "prefill" if index < len(self.prefill_pool) else "decode"
            pool_index = index if kind == "prefill" else index - len(self.prefill_pool)
            pool = self.prefill_pool if kind == "prefill" else self.decode_pool
            if not pool[pool_index].alive:
                continue
            inj.record_crash(index)
            self.scheduler.fail(kind, pool_index)
            if plan.replica_recover_after > 0:
                self.sim.process(self._recover_later(
                    kind, pool_index, plan.replica_recover_after
                ))

    def _recover_later(self, kind: str, index: int, delay: float):
        yield self.sim.timeout(delay)
        self.scheduler.recover(kind, index)

    def _result(self, requests: List[DisaggRequest]) -> DisaggResult:
        scheduler = self.scheduler
        completed = scheduler.completed
        unfinished = [c for c in requests if c.state not in ("done", "shed")]
        resolved = [
            c.finish_time
            for c in completed + scheduler.shed
            if not math.isnan(c.finish_time)
        ]
        duration = max(resolved) if resolved and not unfinished else self.sim.now
        stats = self.fabric.stats()
        chunks = stats["chunks"]
        shipped = stats["chunks_shipped"]
        return DisaggResult(
            prefill_workers=self.config.prefill_workers,
            decode_workers=self.config.decode_workers,
            system=self.config.system,
            duration=duration,
            offered=len(requests),
            completed=len(completed),
            shed=len(scheduler.shed),
            unfinished=len(unfinished),
            failovers=scheduler.failovers,
            replays=scheduler.replays,
            resumes=scheduler.resumes,
            crashes=sum(w.crashes for w in self.workers),
            migrations=stats["migrations"],
            migrations_completed=stats["completed"],
            migration_chunks=chunks,
            migration_resends=stats["resends"],
            migration_hit_rate=stats["hit_rate"],
            migration_links=stats["links"],
            migration_s_per_chunk=(
                stats["wire_seconds"] / shipped if shipped else 0.0
            ),
            iv_lanes=self.audit.keys_seen(),
            iv_observed=self.audit.observed,
            ttfts=[c.ttft for c in completed if not math.isnan(c.ttft)],
            latencies=[c.latency for c in completed if not math.isnan(c.latency)],
            utilization={
                w.label: (w.busy_seconds / duration if duration > 0 else 0.0)
                for w in self.workers
            },
        )


def run_disagg(
    config: DisaggConfig,
    rate: float = 4.0,
    duration: float = 20.0,
    tenants: int = 4,
    spec: ModelSpec = OPT_13B,
    trace: TraceSpec = CLUSTER_TRACE,
    params: Optional[HardwareParams] = None,
) -> DisaggResult:
    """Build a disagg fleet, generate its workload, run it, fold it up."""
    cluster = DisaggCluster(config, spec=spec, params=params)
    return cluster.run(cluster.workload(rate, duration, tenants=tenants, trace=trace))
