"""Disaggregated serving workers: prefill pools and decode pools.

Disaggregation splits the two phases of LLM inference onto dedicated
machines. :class:`PrefillWorker` runs prompt prefills back to back —
one compute-dense burst per request, no batch to disturb — then hands
the finished KV cache to the migration fabric. :class:`DecodeWorker`
runs a vLLM-style continuous-batching decode loop over requests whose
KV has already *arrived*; it never computes a prefill (except in the
monolithic-baseline topology, where it must, inline, serialized with
its own decode steps — exactly the head-of-line blocking disaggregation
exists to remove).

Both worker kinds are full attested incarnations on the shared
simulator, with the same crash/recover epoch discipline as
:class:`repro.cluster.replica.Replica`: a crash interrupts the serving
loop, orphans resident work back to the scheduler, and discards every
incarnation-local secret (retained KV copies included); recovery
re-runs the attested bring-up with fresh seeds, so post-crash traffic
rides freshly keyed channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..cc import CcMode, Machine, build_attested_machine
from ..hw import HardwareParams, default_params
from ..models import KvGeometry, LayerWork, ModelSpec, TransformerCostModel
from ..sim import Simulator, mean
from ..tracing import active_collector
from ..workloads import Request

__all__ = ["DisaggRequest", "WorkerDead", "PrefillWorker", "DecodeWorker"]


class WorkerDead(RuntimeError):
    """A request was submitted to a crashed worker."""


@dataclass
class DisaggRequest:
    """One request as it moves through the disaggregated pipeline."""

    rid: int
    tenant: str
    request: Request
    submit_time: float
    #: KV bytes produced by prefill (what migration must move).
    kv_bytes: int = 0
    #: "queued" | "prefilling" | "migrating" | "holding" | "decoding"
    #: | "done" | "shed"
    state: str = "queued"
    prefill_done_time: float = math.nan
    #: When the KV cache became resident on the decode worker.
    kv_ready_time: float = math.nan
    first_token_time: float = math.nan
    finish_time: float = math.nan
    #: Prefill executions (1 = no replay).
    attempts: int = 0
    #: Migrations resumed from a retained prefill copy (no recompute).
    resumes: int = 0
    #: Worker labels this request touched, in order.
    history: List[str] = field(default_factory=list)
    #: Causal-trace linkage (set only when a collector is active).
    trace: Optional[Any] = None
    trace_queue: Optional[Any] = None

    @property
    def ttft(self) -> float:
        """Submit-to-first-token latency (nan until the first token)."""
        return self.first_token_time - self.submit_time

    @property
    def latency(self) -> float:
        """End-to-end latency (nan until done)."""
        return self.finish_time - self.submit_time


class _Worker:
    """Shared incarnation machinery of both worker kinds."""

    kind = "worker"

    def __init__(
        self,
        sim: Simulator,
        worker_id: int,
        spec: ModelSpec,
        system: str = "pipellm",
        block_size: int = 16,
        reserve_bytes: int = 4 << 30,
        params: Optional[HardwareParams] = None,
        faults=None,
    ) -> None:
        self.sim = sim
        self.worker_id = worker_id
        self.spec = spec
        self.system = system
        self.block_size = block_size
        self.reserve_bytes = reserve_bytes
        self.params = params or default_params()
        self.faults = faults
        self.cost = TransformerCostModel(spec)
        self.geometry = KvGeometry(spec, block_size=block_size)

        #: Set by the scheduler when the worker joins its pool.
        self.scheduler = None

        self.epoch = 0
        self.alive = False
        self.crashes = 0
        self.completed = 0
        self._busy_acc = 0.0

        self.machine: Optional[Machine] = None
        self.boot()

    @property
    def label(self) -> str:
        """Stable pool-wide name ("p0", "d1", ...)."""
        return f"{self.kind[0]}{self.worker_id}"

    @property
    def replica_id(self) -> int:
        """Alias so the cluster routing policies rank workers as-is."""
        return self.worker_id

    @property
    def incarnation(self) -> str:
        return f"{self.kind}-{self.worker_id}.e{self.epoch}"

    # -- lifecycle -------------------------------------------------------

    def boot(self) -> None:
        """Bring up a fresh incarnation: attested machine, empty state."""
        self.epoch += 1
        suffix = f"{self.label}.e{self.epoch}".encode()
        if self.system == "native":
            self.machine = Machine(
                CcMode.DISABLED, params=self.params, sim=self.sim,
                faults=self.faults,
            )
        else:
            # Fresh attested bring-up per incarnation: epoch-derived
            # seeds give each incarnation its own CVM↔GPU session key
            # and IV streams, and the migration fabric keys its links
            # by (label, epoch), so nothing post-crash can collide
            # with anything pre-crash.
            self.machine = build_attested_machine(
                params=self.params,
                sim=self.sim,
                device_id=f"gpu-{self.label}",
                host_seed=b"cvm:" + suffix,
                device_seed=b"dev:" + suffix,
                faults=self.faults,
            )
        self.machine.telemetry.label = self.incarnation
        self._boot_state()
        self.alive = True
        self._wake = self.sim.event()
        self._loop_proc = self.sim.process(self._loop(self.epoch))

    def crash(self) -> List[DisaggRequest]:
        """Kill this incarnation; returns every orphaned request."""
        if not self.alive:
            return []
        self.alive = False
        self.crashes += 1
        self._busy_acc += self.machine.gpu.compute_seconds
        if self._loop_proc.is_alive:
            self._loop_proc.interrupt("crash")
        return self._orphans()

    def recover(self) -> None:
        """Re-attest and rejoin the pool as a fresh incarnation."""
        if not self.alive:
            self.boot()

    @property
    def busy_seconds(self) -> float:
        """GPU-busy seconds over every incarnation so far."""
        current = self.machine.gpu.compute_seconds if self.alive else 0.0
        return self._busy_acc + current

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    # -- subclass surface -------------------------------------------------

    def _boot_state(self) -> None:
        raise NotImplementedError

    def _orphans(self) -> List[DisaggRequest]:
        raise NotImplementedError

    def _loop(self, epoch: int):
        raise NotImplementedError

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"{type(self).__name__}({self.worker_id}, {state}, "
            f"epoch={self.epoch}, outstanding={self.outstanding})"
        )


class PrefillWorker(_Worker):
    """One dedicated prompt-prefill machine.

    Prefills run one request at a time, back to back — the compute
    burst is dense enough that batching prompts buys nothing and only
    delays the head of the queue. The finished KV cache is *retained*
    (a host-side copy inside the CVM) until the scheduler releases it
    on decode completion, which is what makes migration *resume* —
    re-shipping the copy after a decode-side crash, with no prefill
    recompute — possible at all.
    """

    kind = "prefill"

    def _boot_state(self) -> None:
        self._queue: List[DisaggRequest] = []
        self._active: Optional[DisaggRequest] = None
        #: rid -> retained KV bytes (incarnation-local: a crash loses
        #: the copies, forcing replay).
        self._retained: dict = {}

    def _orphans(self) -> List[DisaggRequest]:
        orphans = list(self._queue)
        if self._active is not None:
            orphans.insert(0, self._active)
        self._queue = []
        self._active = None
        self._retained = {}
        return orphans

    # -- scheduler-facing surface ----------------------------------------

    @property
    def outstanding(self) -> int:
        """Prefills resident here (the placement load signal)."""
        return len(self._queue) + (1 if self._active is not None else 0)

    def submit(self, creq: DisaggRequest) -> None:
        if not self.alive:
            raise WorkerDead(f"{self.label} is down")
        creq.state = "prefilling"
        creq.history.append(self.label)
        self._queue.append(creq)
        self._kick()

    def has_kv(self, rid: int) -> bool:
        """Is this request's KV copy still retained here?"""
        return self.alive and rid in self._retained

    def release(self, rid: int) -> None:
        """Drop the retained copy (decode finished or replayed away)."""
        self._retained.pop(rid, None)

    # -- serving loop ----------------------------------------------------

    def _loop(self, epoch: int):
        sim = self.sim
        while self.alive and self.epoch == epoch:
            if not self._queue:
                self._wake = sim.event()
                yield self._wake
                continue
            creq = self._queue.pop(0)
            self._active = creq
            start = sim.now
            work = self.cost.prefill(
                creq.request.prompt_len * creq.request.parallel_n
            )
            yield self.machine.gpu.compute(
                work.flops, work.bytes_touched, layers=self.spec.n_layers
            )
            sim.tracer.record(f"disagg.{self.label}", "prefill", start, sim.now)
            collector = active_collector()
            if collector is not None and creq.trace is not None:
                collector.add(
                    creq.trace, "prefill", "compute", self.incarnation,
                    start, sim.now,
                )
            self._retained[creq.rid] = creq.kv_bytes
            creq.prefill_done_time = sim.now
            self._active = None
            self.completed += 1
            # Prefill samples the first token itself — TTFT is prefill
            # completion; migration gates the *second* token onward.
            self.scheduler.on_token(creq, self, 1)
            self.scheduler.on_prefill_done(creq, self)


@dataclass
class _Decoding:
    """A request resident in one decode worker's batch."""

    creq: DisaggRequest
    #: KV bytes reserved for the full prompt+output horizon.
    reserved: int
    #: Prompt tokens still to prefill inline (monolithic mode only).
    prefill_tokens: int = 0
    generated: int = 0

    @property
    def done(self) -> bool:
        return self.generated >= self.creq.request.output_len

    def context_len(self) -> int:
        return self.creq.request.prompt_len + self.generated


class DecodeWorker(_Worker):
    """One continuous-batching decode machine.

    Requests enter through :meth:`submit_ready` (their KV migrated in —
    the disaggregated path) or :meth:`submit_local` (monolithic
    baseline: the prompt must be prefilled *here*, inside the decode
    loop, stretching the step every other resident request is waiting
    on). Admission reserves KV blocks for the full prompt+output
    horizon; when the budget is exhausted, arrivals hold in the local
    queue until completions free room — the decode-side half of
    hold-until-KV-arrival.
    """

    kind = "decode"

    def _boot_state(self) -> None:
        self._queue: List[DisaggRequest] = []
        self.running: List[_Decoding] = []
        total_blocks = self.geometry.gpu_block_budget(
            self.params.gpu_memory_bytes, reserved_bytes=self.reserve_bytes
        )
        if total_blocks <= 0:
            raise ValueError("model leaves no GPU room for KV cache")
        self.budget_bytes = total_blocks * self.geometry.block_bytes
        self.resident_bytes = 0
        self.steps = 0

    def _orphans(self) -> List[DisaggRequest]:
        orphans = [d.creq for d in self.running] + list(self._queue)
        self._queue = []
        self.running = []
        self.resident_bytes = 0
        return orphans

    # -- scheduler-facing surface ----------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._queue) + len(self.running)

    def kv_reservation(self, creq: DisaggRequest) -> int:
        request = creq.request
        return self.geometry.bytes_for_tokens(
            request.prompt_len + request.output_len
        ) * request.parallel_n

    def submit_ready(self, creq: DisaggRequest) -> None:
        """Admit a request whose KV cache has arrived (disagg path)."""
        if not self.alive:
            raise WorkerDead(f"{self.label} is down")
        creq.state = "holding"
        creq.history.append(self.label)
        self._queue.append(creq)
        self._kick()

    def submit_local(self, creq: DisaggRequest) -> None:
        """Accept a request that must prefill *here* (monolithic)."""
        if not self.alive:
            raise WorkerDead(f"{self.label} is down")
        creq.state = "holding"
        creq.history.append(self.label)
        creq.kv_ready_time = self.sim.now  # KV is born local.
        self._queue.append(creq)
        self._kick()

    # -- serving loop ----------------------------------------------------

    def _loop(self, epoch: int):
        sim = self.sim
        while self.alive and self.epoch == epoch:
            admitted = self._admit()
            if not self.running:
                self._wake = sim.event()
                yield self._wake
                continue
            step_start = sim.now
            work = self._step_work(admitted)
            yield self.machine.gpu.compute(
                work.flops, work.bytes_touched, layers=work.layers
            )
            self.steps += 1
            sim.tracer.record(f"disagg.{self.label}", "step", step_start, sim.now)
            collector = active_collector()
            if collector is not None and sim.now > step_start:
                for decoding in self.running:
                    if decoding.creq.trace is not None:
                        collector.add(
                            decoding.creq.trace, "step", "compute",
                            self.incarnation, step_start, sim.now,
                        )
            self._advance()

    def _admit(self) -> List[_Decoding]:
        admitted: List[_Decoding] = []
        collector = active_collector()
        while self._queue:
            creq = self._queue[0]
            reserved = self.kv_reservation(creq)
            fits = self.resident_bytes + reserved <= self.budget_bytes
            if not fits and self.running:
                break  # Hold until completions free KV room.
            if not fits:
                # Nothing running and it still cannot fit: the request
                # exceeds this worker's entire KV budget — shed it.
                self._queue.pop(0)
                self.scheduler.on_reject(creq, self, "kv-budget")
                continue
            self._queue.pop(0)
            self.resident_bytes += reserved
            prefill = (
                creq.request.prompt_len if math.isnan(creq.prefill_done_time)
                else 0
            )
            if (collector is not None and creq.trace is not None
                    and not math.isnan(creq.kv_ready_time)
                    and self.sim.now > creq.kv_ready_time):
                collector.add(
                    creq.trace, "kv-hold", "hold", self.incarnation,
                    creq.kv_ready_time, self.sim.now,
                )
            creq.state = "decoding"
            # A migrated request's first token already left the prefill
            # worker; decode owes the remaining output_len - 1.
            generated = 1 if (
                prefill == 0 and not math.isnan(creq.first_token_time)
            ) else 0
            admitted.append(_Decoding(
                creq, reserved, prefill_tokens=prefill, generated=generated
            ))
            self.running.append(admitted[-1])
        return admitted

    def _step_work(self, admitted: List[_Decoding]) -> LayerWork:
        # Monolithic inline prefills ride inside the batch step —
        # every resident request's next token waits on them.
        prefill_tokens = sum(
            d.prefill_tokens * d.creq.request.parallel_n for d in admitted
        )
        decode = [d for d in self.running if d.prefill_tokens == 0 or d not in admitted]
        decode_seqs = sum(d.creq.request.parallel_n for d in decode)
        flops = 0.0
        bytes_touched = 0.0
        if prefill_tokens:
            work = self.cost.prefill(prefill_tokens)
            flops += work.flops
            bytes_touched += work.bytes_touched
        if decode_seqs:
            ctx = mean([float(d.context_len()) for d in decode])
            work = self.cost.decode_step(decode_seqs, ctx)
            flops += work.flops
            bytes_touched += work.bytes_touched
        return LayerWork(flops, bytes_touched, layers=self.spec.n_layers)

    def _advance(self) -> None:
        now = self.sim.now
        still: List[_Decoding] = []
        for decoding in self.running:
            creq = decoding.creq
            if decoding.prefill_tokens:
                decoding.prefill_tokens = 0
                creq.prefill_done_time = now
            decoding.generated += 1
            self.scheduler.on_token(creq, self, decoding.generated)
            if decoding.done:
                self.resident_bytes -= decoding.reserved
                self.completed += 1
                self.scheduler.on_complete(creq, self)
            else:
                still.append(decoding)
        self.running = still
