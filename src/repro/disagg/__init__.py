"""Disaggregated prefill/decode serving with live encrypted KV migration.

The package splits LLM serving across dedicated prefill and decode
pools inside one simulator and moves every finished KV cache between
them as a speculatively pipelined AES-GCM chunk stream — PipeLLM's
§5.1 machinery applied to the one transfer disaggregation cannot
avoid. See :mod:`repro.disagg.cluster` for the orchestration entry
point (:func:`run_disagg`) and :mod:`repro.bench.disagg` for the
acceptance campaign behind ``python -m repro disagg``.
"""

from .cluster import DisaggCluster, DisaggResult, run_disagg
from .migration import (
    MIGRATION_CHUNK_BYTES,
    MigrationFabric,
    MigrationRecord,
    MigrationSpeculator,
)
from .scheduler import DisaggScheduler
from .workers import DecodeWorker, DisaggRequest, PrefillWorker, WorkerDead

__all__ = [
    "MIGRATION_CHUNK_BYTES",
    "DecodeWorker",
    "DisaggCluster",
    "DisaggRequest",
    "DisaggResult",
    "DisaggScheduler",
    "MigrationFabric",
    "MigrationRecord",
    "MigrationSpeculator",
    "PrefillWorker",
    "WorkerDead",
    "run_disagg",
]
