"""The migration-aware scheduler over disaggregated worker pools.

One :class:`DisaggScheduler` routes every request through the
three-stage disaggregated lifecycle:

1. **prefill placement** — least-loaded over the *raw* prefill pool
   (the routing policies' own liveness filter is what keeps a stale
   pool list from steering work at a dead incarnation);
2. **migration** — on prefill completion the scheduler picks the
   decode destination (tenant-affinity rendezvous by default, so a
   tenant's KV keeps landing near its past KV) and drives the
   encrypted chunk stream through the :class:`~repro.disagg.migration.
   MigrationFabric`, holding the request until its KV has fully
   arrived;
3. **decode hand-off** — only then does the request enter the decode
   worker's admission queue (which may hold it further under KV
   pressure — hold-until-KV-arrival on both sides of the wire).

Failover implements the resume-vs-replay decision rule:

* the **source** died (mid-migration or before) → the retained KV copy
  is gone → **replay**: re-run prefill on a surviving prefill worker;
* the **destination** died while the request was still **holding**
  (KV arrived, no decode step yet) and the source still retains the
  prefill copy → **resume**: re-migrate the retained copy to a new
  destination, no recompute;
* the destination died after **decode started** → the decode-side KV
  has outgrown the retained prefill copy → **replay** (the retained
  copy alone cannot reconstruct the lost generation state).

With an empty prefill pool the scheduler runs the **monolithic
baseline**: requests route least-loaded straight to decode workers,
which prefill inline — no migration, but every resident request's
next token waits behind each newcomer's prompt.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..cluster import make_policy
from ..sim import Simulator
from ..tracing import active_collector
from .migration import MigrationFabric
from .workers import DecodeWorker, DisaggRequest, PrefillWorker

__all__ = ["DisaggScheduler"]


class DisaggScheduler:
    """Routes, migrates, and fails over disaggregated requests."""

    def __init__(
        self,
        sim: Simulator,
        prefill_pool: List[PrefillWorker],
        decode_pool: List[DecodeWorker],
        fabric: MigrationFabric,
        decode_policy: str = "affinity",
    ) -> None:
        self.sim = sim
        self.prefill_pool = prefill_pool
        self.decode_pool = decode_pool
        self.fabric = fabric
        for worker in [*prefill_pool, *decode_pool]:
            worker.scheduler = self
        #: Prefill placement tracks instantaneous imbalance; decode
        #: placement chases KV locality (rendezvous by tenant).
        self.prefill_policy = make_policy("least-loaded")
        self.decode_policy = make_policy(decode_policy)
        self.mono_policy = make_policy("least-loaded")

        self.completed: List[DisaggRequest] = []
        self.shed: List[DisaggRequest] = []
        self.failovers = 0
        self.replays = 0
        self.resumes = 0
        #: Requests with no live worker to route to (flushed on recovery).
        self._parked: List[DisaggRequest] = []
        #: (request, source) pairs whose migration awaits a live decode
        #: worker (flushed on recovery).
        self._parked_migrations: List[Tuple[DisaggRequest, PrefillWorker]] = []

    @property
    def monolithic(self) -> bool:
        """No prefill pool: decode workers prefill inline (baseline)."""
        return not self.prefill_pool

    # -- intake ----------------------------------------------------------

    def submit(self, creq: DisaggRequest) -> None:
        """Accept one request into the disaggregated pipeline."""
        collector = active_collector()
        if collector is not None:
            creq.trace = collector.start_trace(
                f"disagg.req-{creq.rid}", "request", "request", "scheduler",
                creq.submit_time,
            )
            creq.trace_queue = collector.begin(
                creq.trace, "route", "queue", "scheduler", self.sim.now
            )
        self._dispatch(creq)

    def _dispatch(self, creq: DisaggRequest) -> None:
        creq.attempts += 1
        creq.prefill_done_time = math.nan
        creq.kv_ready_time = math.nan
        if self.monolithic:
            worker = self.mono_policy.choose(creq.tenant, self.decode_pool)
            if worker is None:
                self._parked.append(creq)
                return
            self._close_queue_span(creq)
            worker.submit_local(creq)
        else:
            worker = self.prefill_policy.choose(creq.tenant, self.prefill_pool)
            if worker is None:
                self._parked.append(creq)
                return
            self._close_queue_span(creq)
            worker.submit(creq)

    def _close_queue_span(self, creq: DisaggRequest) -> None:
        collector = active_collector()
        if collector is not None and creq.trace_queue is not None:
            collector.end(creq.trace_queue, self.sim.now)
            creq.trace_queue = None

    # -- migration -------------------------------------------------------

    def on_prefill_done(self, creq: DisaggRequest, src: PrefillWorker) -> None:
        """Prefill finished on ``src``: ship the KV to a decode worker."""
        self._start_migration(creq, src, resumed=False)

    def _start_migration(
        self, creq: DisaggRequest, src: PrefillWorker, resumed: bool
    ) -> None:
        dst = self.decode_policy.choose(creq.tenant, self.decode_pool)
        if dst is None:
            self._parked_migrations.append((creq, src))
            return
        self.sim.process(self._migrate(creq, src, dst, resumed))

    def _migrate(self, creq, src: PrefillWorker, dst: DecodeWorker, resumed: bool):
        creq.state = "migrating"
        if resumed:
            creq.resumes += 1
            self.resumes += 1
        record = yield from self.fabric.migrate(creq, src, dst, resumed=resumed)
        if record.complete and dst.alive:
            # Hold-until-KV-arrival: only now does the request enter
            # the decode worker's admission queue.
            creq.kv_ready_time = self.sim.now
            dst.submit_ready(creq)
            return
        self.failovers += 1
        if not (src.alive and src.has_kv(creq.rid)):
            self._replay(creq)
        else:
            self._start_migration(creq, src, resumed=True)

    # -- failover --------------------------------------------------------

    def _replay(self, creq: DisaggRequest) -> None:
        """Re-run prefill from scratch (the retained copy cannot help)."""
        self.replays += 1
        for worker in self.prefill_pool:
            if worker.alive:
                worker.release(creq.rid)
        self._dispatch(creq)

    def _retaining_src(self, creq: DisaggRequest) -> Optional[PrefillWorker]:
        for worker in self.prefill_pool:
            if worker.has_kv(creq.rid):
                return worker
        return None

    def fail(self, kind: str, index: int) -> None:
        """Crash one worker; orphans fail over per the decision rule."""
        pool = self.prefill_pool if kind == "prefill" else self.decode_pool
        for creq in pool[index].crash():
            self.failovers += 1
            self._failover(creq, kind)

    def _failover(self, creq: DisaggRequest, kind: str) -> None:
        if kind == "prefill":
            # Queued or in-flight prefill died with its worker.
            self._replay(creq)
            return
        # Resume-vs-replay: "holding" means the migrated KV arrived but
        # no decode step consumed it — the retained prefill copy is
        # still an exact image, so re-shipping it loses nothing. Once
        # decode started, the lost KV had outgrown the copy: replay.
        if creq.state == "holding" and not self.monolithic:
            src = self._retaining_src(creq)
            if src is not None:
                self._start_migration(creq, src, resumed=True)
                return
        self._replay(creq)

    def recover(self, kind: str, index: int) -> None:
        """Re-attest one worker and flush everything parked on it."""
        pool = self.prefill_pool if kind == "prefill" else self.decode_pool
        pool[index].recover()
        for creq in self._drain(self._parked):
            self._dispatch(creq)
        for creq, src in self._drain(self._parked_migrations):
            if src.alive and src.has_kv(creq.rid):
                self._start_migration(creq, src, resumed=True)
            else:
                self._replay(creq)

    @staticmethod
    def _drain(parked: list) -> list:
        items = list(parked)
        parked.clear()
        return items

    # -- worker callbacks ------------------------------------------------

    def on_token(self, creq: DisaggRequest, worker, generated: int) -> None:
        if math.isnan(creq.first_token_time):
            creq.first_token_time = self.sim.now

    def on_complete(self, creq: DisaggRequest, worker) -> None:
        creq.state = "done"
        creq.finish_time = self.sim.now
        for src in self.prefill_pool:
            if src.alive:
                src.release(creq.rid)
        self._close_root(creq, "ok")
        self.completed.append(creq)

    def on_reject(self, creq: DisaggRequest, worker, reason: str) -> None:
        creq.state = "shed"
        creq.finish_time = self.sim.now
        self._close_root(creq, f"shed:{reason}")
        self.shed.append(creq)

    def _close_root(self, creq: DisaggRequest, status: str) -> None:
        collector = active_collector()
        if collector is not None and creq.trace is not None:
            self._close_queue_span(creq)
            collector.end(creq.trace, self.sim.now, status=status)
            creq.trace = None
