"""Pluggable gateway routing policies.

A policy picks which live replica serves a request. Three are built
in, mirroring the classic serving trade-offs:

* **round-robin** — cycle over live replicas; oblivious but fair.
* **least-loaded** — fewest outstanding requests (queued + running);
  tracks the fleet's instantaneous imbalance, which failures create.
* **affinity** — rendezvous (highest-random-weight) hashing of the
  tenant id over the live replica set. A tenant keeps landing on the
  same replica, so the replica's vLLM-style prefix KV blocks for that
  tenant are reused across requests (warm prefill); when the preferred
  replica dies, only that replica's tenants re-map, and they re-map
  consistently. Overload falls back to the least-loaded survivor.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, List, Optional, Sequence, Type

__all__ = [
    "AffinityPolicy",
    "LeastLoadedPolicy",
    "POLICIES",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "make_policy",
]


class RoutingPolicy(abc.ABC):
    """Chooses a replica for one request; None = nothing can take it.

    Liveness is enforced *inside* every policy: ``choose`` filters the
    fleet down to live replicas before ranking. Callers (the cluster
    gateway, the disagg scheduler) may additionally pre-filter for
    capacity, but a stale fleet list can never steer a tenant at a
    dead replica — rendezvous reassignment happens at the instant of
    the crash, not at the next caller-side refresh.
    """

    name = "abstract"

    @staticmethod
    def live(replicas: Sequence["Replica"]) -> List["Replica"]:
        """The live subset of a (possibly stale) fleet list."""
        return [r for r in replicas if getattr(r, "alive", True)]

    @abc.abstractmethod
    def choose(self, tenant: str, replicas: Sequence["Replica"]) -> Optional["Replica"]:
        """Pick among the live members of ``replicas``."""


class RoundRobinPolicy(RoutingPolicy):
    """Cycle replica ids regardless of load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, tenant, replicas):
        replicas = self.live(replicas)
        if not replicas:
            return None
        # Rotate over replica *ids* so a dead replica's slot is skipped
        # without desynchronizing the cycle for the others.
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        chosen = ordered[self._next % len(ordered)]
        self._next += 1
        return chosen


class LeastLoadedPolicy(RoutingPolicy):
    """Fewest outstanding requests, replica id as the tie-break."""

    name = "least-loaded"

    def choose(self, tenant, replicas):
        replicas = self.live(replicas)
        if not replicas:
            return None
        return min(replicas, key=lambda r: (r.outstanding, r.replica_id))


class AffinityPolicy(RoutingPolicy):
    """Rendezvous hashing of tenant → replica for KV prefix reuse."""

    name = "affinity"

    #: A preferred replica more loaded than the fleet minimum by this
    #: many requests forfeits its affinity traffic (hot-tenant guard).
    overload_slack = 4

    @staticmethod
    def _weight(tenant: str, replica_id: int) -> int:
        digest = hashlib.sha256(f"{tenant}:{replica_id}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def choose(self, tenant, replicas):
        # Rank only live replicas: a crashed replica must neither hold
        # its affinity traffic until recovery nor — having drained to
        # zero outstanding — anchor the overload floor and win the
        # least-loaded fallback.
        replicas = self.live(replicas)
        if not replicas:
            return None
        preferred = max(
            replicas, key=lambda r: (self._weight(tenant, r.replica_id), -r.replica_id)
        )
        floor = min(r.outstanding for r in replicas)
        if preferred.outstanding - floor > self.overload_slack:
            return min(replicas, key=lambda r: (r.outstanding, r.replica_id))
        return preferred


POLICIES: Dict[str, Type[RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    AffinityPolicy.name: AffinityPolicy,
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
