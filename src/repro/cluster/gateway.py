"""The encrypted-session gateway fronting the replica fleet.

The gateway is the cluster's single entry point. It owns:

* the **admission queue** — bounded FIFO; arrivals beyond capacity are
  shed immediately, queued requests older than the admission timeout
  are shed by a per-request watchdog;
* **per-tenant secure sessions** — the first time a tenant's traffic
  reaches a given replica *incarnation*, the gateway runs the attested
  key exchange (:class:`repro.cluster.tenant.TenantChannel`), paying
  the configured handshake latency in simulated time. Every request
  and response then makes a real encrypt/decrypt round trip on that
  channel, so GCM tags and IV monotonicity are exercised — and audited
  — for the whole run;
* **routing** — a pluggable policy picks among live replicas with
  spare outstanding budget;
* **failover** — when a replica crashes, its orphaned requests are
  re-admitted at the *front* of the queue (they already waited once;
  capacity is not re-checked for them) and re-dispatched to a
  surviving replica through a fresh handshake.

All gateway-level signals flow into one :class:`TelemetryHub` labelled
``"gateway"`` that shares the simulator's span tracer, so cluster
lanes interleave with PCIe/GPU lanes in Chrome-trace exports.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core import ClusterConfig
from ..sim import Simulator
from ..sim.stats import MetricSet
from ..telemetry import ClusterEvent, TelemetryHub, active_session
from ..tracing import active_collector
from .replica import ClusterRequest, Replica
from .routing import RoutingPolicy, make_policy
from .tenant import ClusterIvAudit, TenantChannel

__all__ = ["Gateway"]


class Gateway:
    """Admission control, routing and failover for one replica fleet."""

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        replicas: List[Replica],
        audit: Optional[ClusterIvAudit] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.replicas: Dict[int, Replica] = {r.replica_id: r for r in replicas}
        for replica in replicas:
            replica.gateway = self
        self.policy: RoutingPolicy = make_policy(config.policy)
        self.audit = audit if audit is not None else ClusterIvAudit()

        self.metrics = MetricSet()
        self.telemetry = TelemetryHub(
            sim=sim, metrics=self.metrics, tracer=sim.tracer, label="gateway"
        )
        session = active_session()
        if session is not None:
            session.register(self.telemetry)

        #: Optional duck-typed observer of the request lifecycle (the
        #: online-serving front end). Hooks: ``on_token(creq, replica,
        #: index)``, ``on_complete(creq)``, ``on_shed(creq, reason)``,
        #: ``on_requeue(creq)``. Every call site is a no-op when the
        #: listener is unset, so plain cluster runs are unperturbed.
        self.listener = None

        self.queue: Deque[ClusterRequest] = deque()
        #: (tenant, replica_id, epoch) -> live secure session.
        self._channels: Dict[Tuple[str, int, int], TenantChannel] = {}
        #: Handshakes in flight (single-flight guard): concurrent
        #: dispatches for one tenant must share one key exchange, or
        #: the deterministic seeds would derive the same key twice.
        self._pending: Dict[Tuple[str, int, int], object] = {}
        self.completed: List[ClusterRequest] = []
        self.shed: List[ClusterRequest] = []
        self.handshakes = 0
        self.failovers = 0
        #: Trace roots this gateway minted itself (cluster-only runs,
        #: where no serving front end owns the request lifecycle);
        #: rid → root context, closed at completion or shedding.
        self._minted_roots: Dict[int, object] = {}

        self._wake = sim.event()
        sim.process(self._dispatch_loop())

    # -- intake ----------------------------------------------------------

    def submit(self, creq: ClusterRequest) -> None:
        """Admit one arrival, or shed it if the queue is at capacity."""
        if len(self.queue) >= self.config.queue_capacity:
            self._shed(creq, "capacity")
            return
        collector = active_collector()
        if collector is not None:
            if creq.trace is None:
                # No front end minted a root (plain cluster workload):
                # the gateway owns this request's trace end to end.
                creq.trace = collector.start_trace(
                    f"cluster.req-{creq.rid}", "request", "request",
                    "gateway", self.sim.now,
                )
                self._minted_roots[creq.rid] = creq.trace
            creq.trace_queue = collector.begin(
                creq.trace, "queue", "queue", "gateway", self.sim.now
            )
        creq.state = "queued"
        self.queue.append(creq)
        self._record_depth()
        self.metrics.counter("cluster.gateway.enqueued").add()
        self._emit("enqueue", creq)
        self.sim.process(self._watchdog(creq))
        self._kick()

    def _watchdog(self, creq: ClusterRequest):
        """Shed ``creq`` if it is still queued after the admission timeout."""
        yield self.sim.timeout(self.config.admission_timeout)
        if creq.state == "queued" and creq in self.queue:
            self.queue.remove(creq)
            self._record_depth()
            self._shed(creq, "timeout")

    def _shed(self, creq: ClusterRequest, reason: str) -> None:
        self._trace_close(creq, "trace_queue", status=f"shed:{reason}")
        self._trace_close(creq, "trace_attempt", status=f"shed:{reason}")
        self._close_minted_root(creq, status=f"shed:{reason}")
        creq.state = "shed"
        creq.finish_time = self.sim.now
        self.shed.append(creq)
        self.metrics.counter("cluster.gateway.shed").add()
        self.metrics.counter(f"cluster.gateway.shed.{reason}").add()
        self._emit("shed", creq, detail=reason)
        if self.listener is not None:
            self.listener.on_shed(creq, reason)

    # -- dispatch --------------------------------------------------------

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    def _dispatch_loop(self):
        while True:
            while self.queue:
                head = self.queue[0]
                replica = self.policy.choose(head.tenant, self._candidates())
                if replica is None:
                    break
                self.queue.popleft()
                self._record_depth()
                self.sim.process(self._dispatch(head, replica))
            self._wake = self.sim.event()
            yield self._wake

    def _candidates(self) -> List[Replica]:
        return [
            r
            for r in self.replicas.values()
            if r.alive and r.outstanding < self.config.max_outstanding
        ]

    def _dispatch(self, creq: ClusterRequest, replica: Replica):
        self._trace_close(creq, "trace_queue")
        hs_start = self.sim.now
        key = (creq.tenant, replica.replica_id, replica.epoch)
        while True:
            channel = self._channels.get(key)
            if channel is not None:
                break
            pending = self._pending.get(key)
            if pending is not None:
                # Another dispatch for this tenant is mid-handshake:
                # wait for it and reuse its session.
                yield pending
                continue
            done = self.sim.event()
            self._pending[key] = done
            try:
                yield self.sim.timeout(self.config.handshake_latency)
            finally:
                del self._pending[key]
                done.succeed()
            if not replica.alive or replica.epoch != key[2]:
                # The replica died mid-handshake: back to the queue.
                self._requeue(creq)
                return
            channel = TenantChannel(
                creq.tenant, replica.replica_id, replica.epoch, audit=self.audit
            )
            self._channels[key] = channel
            self.handshakes += 1
            self.metrics.counter("cluster.gateway.handshakes").add()
            self._emit("handshake", creq, replica=replica.replica_id,
                       detail=f"epoch={replica.epoch}")
            break
        if not replica.alive or replica.epoch != key[2]:
            self._requeue(creq)
            return
        collector = active_collector()
        if collector is not None and creq.trace is not None \
                and self.sim.now > hs_start:
            # Attested key-exchange wait (shared or owned) — the AES
            # session-establishment leg of this request's path.
            collector.add(creq.trace, "handshake", "handshake", "gateway",
                          hs_start, self.sim.now)
        # The request ciphertext makes a functional round trip: the
        # tenant encrypts under its next TX IV, the replica decrypts
        # (GCM tag verified) — any desync or replay raises here.
        message = channel.send_request(creq.payload)
        plaintext = channel.recv_request(message)
        if plaintext != creq.payload:
            raise AssertionError("tenant payload corrupted in transit")
        creq.attempts += 1
        if creq.attempts == 1:
            creq.dispatch_time = self.sim.now
        self.metrics.counter("cluster.gateway.dispatched").add()
        self._emit("dispatch", creq, replica=replica.replica_id,
                   detail=self.policy.name)
        if collector is not None and creq.trace is not None:
            # One span per delivery attempt: failover closes it with
            # a "failover" status and the retry opens attempt-N+1, so
            # crashes never leave a dangling span.
            creq.trace_attempt = collector.begin(
                creq.trace, f"attempt-{creq.attempts}", "service",
                f"replica-{replica.replica_id}", self.sim.now,
            )
        replica.submit(creq)

    def _channel_for(self, tenant: str, replica: Replica) -> Optional[TenantChannel]:
        return self._channels.get((tenant, replica.replica_id, replica.epoch))

    def _requeue(self, creq: ClusterRequest) -> None:
        """Front-of-queue re-admission (failover path; no capacity check)."""
        self._trace_close(creq, "trace_attempt", status="failover")
        collector = active_collector()
        if collector is not None and creq.trace is not None:
            creq.trace_queue = collector.begin(
                creq.trace, "queue", "queue", "gateway", self.sim.now
            )
        creq.state = "queued"
        self.queue.appendleft(creq)
        self._record_depth()
        self.sim.process(self._watchdog(creq))
        if self.listener is not None:
            self.listener.on_requeue(creq)
        self._kick()

    # -- replica callbacks -----------------------------------------------

    def on_token(self, creq: ClusterRequest, replica: Replica, index: int) -> None:
        """A replica decoded one token of ``creq`` (1-based ``index``).

        Pure notification for the serving front end's token streaming;
        the gateway itself keeps no per-token state.
        """
        if self.listener is not None:
            self.listener.on_token(creq, replica, index)

    def on_complete(self, creq: ClusterRequest, replica: Replica) -> None:
        """A replica finished ``creq``: return the encrypted response."""
        channel = self._channel_for(creq.tenant, replica)
        if channel is None:
            raise AssertionError(
                f"no session for {creq.tenant} on replica-{replica.replica_id}"
            )
        response = channel.send_response(b"tokens:" + creq.payload)
        channel.recv_response(response)
        self._trace_close(creq, "trace_attempt")
        self._close_minted_root(creq, status="ok")
        creq.state = "done"
        creq.finish_time = self.sim.now
        self.completed.append(creq)
        self.metrics.counter("cluster.gateway.completed").add()
        self.metrics.latency("cluster.latency_s").record(max(0.0, creq.latency))
        self.metrics.counter(f"cluster.tenant.{creq.tenant}.completed").add()
        if creq.latency <= self.config.slo_latency:
            self.metrics.counter(f"cluster.tenant.{creq.tenant}.slo_ok").add()
        self._emit("complete", creq, replica=replica.replica_id,
                   detail=f"latency={creq.latency:.3f}s")
        if self.listener is not None:
            self.listener.on_complete(creq)
        self._kick()

    def on_reject(self, creq: ClusterRequest, replica: Replica, reason: str) -> None:
        """A replica bounced ``creq`` (e.g. it exceeds its KV budget)."""
        self.metrics.counter("cluster.gateway.rejected").add()
        others = [
            r for r in self._candidates() if r.replica_id != replica.replica_id
        ]
        if others:
            # Another replica may have a bigger free pool; retry there.
            self._requeue(creq)
        else:
            self._shed(creq, reason)

    # -- fault injection -------------------------------------------------

    def fail(self, replica_id: int) -> List[ClusterRequest]:
        """Crash one replica; orphans re-enter the queue for failover."""
        replica = self.replicas[replica_id]
        orphans = replica.crash()
        self.metrics.counter("cluster.replica.crashes").add()
        self._emit("crash", None, replica=replica_id,
                   detail=f"orphans={len(orphans)}")
        for creq in reversed(orphans):
            self.failovers += 1
            self.metrics.counter("cluster.gateway.failovers").add()
            self._emit("failover", creq, replica=replica_id)
            self._requeue(creq)
        return orphans

    def recover(self, replica_id: int) -> None:
        """Bring a crashed replica back as a fresh attested incarnation."""
        replica = self.replicas[replica_id]
        replica.recover()
        self._emit("recover", None, replica=replica_id,
                   detail=f"epoch={replica.epoch}")
        self._kick()

    # -- causal tracing --------------------------------------------------

    def _trace_close(
        self, creq: ClusterRequest, attr: str, status: str = "ok"
    ) -> None:
        """Close and clear one of the request's open gateway spans."""
        ctx = getattr(creq, attr)
        if ctx is None:
            return
        setattr(creq, attr, None)
        collector = active_collector()
        if collector is not None:
            collector.end(ctx, self.sim.now, status=status)

    def _close_minted_root(self, creq: ClusterRequest, status: str) -> None:
        """Close the root span iff this gateway minted it."""
        root = self._minted_roots.pop(creq.rid, None)
        if root is None:
            return
        collector = active_collector()
        if collector is not None:
            collector.end(root, self.sim.now, status=status)

    # -- accounting ------------------------------------------------------

    def _record_depth(self) -> None:
        self.metrics.timeseries("cluster.gateway.queue_depth").record(
            self.sim.now, float(len(self.queue))
        )

    def _emit(
        self,
        action: str,
        creq: Optional[ClusterRequest],
        replica: int = -1,
        detail: str = "",
    ) -> None:
        self.telemetry.emit(ClusterEvent(
            time=self.sim.now,
            action=action,
            tenant=creq.tenant if creq is not None else "",
            replica=replica,
            request_id=creq.rid if creq is not None else -1,
            detail=detail,
        ))

    def slo_attainment(self) -> Dict[str, float]:
        """Per-tenant fraction of completed requests inside the SLO."""
        out: Dict[str, float] = {}
        tenants = {c.tenant for c in self.completed}
        for tenant in sorted(tenants):
            done = self.metrics.counter(f"cluster.tenant.{tenant}.completed").value
            ok = self.metrics.counter(f"cluster.tenant.{tenant}.slo_ok").value
            out[tenant] = ok / done if done else 0.0
        return out
