"""Cluster orchestration: replicas + gateway + workload + faults.

:class:`Cluster` builds the whole confidential serving fleet inside a
**single shared simulator** — N attested CVM+GPU replicas (each its
own :class:`repro.cc.Machine`) behind one :class:`Gateway` — drives a
multi-tenant Poisson workload through it, optionally injects a replica
crash/recovery, and folds everything into a :class:`ClusterResult`.

The crypto story is end to end: every tenant request is encrypted on
its per-tenant session at the gateway and decrypted by the replica
(and the response the other way), while *inside* each replica all KV
and token traffic rides the machine's own CVM↔GPU channel. A single
:class:`~repro.cluster.tenant.ClusterIvAudit` watches every tenant
session ever created — across crashes and re-handshakes — so a run
proves its own IV discipline.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import ClusterConfig
from ..faults import FaultInjector
from ..hw import HardwareParams
from ..models import OPT_13B, ModelSpec
from ..sim import SeededRng, Simulator, default_seed, mean, percentile
from ..workloads import TraceSpec, poisson_trace
from .gateway import Gateway
from .replica import ClusterRequest, Replica
from .tenant import ClusterIvAudit

__all__ = ["CLUSTER_TRACE", "Cluster", "ClusterResult", "run_cluster"]

#: Short-conversation trace used by the cluster experiments: enough
#: decode steps to exercise batching and swapping, small enough that
#: multi-replica sweeps stay fast.
CLUSTER_TRACE = TraceSpec(
    name="cluster",
    mean_prompt=64.0, sigma_prompt=0.6, max_prompt=256,
    mean_output=24.0, sigma_output=0.5, max_output=64,
)


@dataclass
class ClusterResult:
    """Everything one cluster run measured."""

    replicas: int
    policy: str
    system: str
    duration: float
    offered: int
    completed: int
    shed: int
    unfinished: int
    failovers: int
    handshakes: int
    crashes: int
    prefix_hits: int
    swap_outs: int
    #: GCM tag-validation failures across every machine incarnation
    #: (must be 0 — the acceptance invariant).
    auth_failures: int
    #: Distinct (key, stream) IV lanes the audit tracked / total IVs.
    iv_lanes: int
    iv_observed: int
    #: End-to-end gateway latencies of completed requests (seconds).
    latencies: List[float] = field(default_factory=list)
    queue_depth_mean: float = 0.0
    #: replica id -> GPU-busy fraction of the run.
    utilization: Dict[int, float] = field(default_factory=dict)
    #: tenant -> fraction of its completed requests inside the SLO.
    slo_attainment: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def p50_latency(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies, 99)

    @property
    def mean_latency(self) -> float:
        return mean(self.latencies)

    def as_dict(self) -> Dict[str, object]:
        return {
            "replicas": self.replicas,
            "policy": self.policy,
            "system": self.system,
            "duration_s": self.duration,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "unfinished": self.unfinished,
            "failovers": self.failovers,
            "handshakes": self.handshakes,
            "crashes": self.crashes,
            "prefix_hits": self.prefix_hits,
            "swap_outs": self.swap_outs,
            "auth_failures": self.auth_failures,
            "iv_lanes": self.iv_lanes,
            "iv_observed": self.iv_observed,
            "throughput_rps": self.throughput,
            "mean_latency_s": self.mean_latency,
            "p50_latency_s": self.p50_latency,
            "p99_latency_s": self.p99_latency,
            "queue_depth_mean": self.queue_depth_mean,
            "utilization": dict(self.utilization),
            "slo_attainment": dict(self.slo_attainment),
        }


class Cluster:
    """N confidential replicas + gateway in one shared simulator."""

    def __init__(
        self,
        config: ClusterConfig,
        spec: ModelSpec = OPT_13B,
        params: Optional[HardwareParams] = None,
    ) -> None:
        self.config = config
        self.spec = spec
        self.sim = Simulator()
        self.audit = ClusterIvAudit()
        #: Fleet-level injector (None without a plan). Each replica
        #: machine gets its own deterministic child; the parent paces
        #: the random crash schedule.
        self.faults: Optional[FaultInjector] = None
        if config.fault_plan is not None:
            self.faults = FaultInjector(
                config.fault_plan, seed=default_seed(config.seed)
            ).bind(self.sim)
        self.replicas = [
            Replica(
                self.sim,
                replica_id=i,
                spec=spec,
                system=config.system,
                block_size=config.block_size,
                reserve_bytes=config.reserve_bytes,
                params=params,
                faults=None if self.faults is None else self.faults.child(f"r{i}"),
            )
            for i in range(config.replicas)
        ]
        self.gateway = Gateway(self.sim, config, self.replicas, audit=self.audit)

    # -- workload --------------------------------------------------------

    def workload(
        self,
        rate: float,
        duration: float,
        tenants: int = 4,
        trace: TraceSpec = CLUSTER_TRACE,
        parallel_n: int = 1,
    ) -> List[ClusterRequest]:
        """Poisson arrivals spread over ``tenants`` tenants.

        Seeded by the config's seed (overridable process-wide via the
        CLI ``--seed``), so runs are reproducible end to end.
        """
        rng = SeededRng(default_seed(self.config.seed))
        requests = poisson_trace(trace, rate, duration, rng, parallel_n=parallel_n)
        rng_t = rng.fork("tenants")
        out: List[ClusterRequest] = []
        for request in requests:
            tenant = f"tenant-{rng_t.randint(0, tenants - 1)}"
            payload = hashlib.sha256(
                f"{tenant}:req{request.request_id}".encode()
            ).digest()[:16]
            out.append(ClusterRequest(
                rid=request.request_id,
                tenant=tenant,
                request=request,
                submit_time=request.arrival_time,
                payload=payload,
            ))
        return out

    # -- execution -------------------------------------------------------

    def run(
        self,
        requests: List[ClusterRequest],
        until: Optional[float] = None,
    ) -> ClusterResult:
        """Drive ``requests`` through the fleet and summarize the run."""
        self.sim.process(self._arrivals(sorted(requests, key=lambda c: c.submit_time)))
        if self.config.fail_at is not None:
            self.sim.process(self._fault())
        plan = self.config.fault_plan
        if self.faults is not None and plan is not None and plan.replica_crash_rate > 0:
            # Bound the crash schedule so the simulator can drain: the
            # plan's window if set, else the arrival span.
            horizon = plan.stop
            if horizon is None:
                horizon = max((c.submit_time for c in requests), default=0.0)
            self.sim.process(self._fault_plane(horizon))
        self.sim.run(until=until)
        return self._result(requests)

    def _arrivals(self, requests: List[ClusterRequest]):
        for creq in requests:
            delay = creq.submit_time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            creq.submit_time = self.sim.now
            self.gateway.submit(creq)

    def _fault(self):
        config = self.config
        yield self.sim.timeout(config.fail_at)
        self.gateway.fail(config.fail_replica)
        if config.recover_after > 0:
            yield self.sim.timeout(config.recover_after)
            self.gateway.recover(config.fail_replica)

    def _fault_plane(self, horizon: float):
        """Random replica crashes: exponential inter-arrivals from the
        fleet injector's cluster stream, each followed by an attested
        recovery after the plan's delay. Stops pacing at ``horizon``."""
        inj = self.faults
        plan = self.config.fault_plan
        while True:
            interval = inj.next_crash_interval()
            if interval is None or self.sim.now + interval > horizon:
                return
            yield self.sim.timeout(interval)
            if not plan.active(self.sim.now):
                continue
            victim = inj.pick_replica(len(self.replicas))
            if not self.replicas[victim].alive:
                continue
            inj.record_crash(victim)
            self.gateway.fail(victim)
            if plan.replica_recover_after > 0:
                self.sim.process(
                    self._recover_later(victim, plan.replica_recover_after)
                )

    def _recover_later(self, victim: int, delay: float):
        yield self.sim.timeout(delay)
        self.gateway.recover(victim)

    def _result(self, requests: List[ClusterRequest]) -> ClusterResult:
        gateway = self.gateway
        completed = gateway.completed
        unfinished = [
            c for c in requests if c.state not in ("done", "shed")
        ]
        # Measure to the last request resolution, not to the last timer:
        # lingering admission watchdogs would otherwise pad the run and
        # depress throughput/utilization.
        resolved = [
            c.finish_time
            for c in completed + gateway.shed
            if not math.isnan(c.finish_time)
        ]
        duration = max(resolved) if resolved and not unfinished else self.sim.now
        depth = gateway.metrics.timeseries("cluster.gateway.queue_depth")
        utilization = {
            r.replica_id: (r.busy_seconds / duration if duration > 0 else 0.0)
            for r in self.replicas
        }
        return ClusterResult(
            replicas=self.config.replicas,
            policy=self.config.policy,
            system=self.config.system,
            duration=duration,
            offered=len(requests),
            completed=len(completed),
            shed=len(gateway.shed),
            unfinished=len(unfinished),
            failovers=gateway.failovers,
            handshakes=gateway.handshakes,
            crashes=sum(r.crashes for r in self.replicas),
            prefix_hits=sum(r.prefix_hits for r in self.replicas),
            swap_outs=sum(r.swap_out_count for r in self.replicas),
            auth_failures=sum(r.auth_failures for r in self.replicas),
            iv_lanes=self.audit.keys_seen(),
            iv_observed=self.audit.observed,
            latencies=[
                c.latency for c in completed if not math.isnan(c.latency)
            ],
            queue_depth_mean=depth.time_weighted_mean(horizon=duration),
            utilization=utilization,
            slo_attainment=gateway.slo_attainment(),
        )


def run_cluster(
    config: ClusterConfig,
    rate: float = 2.0,
    duration: float = 30.0,
    tenants: int = 4,
    spec: ModelSpec = OPT_13B,
    trace: TraceSpec = CLUSTER_TRACE,
    params: Optional[HardwareParams] = None,
) -> ClusterResult:
    """Build a cluster, generate its workload, run it, summarize it."""
    cluster = Cluster(config, spec=spec, params=params)
    return cluster.run(cluster.workload(rate, duration, tenants=tenants, trace=trace))
