"""Per-tenant attested sessions between clients and replicas.

Every tenant that talks to a replica first runs the same SPDM-style
bring-up the CVM driver runs against the GPU: a two-message key
exchange (:class:`repro.crypto.handshake.SessionHandshake`), device
attestation of the replica over the handshake transcript, and HKDF
derivation of an AES-GCM key plus two starting IVs. The resulting
:class:`TenantChannel` gives the tenant its own IV streams end to end
— request ciphertext rides the tenant→replica stream, response
ciphertext the replica→tenant stream — completely independent of the
replica-internal CVM↔GPU channel.

Failover correctness hinges on two invariants this module makes
checkable:

* **No IV reuse per key** — every encryption on every channel reports
  its (key, stream, IV) triple to a :class:`ClusterIvAudit`, which
  raises :class:`IvReuseError` the moment a stream is non-monotone.
  Re-handshakes after a crash derive *fresh keys*, so pre- and
  post-crash streams can never collide.
* **Replay rejection** — a ciphertext captured before a crash fails
  GCM authentication on the post-failover session (different key),
  which tests assert directly.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..crypto import (
    GOLDEN_MEASUREMENTS,
    EncryptedMessage,
    GpuDevice,
    RootOfTrust,
    SessionHandshake,
)

__all__ = ["ClusterIvAudit", "IvReuseError", "TenantChannel"]


class IvReuseError(AssertionError):
    """An IV stream moved backwards or repeated under one key."""


class ClusterIvAudit:
    """Cluster-wide ledger asserting per-key IV monotonicity.

    Keys are fingerprinted; each (key, stream) lane must consume
    strictly increasing counters. The audit spans every tenant channel
    the gateway ever creates — including pre- and post-failover
    incarnations — so a key accidentally reused across a crash would
    trip it immediately.
    """

    def __init__(self) -> None:
        #: (key_fingerprint, stream) -> last IV consumed.
        self._last: Dict[Tuple[str, str], int] = {}
        self.observed = 0

    @staticmethod
    def fingerprint(key: bytes) -> str:
        return hashlib.sha256(key).hexdigest()[:16]

    def observe(self, key: bytes, stream: str, iv: int) -> None:
        lane = (self.fingerprint(key), stream)
        last = self._last.get(lane)
        if last is not None and iv <= last:
            raise IvReuseError(
                f"IV {iv} on {lane} not strictly greater than {last}"
            )
        self._last[lane] = iv
        self.observed += 1

    def keys_seen(self) -> int:
        """Distinct (key, stream) lanes observed so far."""
        return len(self._last)

    def lanes(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of every lane's last consumed IV.

        Interconnect links register four lanes per directed link (the
        copy-engine and host ends of the up and down sessions); the
        stream names carry the link label, so a test can assert exactly
        which fabric lanes moved and that each moved monotonically.
        """
        return dict(self._last)


class TenantChannel:
    """One attested secure session between a tenant and one replica.

    The tenant plays the handshake's "driver" role, the replica the
    "gpu" role; the replica then attests its measurements over the
    transcript against the golden values before any data flows. Seeds
    mix tenant id, replica id and the replica's incarnation epoch, so
    every (tenant, replica, epoch) triple derives an independent key.
    """

    def __init__(
        self,
        tenant: str,
        replica_id: int,
        epoch: int,
        audit: Optional[ClusterIvAudit] = None,
        root: Optional[RootOfTrust] = None,
    ) -> None:
        self.tenant = tenant
        self.replica_id = replica_id
        self.epoch = epoch
        self.audit = audit

        suffix = f"{tenant}.r{replica_id}.e{epoch}".encode()
        tenant_hs = SessionHandshake("driver", seed=b"tenant:" + suffix)
        replica_hs = SessionHandshake("gpu", seed=b"replica:" + suffix)

        # The tenant verifies it reached a genuine, unmodified replica
        # before deriving traffic keys (attestation over the transcript).
        root = root or RootOfTrust()
        device_id = f"replica-{replica_id}"
        device = GpuDevice(device_id, root.provision(device_id))
        report = device.attest(tenant_hs.transcript(replica_hs.message()))
        root.verify(report, expected_measurements=GOLDEN_MEASUREMENTS)

        session = tenant_hs.complete(replica_hs.message())
        self.key = session.key
        self.tenant_endpoint, self.replica_endpoint = session.endpoints()

    # -- tenant → replica (requests) ------------------------------------

    def send_request(self, payload: bytes) -> EncryptedMessage:
        """Tenant-side encryption of one request under its next TX IV."""
        message = self.tenant_endpoint.encrypt_next(payload)
        if self.audit is not None:
            self.audit.observe(self.key, "tenant->replica", message.sender_iv)
        return message

    def recv_request(self, message: EncryptedMessage) -> bytes:
        """Replica-side decrypt; AuthenticationError on any desync/replay."""
        return self.replica_endpoint.decrypt_next(message)

    # -- replica → tenant (responses) -----------------------------------

    def send_response(self, payload: bytes) -> EncryptedMessage:
        """Replica-side encryption of one response."""
        message = self.replica_endpoint.encrypt_next(payload)
        if self.audit is not None:
            self.audit.observe(self.key, "replica->tenant", message.sender_iv)
        return message

    def recv_response(self, message: EncryptedMessage) -> bytes:
        """Tenant-side decrypt of a response."""
        return self.tenant_endpoint.decrypt_next(message)

    def __repr__(self) -> str:
        return (
            f"TenantChannel({self.tenant}→replica-{self.replica_id}"
            f".e{self.epoch}, key={ClusterIvAudit.fingerprint(self.key)})"
        )
