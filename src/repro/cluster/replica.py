"""One serving replica: a CVM+GPU machine plus its serving loop.

A :class:`Replica` owns one :class:`repro.cc.Machine` (embedded in the
cluster's shared simulator), the `DeviceRuntime` that machine serves
traffic through (PipeLLM, inline CC, or native), and a vLLM-style
continuous-batching loop that accepts *dynamically routed* requests
from the gateway — unlike the single-machine engines, the request set
is not known up front.

The loop reproduces the serving behaviour the cluster experiments
depend on:

* **continuous batching** — admitted requests decode in lock-step,
  one token per step, with prompt tokens and sampled tokens crossing
  the (encrypted) bus as control transfers every step;
* **KV-pressure swapping** — block growth beyond the replica's budget
  preempts the most recent group (request-wise swap-out over the CC
  channel, LIFO resume), exactly the traffic PipeLLM pipelines;
* **prefix KV reuse** — a tenant whose prompt prefix is still cached
  on this replica skips prefill compute and bytes, which is the win
  the gateway's affinity policy exists to harvest;
* **crash / recover** — a crash orphans every resident request back
  to the gateway for failover and tears the incarnation down; recovery
  re-runs the attested bring-up with fresh seeds (fresh session keys
  and IVs) and rejoins with an empty cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cc import CcMode, CudaContext, Machine, build_attested_machine
from ..core import PipeLLMRuntime
from ..hw import HardwareParams, default_params
from ..hw.memory import MemoryChunk
from ..models import KvGeometry, LayerWork, ModelSpec, TransformerCostModel
from ..serving.vllm.block_manager import BlockManager
from ..serving.vllm.scheduler import GroupState, SequenceGroup
from ..sim import Simulator, mean
from ..tracing import active_collector
from ..workloads import Request

__all__ = ["ClusterRequest", "Replica", "ReplicaDead"]

#: Functional payload bytes for control and KV transfers.
_PAYLOAD_BYTES = 16

#: Tenants whose prompt prefixes one replica keeps warm.
_PREFIX_CACHE_TENANTS = 16

#: Resume hysteresis, mirroring vLLM's watermark.
_RESUME_WATERMARK = 0.02


class ReplicaDead(RuntimeError):
    """A request was submitted to a crashed replica."""


@dataclass
class ClusterRequest:
    """One tenant request as it moves through the cluster.

    ``request`` is the underlying workload request; the wrapper adds
    the gateway-level lifecycle (admission, routing, failover) and the
    end-to-end timestamps the SLO accounting uses.
    """

    rid: int
    tenant: str
    request: Request
    submit_time: float
    payload: bytes = b""
    #: "queued" | "dispatched" | "running" | "swapped" | "done" | "shed"
    state: str = "queued"
    dispatch_time: float = math.nan
    finish_time: float = math.nan
    #: Handshake/dispatch attempts (1 = no failover).
    attempts: int = 0
    #: Replica ids this request touched, in order.
    replica_history: List[int] = field(default_factory=list)
    prefix_hit: bool = False
    #: Causal-trace linkage (transient; set only when a collector is
    #: active): the request's trace context plus the currently open
    #: queue/attempt spans the gateway manages across failovers.
    trace: Optional[Any] = None
    trace_queue: Optional[Any] = None
    trace_attempt: Optional[Any] = None

    @property
    def latency(self) -> float:
        """End-to-end gateway latency (nan until done)."""
        return self.finish_time - self.submit_time


@dataclass
class _Served:
    """A request resident on one replica, with its scheduling state."""

    creq: ClusterRequest
    group: SequenceGroup
    #: Prompt tokens that must actually be prefilled (0 = prefix hit).
    prefill_tokens: int = 0


class Replica:
    """One CVM+GPU machine incarnation behind the gateway."""

    def __init__(
        self,
        sim: Simulator,
        replica_id: int,
        spec: ModelSpec,
        system: str = "pipellm",
        block_size: int = 16,
        reserve_bytes: int = 4 << 30,
        params: Optional[HardwareParams] = None,
        faults=None,
    ) -> None:
        self.sim = sim
        self.replica_id = replica_id
        self.spec = spec
        self.system = system
        self.block_size = block_size
        self.reserve_bytes = reserve_bytes
        self.params = params or default_params()
        #: Optional :class:`repro.faults.FaultInjector`, shared across
        #: incarnations (each boot rebinds it to the fresh machine, so
        #: the fault streams continue deterministically over crashes).
        self.faults = faults
        self.cost = TransformerCostModel(spec)
        self.geometry = KvGeometry(spec, block_size=block_size)

        #: Set by the gateway when the replica joins the fleet.
        self.gateway = None

        self.epoch = 0
        self.alive = False
        self.crashes = 0
        self.completed = 0
        self.prefix_hits = 0
        self.swap_out_count = 0
        self.swap_in_count = 0
        #: Stats carried across incarnations (a crash would otherwise
        #: discard the dead machine's counters).
        self._busy_acc = 0.0
        self._auth_failures_acc = 0

        self.machine: Optional[Machine] = None
        self.runtime = None
        self.boot()

    # -- lifecycle -------------------------------------------------------

    def boot(self) -> None:
        """Bring up a fresh incarnation: attested machine + empty state."""
        self.epoch += 1
        suffix = f"r{self.replica_id}.e{self.epoch}".encode()
        if self.system == "native":
            self.machine = Machine(
                CcMode.DISABLED, params=self.params, sim=self.sim, faults=self.faults
            )
            self.runtime = CudaContext(self.machine)
        else:
            # Full CC bring-up per incarnation: the handshake-derived
            # session key and starting IVs differ every epoch, so a
            # recovered replica can never collide with its past self.
            self.machine = build_attested_machine(
                params=self.params,
                sim=self.sim,
                device_id=f"gpu-{self.replica_id}",
                host_seed=b"cvm:" + suffix,
                device_seed=b"dev:" + suffix,
                faults=self.faults,
            )
            if self.system == "pipellm":
                self.runtime = PipeLLMRuntime(self.machine)
            else:
                self.runtime = CudaContext(self.machine)
        self.machine.telemetry.label = f"replica-{self.replica_id}.e{self.epoch}"

        total_blocks = self.geometry.gpu_block_budget(
            self.params.gpu_memory_bytes, reserved_bytes=self.reserve_bytes
        )
        if total_blocks <= 0:
            raise ValueError("model leaves no GPU room for KV cache")
        self.blocks = BlockManager(total_blocks)
        self.machine.gpu.alloc("weights", self.spec.total_bytes)
        self.machine.gpu.alloc("kv-pool", total_blocks * self.geometry.block_bytes)
        self.runtime.hint_kv_block_size(self.geometry.block_bytes)

        self._token_in = self.machine.host_memory.allocate(
            4096, f"r{self.replica_id}.tokens.in", b"\x01" * 8
        )
        self._token_out = self.machine.host_memory.allocate(
            4096, f"r{self.replica_id}.tokens.out", b"\x02" * 8
        )

        self._queue: List[ClusterRequest] = []
        self.running: List[_Served] = []
        #: LIFO stack of preempted groups.
        self.swapped: List[_Served] = []
        #: tenant -> longest prompt prefix still warm on this replica.
        self.prefix_cache: Dict[str, int] = {}

        self.alive = True
        self._wake = self.sim.event()
        self._loop_proc = self.sim.process(self._loop(self.epoch))

    def crash(self) -> List[ClusterRequest]:
        """Kill this incarnation; returns every orphaned request."""
        if not self.alive:
            return []
        self.alive = False
        self.crashes += 1
        self._busy_acc += self.machine.gpu.compute_seconds
        self._auth_failures_acc += self.machine.gpu.auth_failures
        if self._loop_proc.is_alive:
            self._loop_proc.interrupt("crash")
        orphans = [s.creq for s in self.running + self.swapped] + list(self._queue)
        self._queue = []
        self.running = []
        self.swapped = []
        self.prefix_cache = {}
        return orphans

    def recover(self) -> None:
        """Re-attest and rejoin the fleet as a fresh incarnation."""
        if self.alive:
            return
        self.boot()

    # -- gateway-facing surface ------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests resident on this replica (the routing load signal)."""
        return len(self._queue) + len(self.running) + len(self.swapped)

    @property
    def busy_seconds(self) -> float:
        """GPU-busy seconds over every incarnation so far."""
        current = self.machine.gpu.compute_seconds if self.alive else 0.0
        return self._busy_acc + current

    @property
    def auth_failures(self) -> int:
        """GCM tag-validation failures over every incarnation so far."""
        current = self.machine.gpu.auth_failures if self.alive else 0
        return self._auth_failures_acc + current

    def submit(self, creq: ClusterRequest) -> None:
        """Accept one routed request into the local admission queue."""
        if not self.alive:
            raise ReplicaDead(f"replica-{self.replica_id} is down")
        creq.state = "dispatched"
        creq.replica_history.append(self.replica_id)
        self._queue.append(creq)
        self._kick()

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    # -- serving loop ----------------------------------------------------

    def _loop(self, epoch: int):
        sim = self.sim
        while self.alive and self.epoch == epoch:
            resumed = self._resume_swapped()
            admitted = self._admit()
            if not self.running:
                self._reject_unservable()
                if not (self._queue or self.swapped):
                    self._wake = sim.event()
                    yield self._wake
                continue

            # Preempt (swap out) until this step's block growth fits,
            # then grant the growth.
            yield from self._make_room()

            # Prompt tokens for fresh prefills cross the bus; prefix
            # hits still cost one small control transfer.
            for served in admitted:
                size = max(4 * served.prefill_tokens, _PAYLOAD_BYTES)
                with self.machine.telemetry.bound_trace(served.creq.trace_attempt):
                    self.runtime.memcpy_h2d(MemoryChunk(
                        self._token_in.addr, size, b"\x01" * _PAYLOAD_BYTES,
                        f"r{self.replica_id}.tokens.in",
                    ))
            yield self.runtime.synchronize()
            for served, region in resumed:
                self.machine.host_memory.free(region)
                if served.group.swap_region is region:
                    served.group.swap_region = None

            step_start = sim.now
            work = self._step_work(admitted)
            yield self.machine.gpu.compute(work.flops, work.bytes_touched, layers=work.layers)
            sim.tracer.record(f"cluster.replica-{self.replica_id}", "step", step_start, sim.now)
            collector = active_collector()
            if collector is not None and sim.now > step_start:
                for served in self.running:
                    if served.creq.trace_attempt is not None:
                        collector.add(
                            served.creq.trace_attempt, "step", "compute",
                            f"replica-{self.replica_id}.e{self.epoch}",
                            step_start, sim.now,
                        )

            # Sampled tokens return as a small transfer (not waited on).
            seqs = sum(s.group.request.parallel_n for s in self.running)
            self.runtime.memcpy_d2h(MemoryChunk(
                self._token_out.addr, max(4 * seqs, _PAYLOAD_BYTES),
                b"\x02" * _PAYLOAD_BYTES, f"r{self.replica_id}.tokens.out",
            ))
            self._advance()

    # -- scheduling phases -----------------------------------------------

    def _resume_swapped(self) -> List[Tuple[_Served, object]]:
        resumed = []
        watermark = int(self.blocks.total_blocks * _RESUME_WATERMARK)
        while self.swapped:
            served = self.swapped[-1]
            needed = served.group.blocks_held(self.geometry)
            if not self.blocks.can_allocate(needed + watermark):
                break
            self.swapped.pop()
            self.blocks.allocate(served.group.owner, needed)
            region = served.group.swap_region
            if region is None:
                raise RuntimeError(f"{served.group.owner} swapped without a region")
            with self.machine.telemetry.bound_trace(served.creq.trace_attempt):
                self.runtime.memcpy_h2d(self.machine.host_memory.chunk_at(region.addr))
            self.swap_in_count += 1
            served.group.state = GroupState.RUNNING
            served.creq.state = "running"
            self.running.append(served)
            resumed.append((served, region))
        return resumed

    def _admit(self) -> List[_Served]:
        admitted: List[_Served] = []
        while self._queue and not self.swapped:
            creq = self._queue[0]
            group = SequenceGroup(request=creq.request)
            if not self.blocks.can_allocate(group.blocks_held(self.geometry)):
                break
            self._queue.pop(0)
            self.blocks.allocate(group.owner, group.blocks_held(self.geometry))
            group.state = GroupState.RUNNING
            group.first_schedule_time = self.sim.now
            cached = self.prefix_cache.get(creq.tenant, 0)
            prefill = 0 if cached >= creq.request.prompt_len else creq.request.prompt_len
            creq.prefix_hit = prefill == 0
            if creq.prefix_hit:
                self.prefix_hits += 1
            creq.state = "running"
            served = _Served(creq, group, prefill_tokens=prefill)
            self.running.append(served)
            admitted.append(served)
        return admitted

    def _reject_unservable(self) -> None:
        """Bounce work that can never fit this replica's KV budget.

        Runs only when nothing is running (all blocks reclaimable), so
        an admission/resume failure here means the group exceeds the
        *total* budget — waiting cannot help. The gateway re-routes or
        sheds it.
        """
        def too_big(group: SequenceGroup) -> bool:
            return group.blocks_held(self.geometry) > self.blocks.free_blocks

        if self.swapped and too_big(self.swapped[-1].group):
            served = self.swapped.pop()
            self.blocks.free_owner(served.group.owner)
            if served.group.swap_region is not None:
                self.machine.host_memory.free(served.group.swap_region)
                served.group.swap_region = None
            self.gateway.on_reject(served.creq, self, "kv-budget")
        elif self._queue and too_big(SequenceGroup(request=self._queue[0].request)):
            creq = self._queue.pop(0)
            self.gateway.on_reject(creq, self, "kv-budget")

    def _make_room(self):
        while True:
            growth = sum(s.group.step_block_growth(self.geometry) for s in self.running)
            if self.blocks.can_allocate(growth) or len(self.running) <= 1:
                break
            victim = max(
                self.running,
                key=lambda s: (s.group.request.arrival_time, s.creq.rid),
            )
            yield from self._swap_out(victim)
        for served in self.running:
            self.blocks.allocate(
                served.group.owner, served.group.step_block_growth(self.geometry)
            )

    def _swap_out(self, served: _Served):
        self.running.remove(served)
        group = served.group
        nbytes = group.kv_bytes(self.geometry)
        group.swap_epoch += 1
        tag = f"r{self.replica_id}.kv.{group.owner}.e{group.swap_epoch}"
        payload = b"\x03" * _PAYLOAD_BYTES
        region = self.machine.host_memory.allocate(nbytes, tag=tag)
        group.swap_region = region
        self.machine.gpu._contents[tag] = payload
        with self.machine.telemetry.bound_trace(served.creq.trace_attempt):
            handle = self.runtime.memcpy_d2h(MemoryChunk(region.addr, nbytes, payload, tag))
        yield handle.api_done
        self.blocks.free_owner(group.owner)
        group.state = GroupState.SWAPPED
        served.creq.state = "swapped"
        self.swapped.append(served)
        self.swap_out_count += 1

    # -- compute & progress ----------------------------------------------

    def _step_work(self, admitted: List[_Served]) -> LayerWork:
        prefill_tokens = sum(s.prefill_tokens for s in admitted)
        decode = [s for s in self.running if s not in admitted or s.prefill_tokens == 0]
        decode_seqs = sum(s.group.request.parallel_n for s in decode)
        flops = 0.0
        bytes_touched = 0.0
        if prefill_tokens:
            work = self.cost.prefill(prefill_tokens)
            flops += work.flops
            bytes_touched += work.bytes_touched
        if decode_seqs:
            ctx = mean([float(s.group.context_len()) for s in decode])
            work = self.cost.decode_step(decode_seqs, ctx)
            flops += work.flops
            bytes_touched += work.bytes_touched
        return LayerWork(flops, bytes_touched, layers=self.spec.n_layers)

    def _advance(self) -> None:
        now = self.sim.now
        still: List[_Served] = []
        for served in self.running:
            group = served.group
            group.generated += 1
            self.gateway.on_token(served.creq, self, group.generated)
            if group.done:
                group.state = GroupState.FINISHED
                group.finish_time = now
                self.blocks.free_owner(group.owner)
                self._remember_prefix(served.creq)
                self.completed += 1
                self.gateway.on_complete(served.creq, self)
            else:
                still.append(served)
        self.running = still

    def _remember_prefix(self, creq: ClusterRequest) -> None:
        prompt = creq.request.prompt_len
        self.prefix_cache[creq.tenant] = max(
            self.prefix_cache.get(creq.tenant, 0), prompt
        )
        while len(self.prefix_cache) > _PREFIX_CACHE_TENANTS:
            self.prefix_cache.pop(next(iter(self.prefix_cache)))

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"Replica({self.replica_id}, {state}, epoch={self.epoch}, "
            f"outstanding={self.outstanding})"
        )
