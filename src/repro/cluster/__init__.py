"""Multi-replica confidential serving cluster.

N independent CVM+GPU replicas (each a full :class:`repro.cc.Machine`
with its own attested session) run inside one shared simulator behind
an encrypted-session gateway: per-tenant attested key exchange,
admission control with shedding, pluggable routing (round-robin /
least-loaded / tenant-affinity), and crash/recover failover that
re-admits orphaned requests through fresh handshakes while a
cluster-wide audit proves no IV is ever reused under any key.
"""

from .cluster import CLUSTER_TRACE, Cluster, ClusterResult, run_cluster
from .gateway import Gateway
from .replica import ClusterRequest, Replica, ReplicaDead
from .routing import (
    POLICIES,
    AffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
)
from .tenant import ClusterIvAudit, IvReuseError, TenantChannel

__all__ = [
    "AffinityPolicy",
    "CLUSTER_TRACE",
    "Cluster",
    "ClusterIvAudit",
    "ClusterRequest",
    "ClusterResult",
    "Gateway",
    "IvReuseError",
    "LeastLoadedPolicy",
    "POLICIES",
    "Replica",
    "ReplicaDead",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "TenantChannel",
    "make_policy",
    "run_cluster",
]
