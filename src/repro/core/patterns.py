"""Swap-pattern detectors (§5.1, Figure 5).

Today's LLM systems exhibit a small set of swap-in orderings that the
predictor can recognize from the low-level transfer trace alone:

* **Repetitive** — model offloading (FlexGen, DeepSpeed): the same
  layers stream in the same cyclic order every iteration.
* **FIFO** — layer-wise KV-cache swapping: blocks swapped out in layer
  order come back in the same order.
* **LIFO** — request-wise KV-cache swapping (vLLM): the lowest-priority
  request is evicted first and reloaded last.

Each detector scores its own hypothesis against the observed history;
the predictor picks the best-scoring one per traffic class. Detectors
are deliberately open-coded and independent so that a new pattern can
be added by implementing :class:`PatternDetector` (the paper's
"implement a new pattern" extension point).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, List, Optional, Sequence

__all__ = [
    "FifoDetector",
    "LifoDetector",
    "PatternDetector",
    "RepetitiveDetector",
]

#: A chunk identity as seen at the driver level: (address, size).
ChunkKey = tuple


class PatternDetector(abc.ABC):
    """One hypothesis about the order of future swap-ins."""

    name = "abstract"

    @abc.abstractmethod
    def observe_swap_out(self, key: ChunkKey) -> None:
        """A chunk left the GPU (became predictable)."""

    @abc.abstractmethod
    def observe_swap_in(self, key: ChunkKey) -> None:
        """A chunk was requested back by the GPU."""

    @abc.abstractmethod
    def predict(self, count: int) -> List[ChunkKey]:
        """The next ``count`` swap-ins under this hypothesis."""

    @property
    @abc.abstractmethod
    def score(self) -> float:
        """Rolling prediction accuracy in [0, 1]."""


class _ScoredDetector(PatternDetector):
    """Shared hit/miss accounting with exponential forgetting."""

    _DECAY = 0.9

    def __init__(self) -> None:
        self._score = 0.0
        self._primed = False

    def _grade(self, predicted: Optional[ChunkKey], actual: ChunkKey) -> None:
        if predicted is None:
            return  # No hypothesis yet: neither credit nor blame.
        hit = 1.0 if predicted == actual else 0.0
        if self._primed:
            self._score = self._DECAY * self._score + (1 - self._DECAY) * hit
        else:
            self._score = hit
            self._primed = True

    @property
    def score(self) -> float:
        return self._score


class RepetitiveDetector(_ScoredDetector):
    """Cyclic layer-order detector for model offloading (Fig. 5a).

    Maintains the swap-in history and finds the smallest period ``p``
    such that the tail of the history is ``p``-periodic. The next
    swap-in is then the element one period back.
    """

    name = "repetitive"

    def __init__(self, max_history: int = 512, min_confirm: int = 1) -> None:
        super().__init__()
        self._history: Deque[ChunkKey] = deque(maxlen=max_history)
        self._min_confirm = min_confirm

    def observe_swap_out(self, key: ChunkKey) -> None:
        # Offloaded weights never change residency mid-run; swap-outs
        # carry no ordering signal for this hypothesis.
        pass

    def observe_swap_in(self, key: ChunkKey) -> None:
        self._grade(self._next(), key)
        self._history.append(key)

    def _period(self) -> Optional[int]:
        history = list(self._history)
        n = len(history)
        for period in range(1, n - 1 + 1):
            confirmed = n - period
            if confirmed < self._min_confirm:
                continue
            if all(history[i] == history[i - period] for i in range(period, n)):
                return period
        return None

    def _next(self, ahead: int = 0) -> Optional[ChunkKey]:
        period = self._period()
        if period is None:
            return None
        history = list(self._history)
        return history[len(history) - period + (ahead % period)]

    def predict(self, count: int) -> List[ChunkKey]:
        period = self._period()
        if period is None:
            return []
        history = list(self._history)
        cycle = history[-period:]
        return [cycle[i % period] for i in range(count)]


class _PoolDetector(_ScoredDetector):
    """Base for FIFO/LIFO hypotheses over the swapped-out pool."""

    def __init__(self) -> None:
        super().__init__()
        self._pool: List[ChunkKey] = []  # In swap-out order.

    def observe_swap_out(self, key: ChunkKey) -> None:
        if key in self._pool:
            self._pool.remove(key)
        self._pool.append(key)

    def observe_swap_in(self, key: ChunkKey) -> None:
        predictions = self.predict(1)
        self._grade(predictions[0] if predictions else None, key)
        if key in self._pool:
            self._pool.remove(key)

    @property
    def pool(self) -> Sequence[ChunkKey]:
        return tuple(self._pool)


class FifoDetector(_PoolDetector):
    """First-swapped-out, first-swapped-in (layer-wise KV swapping)."""

    name = "fifo"

    def predict(self, count: int) -> List[ChunkKey]:
        return self._pool[:count]


class MarkovDetector(_ScoredDetector):
    """First-order transition model over swap-in successors.

    The paper's stated future work is to *learn* the predictor ``f``
    instead of hand-writing pattern heuristics (§5.1). This detector
    is the simplest useful learner: it counts, for every chunk, which
    chunk most often followed it in the swap-in stream, and predicts
    by walking that transition table. On strictly periodic traffic it
    converges to the repetitive detector; on noisy-but-biased traffic
    it can pick up structure the fixed hypotheses miss. It races in
    the same scoreboard as the hand-written detectors, so it only
    drives predictions when it is actually the most accurate.
    """

    name = "markov"

    def __init__(self, max_successors: int = 8) -> None:
        super().__init__()
        self._transitions: dict = {}
        self._last: Optional[ChunkKey] = None
        self._max_successors = max_successors

    def observe_swap_out(self, key: ChunkKey) -> None:
        pass  # Successor structure lives in the swap-in stream alone.

    def observe_swap_in(self, key: ChunkKey) -> None:
        self._grade(self._best_successor(self._last), key)
        if self._last is not None:
            counts = self._transitions.setdefault(self._last, {})
            counts[key] = counts.get(key, 0) + 1
            if len(counts) > self._max_successors:
                # Drop the weakest successor to bound state.
                weakest = min(counts, key=counts.get)
                del counts[weakest]
        self._last = key

    def _best_successor(self, key: Optional[ChunkKey]) -> Optional[ChunkKey]:
        if key is None:
            return None
        counts = self._transitions.get(key)
        if not counts:
            return None
        return max(counts, key=counts.get)

    def predict(self, count: int) -> List[ChunkKey]:
        out: List[ChunkKey] = []
        cursor = self._last
        seen = set()
        for _ in range(count):
            nxt = self._best_successor(cursor)
            if nxt is None or (nxt, cursor) in seen:
                break
            seen.add((nxt, cursor))
            out.append(nxt)
            cursor = nxt
        return out


class LifoDetector(_PoolDetector):
    """Last-swapped-out, first-swapped-in (request-wise KV swapping)."""

    name = "lifo"

    def predict(self, count: int) -> List[ChunkKey]:
        return list(reversed(self._pool[-count:])) if count else []
