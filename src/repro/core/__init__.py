"""PipeLLM core: speculative pipelined encryption runtime."""

from .classify import SwapClass, TransferClass, TransferClassifier
from .config import ClusterConfig, DisaggConfig, PipeLLMConfig
from .patterns import (
    FifoDetector,
    LifoDetector,
    MarkovDetector,
    PatternDetector,
    RepetitiveDetector,
)
from .pipeline import SpeculationPipeline, StagedEntry
from .predictor import PredictionTarget, SwapPredictor
from .runtime import PipeLLMRuntime
from .validator import Validation, ValidationOutcome, Validator

__all__ = [
    "FifoDetector",
    "LifoDetector",
    "MarkovDetector",
    "PatternDetector",
    "ClusterConfig",
    "DisaggConfig",
    "PipeLLMConfig",
    "PipeLLMRuntime",
    "PredictionTarget",
    "RepetitiveDetector",
    "SpeculationPipeline",
    "StagedEntry",
    "SwapClass",
    "SwapPredictor",
    "TransferClass",
    "TransferClassifier",
    "Validation",
    "ValidationOutcome",
    "Validator",
]
