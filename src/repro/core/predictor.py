"""The PipeLLM predictor (§5.1).

Implements the function ``f([B0..Bn], {Ci..Cj}, IV_cur) -> (C_next,
IV_next)`` from the problem statement: given the swap-in batch
history, the currently swapped-out chunks, and the IV position, emit
the next chunks expected to swap in.

Per traffic class (weights / KV cache) the predictor runs every
registered :class:`~repro.core.patterns.PatternDetector` hypothesis in
parallel and predicts with the best-scoring one. The paper's ablation
knob (Fig. 10 "PipeLLM-0": zero *sequence* prediction success) is the
``sabotage`` option, which reverses the emitted order — the predicted
*set* stays right, the *sequence* is always wrong, exactly the failure
mode the ablation isolates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .classify import SwapClass, TransferClassifier
from .patterns import (
    FifoDetector,
    LifoDetector,
    MarkovDetector,
    PatternDetector,
    RepetitiveDetector,
)

__all__ = ["PredictionTarget", "SwapPredictor"]


@dataclass(frozen=True)
class PredictionTarget:
    """A chunk the predictor expects the GPU to request soon."""

    addr: int
    size: int
    swap_class: SwapClass

    @property
    def key(self):
        return (self.addr, self.size)


class SwapPredictor:
    """Per-class hypothesis racing over the observed transfer trace."""

    def __init__(
        self,
        classifier: TransferClassifier,
        sabotage: Optional[str] = None,
    ) -> None:
        if sabotage not in (None, "reverse"):
            raise ValueError(f"unknown sabotage mode: {sabotage}")
        self.classifier = classifier
        self.sabotage = sabotage
        self._detectors: Dict[SwapClass, List[PatternDetector]] = {
            SwapClass.WEIGHTS: [RepetitiveDetector(), MarkovDetector()],
            SwapClass.KV_CACHE: [
                LifoDetector(),
                FifoDetector(),
                RepetitiveDetector(),
                MarkovDetector(),
            ],
        }
        self.swap_ins_observed = 0
        self.swap_outs_observed = 0

    # -- observation ---------------------------------------------------------

    def observe_swap_out(self, addr: int, size: int) -> None:
        """Feed one device→host swap into every hypothesis."""
        swap_class = self.classifier.swap_class(size)
        if swap_class is None:
            return
        self.swap_outs_observed += 1
        for detector in self._detectors[swap_class]:
            detector.observe_swap_out((addr, size))

    def observe_swap_in(self, addr: int, size: int) -> None:
        """Feed one host→device swap into every hypothesis."""
        swap_class = self.classifier.swap_class(size)
        if swap_class is None:
            return
        self.swap_ins_observed += 1
        for detector in self._detectors[swap_class]:
            detector.observe_swap_in((addr, size))

    # -- prediction -----------------------------------------------------------

    def best_detector(self, swap_class: SwapClass) -> PatternDetector:
        """Highest-scoring hypothesis for a class (stable tie-break)."""
        return max(self._detectors[swap_class], key=lambda d: d.score)

    def predict(self, count: int, swap_class: SwapClass) -> List[PredictionTarget]:
        """Next ``count`` expected swap-ins for one traffic class."""
        detector = self.best_detector(swap_class)
        keys = detector.predict(count)
        if self.sabotage == "reverse":
            keys = list(reversed(keys))
        return [PredictionTarget(addr, size, swap_class) for addr, size in keys]

    def predict_all(self, count: int, kv_count: Optional[int] = None) -> List[PredictionTarget]:
        """Merged prediction across classes.

        Weight streaming is strictly ordered and continuous, so when a
        weights hypothesis is live its predictions come first; KV
        predictions fill the remaining depth (optionally capped at
        ``kv_count`` — KV staging pays for depth under LIFO churn).
        """
        weights = self.predict(count, SwapClass.WEIGHTS)
        remaining = count - len(weights)
        if kv_count is not None:
            remaining = min(remaining, kv_count)
        kv = self.predict(remaining, SwapClass.KV_CACHE) if remaining > 0 else []
        return weights + kv

    def scores(self) -> Dict[str, float]:
        """Per-detector rolling accuracy, for traces and tests."""
        out: Dict[str, float] = {}
        for swap_class, detectors in self._detectors.items():
            for detector in detectors:
                out[f"{swap_class.value}.{detector.name}"] = detector.score
        return out
