"""The PipeLLM validator (§5.2).

At the moment the application submits a memcpy, the validator decides
what can be done with the speculative state — *without comparing data*
(the whole point of the page-protection scheme is that a staleness
check costs one metadata lookup, not a plaintext scan):

* the (address, length) label of the request must exactly match a
  staged entry (entries invalidated by write faults are already gone);
* the entry's predicted IV is compared against the channel's current
  IV to pick the commit strategy (direct / NOP-pad / dead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .pipeline import SpeculationPipeline, StagedEntry

__all__ = ["ValidationOutcome", "Validation", "Validator"]


class ValidationOutcome(enum.Enum):
    """What the validator concluded about one swap-in request."""

    #: Staged, and its IV is exactly the channel's next IV: ship it.
    HIT_NOW = "hit_now"
    #: Staged with a future IV: usable after the IV gap is filled
    #: (by other requests in the batch, or by padding NOPs — §5.3).
    HIT_FUTURE = "hit_future"
    #: Staged, but its IV already passed: cryptographically dead.
    STALE = "stale"
    #: Not staged at all: encrypt on demand.
    MISS = "miss"


@dataclass(frozen=True)
class Validation:
    outcome: ValidationOutcome
    entry: Optional[StagedEntry]
    #: True when the fault plane forced this outcome (injected
    #: misprediction) — the degradation controller counts it as hard
    #: evidence even if the pipeline is empty afterwards.
    injected: bool = False

    @property
    def usable(self) -> bool:
        return self.outcome in (ValidationOutcome.HIT_NOW, ValidationOutcome.HIT_FUTURE)


class Validator:
    """Stateless decision logic over the pipeline + IV position.

    Outcome counts are hub-backed metrics (``validator.*``); the
    attribute names are kept as read-only properties.
    """

    def __init__(self, pipeline: SpeculationPipeline, faults=None) -> None:
        self.pipeline = pipeline
        #: Optional :class:`repro.faults.FaultInjector`: staged hits
        #: can be forced into misses, modeling wrong sequence
        #: predictions without needing a hostile workload.
        self.faults = faults
        metrics = pipeline.machine.telemetry.metrics
        self._hits = metrics.counter("validator.hits")
        self._future_hits = metrics.counter("validator.future_hits")
        self._stale = metrics.counter("validator.stale")
        self._misses = metrics.counter("validator.misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def future_hits(self) -> int:
        return self._future_hits.value

    @property
    def stale(self) -> int:
        return self._stale.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def validate(self, addr: int, size: int, current_iv: int) -> Validation:
        """Classify one swap-in request against the staged pipeline."""
        entry = self.pipeline.find(addr, size)
        if (entry is not None and self.faults is not None
                and self.faults.mispredict()):
            # Injected misprediction: the staged ciphertext is treated
            # as wrong — killed, and the request misses. Its predicted
            # IV remains unconsumed, exactly like a real bad guess.
            self.pipeline.invalidate_entry(entry, "injected-mispredict")
            self._misses.add()
            return Validation(ValidationOutcome.MISS, None, injected=True)
        if entry is None:
            self._misses.add()
            return Validation(ValidationOutcome.MISS, None)
        if entry.iv == current_iv:
            self._hits.add()
            return Validation(ValidationOutcome.HIT_NOW, entry)
        if entry.iv > current_iv:
            self._future_hits.add()
            return Validation(ValidationOutcome.HIT_FUTURE, entry)
        self._stale.add()
        return Validation(ValidationOutcome.STALE, entry)

    @property
    def requests(self) -> int:
        return self.hits + self.future_hits + self.stale + self.misses

    @property
    def success_rate(self) -> float:
        """Fraction of swap requests served from staged ciphertext."""
        total = self.requests
        return (self.hits + self.future_hits) / total if total else 0.0
