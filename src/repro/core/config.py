"""PipeLLM runtime configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .classify import DEFAULT_SWAP_THRESHOLD

__all__ = ["PipeLLMConfig"]


@dataclass
class PipeLLMConfig:
    """Tunables of the speculative pipelined encryption runtime.

    Defaults match the paper's deployment: a short pipeline of large
    chunks, all encryption threads ganged per chunk for model
    offloading, asynchronous decryption on, and no sabotage.
    """

    #: Transfers below this size are control traffic, never pipelined.
    swap_threshold: int = DEFAULT_SWAP_THRESHOLD
    #: Target number of speculatively encrypted chunks staged ahead.
    depth: int = 8
    #: Separate (smaller) staging window for KV-cache predictions.
    #: Under LIFO resume with interleaved swap-outs, deep KV staging
    #: inverts IV order against commit order — every inversion wastes
    #: the overwritten entries' encryptions — so the window is kept
    #: shallow; weight streaming (strictly in-order) uses ``depth``.
    kv_depth: int = 3
    #: Extra IV headroom reserved for interleaved small transfers
    #: (§5.1 "predict a larger IV ... as a leeway"). With adaptation
    #: on, this is only the starting value.
    leeway: int = 0
    #: Adapt the leeway to the observed rate of small transfers
    #: between swaps (exponential moving average).
    adaptive_leeway: bool = True
    #: Upper bound for the adaptive leeway. NOPs are cheap (~15 µs)
    #: but every pad NOP consumes an IV that may skip a sibling staged
    #: entry, so unbounded leeway self-poisons the pipeline; 64 covers
    #: realistic bursts of interleaved small transfers (§5.1, §5.3).
    max_leeway: int = 64
    #: Private-memory budget for staged speculative ciphertext (§6).
    max_staged_bytes: int = 32 << 30
    #: How many encryption worker threads gang up on one chunk
    #: (0 = all of them). Model offloading needs >1 to beat PCIe rate.
    enc_ways: int = 0
    #: Decrypt swapped-out data off the critical path (§5.4).
    async_decrypt: bool = True
    #: Prediction sabotage for the Fig. 10 ablation: ``None`` or
    #: ``"reverse"`` (the PipeLLM-0 configuration — right set of
    #: chunks, always-wrong sequence).
    sabotage: Optional[str] = None
    #: CPU overhead of the validation fast path per request (s).
    validation_overhead: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.leeway < 0 or self.max_leeway < 0:
            raise ValueError("leeway must be non-negative")
        if self.swap_threshold <= 0:
            raise ValueError("swap_threshold must be positive")
