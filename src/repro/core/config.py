"""PipeLLM runtime and cluster configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.plan import FaultPlan
from ..faults.policies import FaultPolicy
from .classify import DEFAULT_SWAP_THRESHOLD

__all__ = ["ClusterConfig", "DisaggConfig", "PipeLLMConfig"]


@dataclass
class PipeLLMConfig:
    """Tunables of the speculative pipelined encryption runtime.

    Defaults match the paper's deployment: a short pipeline of large
    chunks, all encryption threads ganged per chunk for model
    offloading, asynchronous decryption on, and no sabotage.
    """

    #: Transfers below this size are control traffic, never pipelined.
    swap_threshold: int = DEFAULT_SWAP_THRESHOLD
    #: Target number of speculatively encrypted chunks staged ahead.
    depth: int = 8
    #: Separate (smaller) staging window for KV-cache predictions.
    #: Under LIFO resume with interleaved swap-outs, deep KV staging
    #: inverts IV order against commit order — every inversion wastes
    #: the overwritten entries' encryptions — so the window is kept
    #: shallow; weight streaming (strictly in-order) uses ``depth``.
    kv_depth: int = 3
    #: Extra IV headroom reserved for interleaved small transfers
    #: (§5.1 "predict a larger IV ... as a leeway"). With adaptation
    #: on, this is only the starting value.
    leeway: int = 0
    #: Adapt the leeway to the observed rate of small transfers
    #: between swaps (exponential moving average).
    adaptive_leeway: bool = True
    #: Upper bound for the adaptive leeway. NOPs are cheap (~15 µs)
    #: but every pad NOP consumes an IV that may skip a sibling staged
    #: entry, so unbounded leeway self-poisons the pipeline; 64 covers
    #: realistic bursts of interleaved small transfers (§5.1, §5.3).
    max_leeway: int = 64
    #: Private-memory budget for staged speculative ciphertext (§6).
    max_staged_bytes: int = 32 << 30
    #: How many encryption worker threads gang up on one chunk
    #: (0 = all of them). Model offloading needs >1 to beat PCIe rate.
    enc_ways: int = 0
    #: Decrypt swapped-out data off the critical path (§5.4).
    async_decrypt: bool = True
    #: Prediction sabotage for the Fig. 10 ablation: ``None`` or
    #: ``"reverse"`` (the PipeLLM-0 configuration — right set of
    #: chunks, always-wrong sequence).
    sabotage: Optional[str] = None
    #: CPU overhead of the validation fast path per request (s).
    validation_overhead: float = 1.0e-6
    #: How the runtime survives faults: retry/backoff for recovery
    #: re-encryptions, optional per-request timeout, and the
    #: degradation-controller thresholds. ``None`` uses the defaults.
    fault_policy: Optional[FaultPolicy] = None

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.leeway < 0 or self.max_leeway < 0:
            raise ValueError("leeway must be non-negative")
        if self.swap_threshold <= 0:
            raise ValueError("swap_threshold must be positive")


#: Routing policy names accepted by :class:`ClusterConfig` (resolved
#: by :mod:`repro.cluster.routing`).
CLUSTER_POLICIES = ("round-robin", "least-loaded", "affinity")


@dataclass
class ClusterConfig:
    """Tunables of the multi-replica confidential serving cluster.

    One config describes the whole fleet: how many CVM+GPU replicas
    run inside the shared simulator, how the gateway admits and routes
    per-tenant sessions, the SLO the service advertises, and the
    optional replica fault to inject.
    """

    #: Number of CVM+GPU replicas behind the gateway.
    replicas: int = 2
    #: Routing policy name (see ``CLUSTER_POLICIES``).
    policy: str = "least-loaded"
    #: Per-replica runtime: "pipellm", "cc" (inline baseline) or
    #: "native" (CC off — the w/o-CC fleet baseline).
    system: str = "pipellm"
    #: Gateway admission queue capacity; arrivals beyond it are shed.
    queue_capacity: int = 64
    #: Queued requests older than this are shed (seconds).
    admission_timeout: float = 5.0
    #: End-to-end latency target counted for SLO attainment (seconds).
    slo_latency: float = 30.0
    #: Maximum requests concurrently resident on one replica
    #: (running + locally queued); the gateway holds the rest.
    max_outstanding: int = 8
    #: Modeled latency of one tenant key-exchange + attestation.
    handshake_latency: float = 500e-6
    #: vLLM-style KV block size (tokens) on each replica.
    block_size: int = 16
    #: GPU bytes reserved away from the KV pool (pressure knob).
    reserve_bytes: int = 4 << 30
    #: Simulated time at which one replica crashes (None = no fault).
    fail_at: Optional[float] = None
    #: Which replica index the fault hits.
    fail_replica: int = 0
    #: Crash-to-recovery delay (seconds); the replica re-attests and
    #: rejoins with a fresh machine incarnation.
    recover_after: float = 10.0
    #: Workload / payload seed (the CLI ``--seed`` overrides it).
    seed: int = 42
    #: Optional fault plan threaded through every replica machine
    #: (PCIe/engine/crypto faults via per-replica forked injectors)
    #: and driving the random replica-crash schedule
    #: (``replica_crash_rate``). ``fail_at`` above remains the legacy
    #: one-shot crash and composes with the plan.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.policy not in CLUSTER_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {CLUSTER_POLICIES}"
            )
        if self.system not in ("pipellm", "cc", "native"):
            raise ValueError(f"unknown system {self.system!r}")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.admission_timeout <= 0 or self.slo_latency <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if not 0 <= self.fail_replica < self.replicas:
            raise ValueError("fail_replica out of range")
        if self.recover_after < 0:
            raise ValueError("recover_after must be non-negative")


@dataclass
class DisaggConfig:
    """Tunables of the disaggregated prefill/decode serving fleet.

    One config describes the split topology: how many dedicated
    prefill and decode workers share the simulator, which migration
    system moves KV caches between them, how decode placement chases
    KV locality, and the optional worker crash to inject.
    """

    #: Dedicated prompt-prefill workers. ``0`` selects the monolithic
    #: baseline: requests go straight to decode workers, which prefill
    #: inline — serialized with their own decode steps.
    prefill_workers: int = 1
    #: Continuous-batching decode workers.
    decode_workers: int = 3
    #: Migration/runtime system: "pipellm" (speculative staged IVs),
    #: "cc" (inline serialized AES-GCM) or "native" (CC off).
    system: str = "pipellm"
    #: Decode-placement policy name (see ``CLUSTER_POLICIES``);
    #: prefill placement is always least-loaded.
    decode_policy: str = "affinity"
    #: vLLM-style KV block size (tokens) on each worker.
    block_size: int = 16
    #: GPU bytes reserved away from each decode worker's KV pool.
    reserve_bytes: int = 4 << 30
    #: Named hardware parameter pack (``repro.hw.get_params``); None
    #: uses the default H100-CC calibration.
    hw_pack: Optional[str] = None
    #: Simulated time at which one worker crashes (None = no fault).
    fail_at: Optional[float] = None
    #: Which pool the fault hits: "prefill" or "decode".
    fail_kind: str = "decode"
    #: Worker index within that pool.
    fail_index: int = 0
    #: Crash-to-recovery delay (seconds); the worker re-attests and
    #: rejoins as a fresh incarnation.
    recover_after: float = 5.0
    #: Workload / payload seed (the CLI ``--seed`` overrides it).
    seed: int = 42
    #: Optional fault plan threaded through every worker machine and
    #: the migration fabric (mispredict storms, chunk drops, random
    #: worker crashes via ``replica_crash_rate``).
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.prefill_workers < 0:
            raise ValueError("prefill_workers must be >= 0")
        if self.decode_workers < 1:
            raise ValueError("decode_workers must be >= 1")
        if self.system not in ("pipellm", "cc", "native"):
            raise ValueError(f"unknown system {self.system!r}")
        if self.decode_policy not in CLUSTER_POLICIES:
            raise ValueError(
                f"unknown policy {self.decode_policy!r}; "
                f"choose from {CLUSTER_POLICIES}"
            )
        if self.fail_kind not in ("prefill", "decode"):
            raise ValueError("fail_kind must be 'prefill' or 'decode'")
        pool = self.prefill_workers if self.fail_kind == "prefill" else self.decode_workers
        if self.fail_at is not None and not 0 <= self.fail_index < pool:
            raise ValueError("fail_index out of range for its pool")
        if self.recover_after < 0:
            raise ValueError("recover_after must be non-negative")
