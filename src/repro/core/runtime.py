"""The user-transparent PipeLLM runtime (§5, Figure 4).

:class:`PipeLLMRuntime` implements the same :class:`DeviceRuntime`
surface as the baselines, so serving engines run on it unmodified —
the paper's user-transparency requirement. Internally it is the
composition of:

* a :class:`TransferClassifier` separating swaps from control traffic,
* a :class:`SwapPredictor` racing pattern hypotheses over the trace,
* a :class:`SpeculationPipeline` pre-encrypting predicted chunks under
  predicted IVs into private memory,
* a :class:`Validator` deciding HIT/FUTURE/STALE/MISS per request,
* an error handler (re-ordering via deferral, NOP padding, pipeline
  relinquishing — §5.3),
* an asynchronous decryptor for swap-outs (§5.4).

The functional crypto layer is kept in lock-step with the timing
model; any IV-accounting bug in this file would surface as a real GCM
authentication failure in the GPU copy-engine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cc.api import D2H, DEFAULT_TRACE_CAP, H2D, DeviceRuntime, TransferHandle
from ..cc.machine import Machine
from ..crypto import AuthenticationError, EncryptedMessage, tamper_tag
from ..faults.policies import DegradationController, FaultPolicy, PipelineMode
from ..hw.memory import MemoryChunk, PageFault
from ..sim import Event
from ..telemetry import FaultEvent, IvEvent, RecoveryEvent, SpeculationEvent
from ..telemetry.hub import RequestRecord
from .classify import TransferClassifier
from .config import PipeLLMConfig
from .pipeline import SpeculationPipeline, StagedEntry
from .predictor import SwapPredictor
from .validator import ValidationOutcome, Validator

__all__ = ["PipeLLMRuntime"]

#: Consecutive validation misses (with a live pipeline) that trigger a
#: full relinquish: the prediction is evidently off the rails.
_RELINQUISH_AFTER_MISSES = 3

#: How long a suspended request waits for a batch boundary before the
#: watchdog resolves it with NOP padding (seconds). Long enough for
#: same-instant batch mates to arrive, short against any transfer.
_DEFER_GRACE = 50e-6


@dataclass
class _PendingDecrypt:
    """A swap-out whose plaintext has not landed yet (§5.4)."""

    addr: int
    size: int
    plaintext: bytes
    ready: Event
    owner: str


class PipeLLMRuntime(DeviceRuntime):
    """Speculative pipelined encryption over a CC-enabled machine."""

    def __init__(
        self,
        machine: Machine,
        config: Optional[PipeLLMConfig] = None,
        trace_cap: Optional[int] = DEFAULT_TRACE_CAP,
    ) -> None:
        if not machine.cc_enabled:
            raise ValueError("PipeLLM requires a CC-enabled machine")
        super().__init__(machine, trace_cap=trace_cap)
        self.params = machine.params
        self.config = config or PipeLLMConfig()
        self.classifier = TransferClassifier(swap_threshold=self.config.swap_threshold)
        self.predictor = SwapPredictor(self.classifier, sabotage=self.config.sabotage)
        self.pipeline = SpeculationPipeline(machine, self.config)
        #: The machine-level fault injector (None on clean runs).
        self.faults = machine.faults
        self.validator = Validator(self.pipeline, faults=machine.faults)
        #: Survival policies: recovery retry budget, optional request
        #: timeout, degradation thresholds.
        self.fault_policy = self.config.fault_policy or FaultPolicy()
        #: SPECULATIVE / DEGRADED / PROBING state machine (§5.3's
        #: relinquish generalized into a closed control loop).
        self.fault_controller = DegradationController(
            self.fault_policy, clock=lambda: self.sim.now
        )
        self.fault_controller.on_transition(self._on_mode_change)
        machine.host_memory.on_fault(self._on_fault)
        machine.host_memory.on_free(self._on_free)

        # Wire-order chain: commits hit the PCIe link in IV order.
        self._wire_tail: Event = self.sim.event()
        self._wire_tail.succeed()
        # Requests suspended until the batch boundary (Fig. 6).
        self._deferred: List[Tuple[TransferHandle, StagedEntry, Optional[RequestRecord]]] = []
        self._pending_decrypts: Dict[int, _PendingDecrypt] = {}
        self.telemetry = machine.telemetry

        # Adaptive IV leeway (§5.1). Two signals: an EMA of small
        # transfers per swap (the floor), and a multiplicative-increase
        # value driven by stale deaths — over-predicting an IV costs a
        # few NOPs, under-predicting costs a full re-encryption, so the
        # controller errs high aggressively and decays slowly.
        self._leeway_ema = float(self.config.leeway)
        self._leeway_value = float(self.config.leeway)
        self._small_since_swap = 0
        self._consecutive_misses = 0

        # Statistics surfaced by stats() live on the telemetry hub as
        # always-on counters; the historical attribute names remain
        # available as read-only properties below.
        metrics = machine.telemetry.metrics
        self._nops_sent = metrics.counter("runtime.nops_sent")
        self._ondemand_encryptions = metrics.counter("runtime.ondemand_encryptions")
        self._small_transfers = metrics.counter("runtime.small_transfers")
        self._sync_decrypts = metrics.counter("runtime.sync_decrypts")
        self._async_decrypts = metrics.counter("runtime.async_decrypts")
        self._deferred_total = metrics.counter("runtime.deferred")
        self._auth_recoveries = metrics.counter("runtime.auth_recoveries")
        self._timeouts = metrics.counter("runtime.timeouts")
        self._mode_switches = metrics.counter("runtime.mode_switches")
        self._degraded_commits = metrics.counter("runtime.degraded_commits")

    @property
    def nops_sent(self) -> int:
        return self._nops_sent.value

    @property
    def ondemand_encryptions(self) -> int:
        return self._ondemand_encryptions.value

    @property
    def small_transfers(self) -> int:
        return self._small_transfers.value

    @property
    def sync_decrypts(self) -> int:
        return self._sync_decrypts.value

    @property
    def async_decrypts(self) -> int:
        return self._async_decrypts.value

    @property
    def deferred_total(self) -> int:
        return self._deferred_total.value

    @property
    def auth_recoveries(self) -> int:
        return self._auth_recoveries.value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @property
    def mode_switches(self) -> int:
        return self._mode_switches.value

    @property
    def degraded_commits(self) -> int:
        return self._degraded_commits.value

    # -- model hints (§4.2: "We assume LLM models are known") ----------------

    def hint_weight_chunk_size(self, nbytes: int) -> None:
        """Register the exact byte size of an offloadable weight chunk."""
        self.classifier.register_weight_size(nbytes)

    def hint_kv_block_size(self, nbytes: int) -> None:
        """Register the exact byte size of a KV-cache swap unit."""
        self.classifier.register_kv_block_size(nbytes)

    # -- host → device ----------------------------------------------------------

    def memcpy_h2d(self, chunk: MemoryChunk) -> TransferHandle:
        self._record(H2D, chunk)
        handle = TransferHandle(chunk, H2D, self.sim.event(), self.sim.event())
        self._track(handle.complete)
        record = self._telemetry_request(handle)

        if not self.classifier.is_swap(chunk.size):
            self._small_transfers.add()
            self._small_since_swap += 1
            if record is not None:
                record.kind = "control"
            self._commit_ondemand(handle, chunk, parallel=False, blocking_api=True,
                                  record=record)
            # Small transfers advance the IV past staged predictions;
            # proactively re-encrypt anything that went stale (off the
            # critical path — only the engine queue pays).
            self._refresh_pipeline()
            return handle

        self.predictor.observe_swap_in(chunk.addr, chunk.size)
        self._note_swap_arrival()
        if self.faults is not None and self.faults.desync_iv():
            self._inject_desync()
        self.fault_controller.poll()
        if not self.fault_controller.speculation_enabled:
            # Degraded mode (§5.3 escalated): non-speculative in-order
            # encryption — immune to mispredictions by construction.
            # The predictor keeps observing so speculation can resume
            # warm once the controller probes its way back.
            self._degraded_commits.add()
            if record is not None:
                record.kind = "swap"
                record.outcome = "degraded"
            self._commit_ondemand(handle, chunk, parallel=True, blocking_api=True,
                                  record=record)
            if record is not None:
                record.strategy = "degraded"
            self._watch_request(handle, record)
            return handle
        current = self.machine.cpu_endpoint.tx_iv.current
        validation = self.validator.validate(chunk.addr, chunk.size, current)
        # Controller evidence, sampled now but fed only after the
        # commit below — an observation can flip the mode, and the
        # transition's relinquish must not kill the entry mid-commit.
        # A miss against a live pipeline (or a forced kill) is real
        # evidence the speculation is wrong; cold-start misses with
        # nothing staged are not.
        if validation.usable:
            evidence: Optional[bool] = True
        elif validation.injected or self.pipeline.valid_entries:
            evidence = False
        else:
            evidence = None
        if record is not None:
            record.kind = "swap"
            swap_class = self.classifier.swap_class(chunk.size)
            record.swap_class = swap_class.value if swap_class else ""
            record.outcome = validation.outcome.value
            if validation.entry is not None:
                record.staged_iv = validation.entry.iv
            self.telemetry.emit(SpeculationEvent(
                self.sim.now, "validate", chunk.addr, chunk.size,
                validation.entry.iv if validation.entry else -1,
                reason=validation.outcome.value,
                request_id=record.request_id,
            ))

        if validation.outcome is ValidationOutcome.HIT_NOW:
            self._consecutive_misses = 0
            self._fast_api_return(handle)
            self._commit_staged(handle, validation.entry, record=record)
        elif validation.outcome is ValidationOutcome.HIT_FUTURE:
            self._consecutive_misses = 0
            self._fast_api_return(handle)
            if self.pipeline.has_valid_below(validation.entry.iv):
                # Re-ordering (§5.3): another request in this batch may
                # arrive for the lower IV; suspend until the barrier.
                validation.entry.reserved = True
                self._deferred.append((handle, validation.entry, record))
                self._deferred_total.add()
                if record is not None:
                    record.deferred = True
                    self.telemetry.emit(SpeculationEvent(
                        self.sim.now, "defer", chunk.addr, chunk.size,
                        validation.entry.iv, request_id=record.request_id,
                    ))
                # Applications that wait on the transfer itself (not a
                # device barrier) must not deadlock: resolve shortly
                # after if no synchronize() picked the request up.
                self.sim.process(self._deferred_watchdog())
            else:
                nops = self._pad_nops_to(validation.entry.iv)
                if record is not None:
                    record.nops_padded = nops
                self._commit_staged(handle, validation.entry, record=record)
        else:
            if validation.outcome is ValidationOutcome.STALE:
                # Order evidence against the current hypothesis.
                self.pipeline.drop_stale(current)
                self._bump_leeway()
                self._count_miss()
            self._commit_ondemand(handle, chunk, parallel=True, blocking_api=True,
                                  record=record)

        if evidence is not None:
            self.fault_controller.observe(evidence)
        self._watch_request(handle, record)
        self._refresh_pipeline()
        return handle

    def _refresh_pipeline(self) -> None:
        """Drop IV-stale entries and restage from current predictions."""
        killed = self.pipeline.drop_stale(self.machine.cpu_endpoint.tx_iv.current)
        if killed:
            self._bump_leeway()
        if self.fault_controller.speculation_enabled:
            self.pipeline.refill(self.predictor, self._leeway())

    def _bump_leeway(self) -> None:
        """An entry died of IV staleness: the leeway was too small.

        Multiplicative increase — an over-long leeway costs microsecond
        NOPs at commit time, an under-long one costs a full chunk
        re-encryption, so the controller errs high."""
        self._leeway_value = min(
            float(self.config.max_leeway),
            max(2.0 * self._leeway_value, self._leeway_ema + 8.0),
        )

    # -- device → host -------------------------------------------------------------

    def memcpy_d2h(self, chunk: MemoryChunk) -> TransferHandle:
        self._record(D2H, chunk)
        handle = TransferHandle(chunk, D2H, self.sim.event(), self.sim.event())
        self._track(handle.complete)
        record = self._telemetry_request(handle)

        # Functional layer runs eagerly in call order on both sides, so
        # the D2H IV streams stay aligned regardless of timing overlap.
        message = self.machine.gpu.send_ciphertext(chunk)
        plaintext = self.machine.cpu_endpoint.decrypt_next(message)

        # The transfer will overwrite [addr, addr+size): any staged
        # ciphertext reading from that range is stale the moment the
        # data lands — the same page-protection fault a CPU write would
        # raise (the DMA landing is a write like any other).
        self.pipeline.invalidate_overlapping(chunk.addr, chunk.size, reason="write-fault")

        is_swap = self.classifier.is_swap(chunk.size)
        if is_swap:
            self.predictor.observe_swap_out(chunk.addr, chunk.size)
        if record is not None:
            record.kind = "swap-out" if is_swap else "control"
            record.strategy = (
                "async-decrypt" if is_swap and self.config.async_decrypt
                else "sync-decrypt"
            )

        if is_swap and self.config.async_decrypt:
            # A newer swap-out to the same destination supersedes any
            # pending decrypt there: its plaintext would be overwritten
            # anyway, so release its waiters and protection now.
            stale = self._pending_decrypts.pop(chunk.addr, None)
            if stale is not None:
                self.machine.host_memory.unprotect(stale.owner)
                if not stale.ready.triggered:
                    stale.ready.succeed()
            owner = f"dec:{chunk.addr}"
            self.machine.host_memory.protect(
                chunk.addr, chunk.size, owner=owner, deny_read=True, deny_write=True
            )
            pending = _PendingDecrypt(chunk.addr, chunk.size, plaintext, self.sim.event(), owner)
            self._pending_decrypts[chunk.addr] = pending
            self.pipeline.blocked_addrs[chunk.addr] = "pending-decrypt"
            self.sim.process(self._timed_d2h_async(handle, chunk, pending, record=record))
        else:
            self.sim.process(self._timed_d2h_sync(handle, chunk, plaintext, record=record))

        if is_swap and self.fault_controller.speculation_enabled:
            self.pipeline.refill(self.predictor, self._leeway())
        return handle

    # -- synchronization (batch boundary) ----------------------------------------

    def synchronize(self) -> Event:
        done = self.sim.event()
        self.sim.process(self._sync_proc(done))
        return done

    def _sync_proc(self, done: Event):
        self._resolve_deferred()
        yield DeviceRuntime.synchronize(self)
        done.succeed()

    def _deferred_watchdog(self):
        yield self.sim.timeout(_DEFER_GRACE)
        self._resolve_deferred()

    def _resolve_deferred(self) -> None:
        """Commit every suspended request, padding IV gaps with NOPs.

        Runs at the batch boundary (§5.3 / Fig. 6) or from the
        watchdog when the application never issues one.
        """
        deferred, self._deferred = self._deferred, []
        for handle, entry, record in sorted(deferred, key=lambda item: item[1].iv):
            current = self.machine.cpu_endpoint.tx_iv.current
            if not entry.valid or entry.iv < current:
                # Invalidated (write fault / IV skipped) while waiting.
                self._count_miss()
                self._commit_ondemand(handle, handle.chunk, parallel=True,
                                      blocking_api=False, record=record)
                continue
            nops = self._pad_nops_to(entry.iv)
            if record is not None:
                record.nops_padded += nops
                self.telemetry.emit(SpeculationEvent(
                    self.sim.now, "resume", entry.chunk.addr, entry.chunk.size,
                    entry.iv, request_id=record.request_id,
                ))
            self._commit_staged(handle, entry, record=record)
        if deferred:
            self._refresh_pipeline()

    # -- CPU-side access to swapped-out data (§5.4) ----------------------------------

    def cpu_access(self, addr: int) -> Event:
        """Event the CPU must wait on before touching ``addr``'s data.

        Already-decrypted (or never-async) regions return a triggered
        event. This is the timing twin of the usage-before-decryption
        page fault; the functional twin is :meth:`_on_fault`.
        """
        pending = self._pending_decrypts.get(addr)
        if pending is None:
            event = self.sim.event()
            event.succeed()
            return event
        return pending.ready

    # -- fault handling (validator + async decryptor) ----------------------------------

    def _on_fault(self, fault: PageFault) -> None:
        if self.telemetry.enabled:
            self.telemetry.emit(FaultEvent(
                self.sim.now, fault.addr, fault.size,
                "write" if fault.is_write else "read",
                owners=",".join(fault.owners),
            ))
        if fault.is_write:
            self.pipeline.invalidate_overlapping(fault.addr, fault.size)
        for addr, pending in list(self._pending_decrypts.items()):
            if pending.addr < fault.addr + fault.size and fault.addr < pending.addr + pending.size:
                self._land_decrypt(pending, synchronous=True)

    def _on_free(self, region) -> None:
        """A host region vanished: any ciphertext staged from it is dead."""
        self.pipeline.invalidate_overlapping(region.addr, region.size, reason="region-freed")
        pending = self._pending_decrypts.pop(region.addr, None)
        if pending is not None:
            # The app discarded the swap-out before touching it; no
            # plaintext needs to land, but waiters must not hang.
            self.pipeline.blocked_addrs.pop(region.addr, None)
            if not pending.ready.triggered:
                pending.ready.succeed()

    def _land_decrypt(self, pending: _PendingDecrypt, synchronous: bool) -> None:
        if self._pending_decrypts.get(pending.addr) is not pending:
            return  # Already landed, or superseded by a newer swap-out.
        del self._pending_decrypts[pending.addr]
        self.machine.host_memory.write_silent(pending.addr, pending.plaintext)
        self.machine.host_memory.unprotect(pending.owner)
        self.pipeline.blocked_addrs.pop(pending.addr, None)
        if synchronous:
            self._sync_decrypts.add()
        else:
            self._async_decrypts.add()
        pending.ready.succeed()

    # -- commit machinery -------------------------------------------------------------

    def _advance_chain(self) -> Tuple[Event, Event]:
        prev, mine = self._wire_tail, self.sim.event()
        self._wire_tail = mine
        return prev, mine

    def _commit_staged(
        self,
        handle: TransferHandle,
        entry: StagedEntry,
        record: Optional[RequestRecord] = None,
    ) -> None:
        endpoint = self.machine.cpu_endpoint
        if entry.iv != endpoint.tx_iv.current:
            raise AssertionError(
                f"staged commit out of order: entry iv {entry.iv}, "
                f"channel iv {endpoint.tx_iv.current}"
            )
        endpoint.commit_tx_iv()
        self.pipeline.pop(entry)
        if record is not None:
            record.strategy = "staged"
            record.commit_iv = entry.iv
            self.telemetry.emit(IvEvent(
                self.sim.now, "cpu-tx", entry.iv, "staged", record.request_id
            ))
        elif self.telemetry.enabled:
            self.telemetry.emit(IvEvent(self.sim.now, "cpu-tx", entry.iv, "staged"))
        # Successful staged commits decay the leeway slowly back down.
        self._leeway_value = max(self._leeway_ema, 0.999 * self._leeway_value)
        # GPU copy engine authenticates with its synchronized RX IV.
        # Absent injected faults a failure here would mean our IV logic
        # is wrong; with them, recovery re-encrypts under fresh IVs.
        extra = self._deliver_ciphertext(entry.chunk, entry.message, record)
        enc_ready: Event = entry.ready
        if extra:
            enc_ready = self.sim.all_of([entry.ready, *extra])
        prev, mine = self._advance_chain()
        self.sim.process(
            self._timed_h2d(handle, entry.chunk.size, enc_ready, prev, mine,
                            staged=True, record=record)
        )

    def _commit_ondemand(
        self,
        handle: TransferHandle,
        chunk: MemoryChunk,
        parallel: bool,
        blocking_api: bool,
        record: Optional[RequestRecord] = None,
    ) -> None:
        endpoint = self.machine.cpu_endpoint
        message = endpoint.encrypt_next(chunk.payload, nbytes_logical=chunk.size)
        # A consumed IV may skip a staged sibling; that entry is dead
        # (refresh restages it) but it is a miss-cascade symptom, not
        # evidence the leeway is too small — no controller bump.
        self.pipeline.on_iv_consumed(message.sender_iv)
        extra = self._deliver_ciphertext(chunk, message, record)
        if record is not None:
            record.strategy = "ondemand" if parallel else "inline"
            record.commit_iv = message.sender_iv
            self.telemetry.emit(IvEvent(
                self.sim.now, "cpu-tx", message.sender_iv,
                "ondemand" if parallel else "inline", record.request_id,
            ))
        if parallel:
            self._ondemand_encryptions.add()
            enc_ready = self.machine.engine.submit_encrypt_parallel(
                chunk.size, ways=self.config.enc_ways, urgent=True
            )
        else:
            enc_ready = self.machine.engine.submit_encrypt_inline_cc(chunk.size)
        if extra:
            enc_ready = self.sim.all_of([enc_ready, *extra])
        prev, mine = self._advance_chain()
        self.sim.process(
            self._timed_h2d(
                handle, chunk.size, enc_ready, prev, mine,
                staged=False, blocking_api=blocking_api, record=record,
            )
        )

    def _pad_nops_to(self, target_iv: int) -> int:
        """Send NOPs until the channel's next IV equals ``target_iv``.

        Returns the number of NOPs padded (for lifecycle records).
        """
        endpoint = self.machine.cpu_endpoint
        count = 0
        while endpoint.tx_iv.current < target_iv:
            message = endpoint.encrypt_next(b"\x00", nbytes_logical=self.params.nop_bytes)
            self.pipeline.on_iv_consumed(message.sender_iv)
            try:
                self.machine.gpu.endpoint.decrypt_next(message)
            except AuthenticationError:
                # The streams were desynchronized before this pad; both
                # counters advanced on the failed attempt, so aligning
                # RX onto TX (forward-only — no IV can repeat) restores
                # lock-step. A NOP carries no payload worth resending.
                self.machine.gpu.endpoint.rx_iv.advance_to(endpoint.tx_iv.current)
                self._note_recovery("resync", detail="nop")
            prev, mine = self._advance_chain()
            self.sim.process(self._timed_nop(prev, mine))
            self._nops_sent.add()
            count += 1
            if self.telemetry.enabled:
                self.telemetry.emit(IvEvent(self.sim.now, "cpu-tx", message.sender_iv, "nop"))
        return count

    # -- timed (simulated) halves --------------------------------------------------------

    def _timed_h2d(
        self,
        handle: TransferHandle,
        size: int,
        enc_ready: Optional[Event],
        prev: Event,
        mine: Event,
        staged: bool,
        blocking_api: bool = False,
        record: Optional[RequestRecord] = None,
    ):
        # Stage marks record the exact sequential wait intervals of this
        # request's wire path — they tile [submit, complete] (staged
        # hits spend ~nothing in "encrypt"; on-demand commits wait the
        # full AES service there), which is what lets the critical-path
        # profiler attribute latency without double counting.
        start = self.sim.now
        if enc_ready is not None:
            yield enc_ready
            if record is not None:
                record.mark_stage("encrypt", start, self.sim.now)
        if blocking_api and not handle.api_done.triggered:
            handle.api_done.succeed()
        start = self.sim.now
        yield prev
        if record is not None:
            record.mark_stage("wire-order", start, self.sim.now)
        if staged:
            # Validated ciphertext moves private → shared DMA buffers (§6).
            start = self.sim.now
            yield from self.machine.staging.stage(size)
            if record is not None:
                record.mark_stage("staging", start, self.sim.now)
        start = self.sim.now
        yield self.sim.timeout(self.params.cc_control_latency)
        if record is not None:
            record.mark_stage("control", start, self.sim.now)
        start = self.sim.now
        dma = self.machine.pcie.transfer_h2d(size, cc_path=True)
        mine.succeed()
        yield dma
        if record is not None:
            record.mark_stage("pcie", start, self.sim.now)
        handle.complete.succeed()

    def _timed_nop(self, prev: Event, mine: Event):
        yield prev
        yield self.sim.timeout(self.params.cc_control_latency)
        dma = self.machine.pcie.transfer_h2d(self.params.nop_bytes, cc_path=True)
        mine.succeed()
        yield dma

    def _timed_d2h_async(
        self,
        handle: TransferHandle,
        chunk: MemoryChunk,
        pending: _PendingDecrypt,
        record: Optional[RequestRecord] = None,
    ):
        # The async memcpy returns to the app right away — the GPU-side
        # encryption runs at line rate in the copy engine and the DMA
        # is queued; §5.4 additionally defers the CPU decryption.
        self._fast_api_return(handle)
        start = self.sim.now
        yield self.sim.timeout(self.params.cc_control_latency)
        if record is not None:
            record.mark_stage("control", start, self.sim.now)
        start = self.sim.now
        yield self.machine.pcie.transfer_d2h(chunk.size, cc_path=True)
        if record is not None:
            # The deferred CPU decryption runs after landing, off the
            # wire path — by design it contributes no stage here.
            record.mark_stage("pcie", start, self.sim.now)
        handle.complete.succeed()
        # Newest-first decryption: LIFO resume wants the most recent
        # swap-out back first, so its plaintext should be ready first.
        yield self.machine.engine.submit_decrypt_parallel(
            chunk.size, ways=self.config.enc_ways, front=True
        )
        self._land_decrypt(pending, synchronous=False)
        if self.fault_controller.speculation_enabled:
            self.pipeline.refill(self.predictor, self._leeway())

    def _timed_d2h_sync(
        self,
        handle: TransferHandle,
        chunk: MemoryChunk,
        plaintext: bytes,
        record: Optional[RequestRecord] = None,
    ):
        start = self.sim.now
        yield self.sim.timeout(self.params.cc_control_latency)
        if record is not None:
            record.mark_stage("control", start, self.sim.now)
        start = self.sim.now
        yield self.machine.pcie.transfer_d2h(chunk.size, cc_path=True)
        if record is not None:
            record.mark_stage("pcie", start, self.sim.now)
        start = self.sim.now
        yield self.machine.engine.submit_decrypt_inline_cc(chunk.size)
        if record is not None:
            record.mark_stage("decrypt", start, self.sim.now)
        self.machine.host_memory.write_silent(chunk.addr, plaintext)
        handle.api_done.succeed()
        handle.complete.succeed()

    # -- fault plane: recovery, degradation, timeout (ISSUE 3 tentpole) -------------

    def _deliver_ciphertext(
        self,
        chunk: MemoryChunk,
        message: EncryptedMessage,
        record: Optional[RequestRecord] = None,
    ) -> List[Event]:
        """Deliver one ciphertext to the GPU copy engine, surviving
        injected tag corruption and IV desynchronization (§4.4).

        On an authentication failure both endpoints have already burned
        the failed IVs (consume precedes decrypt on each side), so the
        recovery is uniform for both fault kinds: align the GPU's RX
        counter onto the CPU's TX position — forward-only, so no IV can
        ever repeat — and re-encrypt the chunk under a fresh IV.
        Retries are bounded by the retry policy; each one contributes
        an extra timing event (urgent re-encryption + backoff delay)
        that the caller chains into the transfer's readiness.
        """
        gpu = self.machine.gpu
        endpoint = self.machine.cpu_endpoint
        inj = self.faults
        policy = self.fault_policy.retry
        extra: List[Event] = []
        attempt = 0
        while True:
            attempt += 1
            wire = message
            # The last attempt within budget skips injection so the
            # recovery is guaranteed to land — the plan models
            # transient corruption, not a severed channel.
            if inj is not None and attempt < policy.max_attempts and inj.corrupt_tag():
                wire = tamper_tag(message)
            try:
                gpu.receive_ciphertext(chunk, wire)
            except AuthenticationError:
                if attempt >= policy.max_attempts:
                    raise  # Genuine corruption: out of retry budget.
                gpu.endpoint.rx_iv.advance_to(endpoint.tx_iv.current)
                message = endpoint.encrypt_next(chunk.payload, nbytes_logical=chunk.size)
                self.pipeline.on_iv_consumed(message.sender_iv)
                extra.append(self.machine.engine.submit_encrypt_parallel(
                    chunk.size, ways=self.config.enc_ways, urgent=True
                ))
                extra.append(self.sim.timeout(policy.delay(attempt)))
                continue
            if attempt > 1:
                self._auth_recoveries.add()
                self._note_recovery(
                    "auth-recover", attempt,
                    request_id=record.request_id if record is not None else -1,
                )
                self.fault_controller.observe(False)
            return extra

    def _inject_desync(self) -> None:
        """Burn one TX IV without a wire message (injected desync).

        The CPU's counter silently runs ahead of the GPU's; every
        subsequent delivery auth-fails until a recovery resyncs the
        streams. The burned IV is never reused, so the audit invariant
        holds throughout.
        """
        endpoint = self.machine.cpu_endpoint
        iv = endpoint.tx_iv.consume()
        self.pipeline.on_iv_consumed(iv)
        if self.telemetry.enabled:
            self.telemetry.emit(IvEvent(self.sim.now, "cpu-tx", iv, "desync-burn"))

    def _on_mode_change(self, previous: PipelineMode, mode: PipelineMode) -> None:
        self._mode_switches.add()
        action = {
            PipelineMode.DEGRADED: "degrade",
            PipelineMode.PROBING: "probe",
            PipelineMode.SPECULATIVE: "restore",
        }[mode]
        self._note_recovery(action, detail=f"{previous.value}->{mode.value}")
        if mode is PipelineMode.DEGRADED:
            # Staged ciphertext would only rot while the predictor is
            # wrong — drop it all (suspended requests keep theirs).
            self.pipeline.relinquish()

    def _note_recovery(
        self, action: str, attempts: int = 0, detail: str = "", request_id: int = -1
    ) -> None:
        if self.faults is not None:
            self.faults.note_recovery(action, attempts, detail, request_id)
            return
        self.telemetry.metrics.counter(f"faults.recovery.{action}").add()
        if self.telemetry.enabled:
            self.telemetry.emit(RecoveryEvent(
                self.sim.now, action, attempts, detail, request_id
            ))

    def _watch_request(self, handle: TransferHandle, record: Optional[RequestRecord]) -> None:
        """Arm the per-request timeout watchdog (off unless configured:
        lingering timers extend the drained simulation clock, which
        would skew elapsed-time claims on clean benches)."""
        if self.fault_policy.request_timeout_s is not None:
            self.sim.process(self._watch_timeout(handle, record))

    def _watch_timeout(self, handle: TransferHandle, record: Optional[RequestRecord]):
        yield self.sim.timeout(self.fault_policy.request_timeout_s)
        if handle.complete.triggered:
            return
        self._timeouts.add()
        self._note_recovery(
            "timeout", detail=handle.direction,
            request_id=record.request_id if record is not None else -1,
        )
        # The commonest stall is a suspended request whose batch
        # boundary never came: resolve the deferred set now.
        self._resolve_deferred()
        self.fault_controller.observe(False)

    # -- leeway adaptation & misc ------------------------------------------------------

    def _fast_api_return(self, handle: TransferHandle) -> None:
        self.sim.process(_fire_after(self.sim, self.config.validation_overhead, handle.api_done))

    def _note_swap_arrival(self) -> None:
        if self.config.adaptive_leeway:
            self._leeway_ema = 0.8 * self._leeway_ema + 0.2 * self._small_since_swap
        self._small_since_swap = 0

    def _leeway(self) -> int:
        if not self.config.adaptive_leeway:
            return self.config.leeway
        value = max(self._leeway_value, self._leeway_ema)
        return min(self.config.max_leeway, int(round(value)))

    def _count_miss(self) -> None:
        self._consecutive_misses += 1
        if self._consecutive_misses >= _RELINQUISH_AFTER_MISSES and self.pipeline.valid_entries:
            self.pipeline.relinquish()
            self._consecutive_misses = 0

    def stats(self) -> Dict[str, float]:
        """Runtime counters for reports and tests."""
        return {
            "swap_requests": float(self.validator.requests),
            "hits": float(self.validator.hits),
            "future_hits": float(self.validator.future_hits),
            "stale": float(self.validator.stale),
            "misses": float(self.validator.misses),
            "success_rate": self.validator.success_rate,
            "nops_sent": float(self.nops_sent),
            "ondemand_encryptions": float(self.ondemand_encryptions),
            "small_transfers": float(self.small_transfers),
            "deferred": float(self.deferred_total),
            "sync_decrypts": float(self.sync_decrypts),
            "async_decrypts": float(self.async_decrypts),
            "staged_total": float(self.pipeline.staged_total),
            "invalidated_by_fault": float(self.pipeline.invalidated_by_fault),
            "invalidated_by_iv_skip": float(self.pipeline.invalidated_by_iv_skip),
            "relinquishes": float(self.pipeline.relinquish_count),
            "evicted": float(self.pipeline.evicted),
            "gpu_auth_failures": float(self.machine.gpu.auth_failures),
            "auth_recoveries": float(self.auth_recoveries),
            "timeouts": float(self.timeouts),
            "mode_switches": float(self.mode_switches),
            "degraded_commits": float(self._degraded_commits.value),
            "degraded_seconds": self.fault_controller.degraded_seconds(),
        }


def _fire_after(sim, delay: float, event: Event):
    yield sim.timeout(delay)
    if not event.triggered:
        event.succeed()
