"""The speculative-encryption pipeline (§4.3, §5).

The pipeline owns a queue of :class:`StagedEntry` objects — chunks the
predictor expects the GPU to request, already AES-GCM-encrypted under
their *predicted* IVs and parked in CVM **private** memory (§6: nothing
unvalidated ever touches shared memory).

Entries die in exactly three ways, mirroring the paper:

* a **write fault** on the source plaintext (the validator's
  MPK-based page protection fired — the ciphertext is stale);
* their predicted **IV was consumed by someone else** (a small
  transfer, an on-demand miss, or a NOP) — that IV can never be used
  again, so the ciphertext is cryptographically dead;
* an explicit **relinquish** when the runtime decides the whole
  prediction is off the rails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cc.machine import Machine
from ..crypto import EncryptedMessage
from ..hw.memory import MemoryChunk
from ..sim import Event
from ..telemetry import SpeculationEvent
from .config import PipeLLMConfig
from .predictor import PredictionTarget, SwapPredictor

__all__ = ["SpeculationPipeline", "StagedEntry"]


@dataclass
class StagedEntry:
    """One speculatively encrypted chunk waiting in private memory."""

    chunk: MemoryChunk
    iv: int
    message: EncryptedMessage
    #: Fires when the (timed) encryption of this entry completes.
    ready: Event
    valid: bool = True
    invalid_reason: str = ""
    #: Held by a suspended (deferred) request; exempt from eviction.
    reserved: bool = False
    #: Simulated time the entry was staged (telemetry span start).
    staged_at: float = 0.0

    @property
    def key(self) -> Tuple[int, int]:
        return (self.chunk.addr, self.chunk.size)

    @property
    def owner(self) -> str:
        """Page-protection owner token for this entry."""
        return f"spec:{self.iv}"


class SpeculationPipeline:
    """Prediction → encryption → staging, with IV bookkeeping."""

    def __init__(self, machine: Machine, config: PipeLLMConfig) -> None:
        if not machine.cc_enabled:
            raise ValueError("the speculation pipeline requires a CC-enabled machine")
        self.machine = machine
        self.config = config
        self._queue: List[StagedEntry] = []
        self._last_assigned_iv = -1
        #: Addresses the runtime told us not to stage right now
        #: (e.g. swap-out destinations still pending decryption).
        self.blocked_addrs: Dict[int, str] = {}
        # Statistics live on the machine's telemetry hub (always-on
        # counters); the historical attribute names below are kept as
        # thin read-only properties.
        self.telemetry = machine.telemetry
        metrics = machine.telemetry.metrics
        self._staged_total = metrics.counter("pipeline.staged_total")
        self._invalidated_by_fault = metrics.counter("pipeline.invalidated_by_fault")
        self._invalidated_by_iv_skip = metrics.counter("pipeline.invalidated_by_iv_skip")
        self._relinquish_count = metrics.counter("pipeline.relinquishes")
        self._evicted = metrics.counter("pipeline.evicted")

    # -- introspection --------------------------------------------------

    @property
    def staged_total(self) -> int:
        return self._staged_total.value

    @property
    def invalidated_by_fault(self) -> int:
        return self._invalidated_by_fault.value

    @property
    def invalidated_by_iv_skip(self) -> int:
        return self._invalidated_by_iv_skip.value

    @property
    def relinquish_count(self) -> int:
        return self._relinquish_count.value

    @property
    def evicted(self) -> int:
        return self._evicted.value

    @property
    def entries(self) -> List[StagedEntry]:
        return list(self._queue)

    @property
    def valid_entries(self) -> List[StagedEntry]:
        return [e for e in self._queue if e.valid]

    @property
    def staged_bytes(self) -> int:
        """Private-memory footprint of live speculative ciphertext."""
        return sum(e.chunk.size for e in self._queue if e.valid)

    def find(self, addr: int, size: int) -> Optional[StagedEntry]:
        """Valid staged entry exactly matching a requested transfer."""
        for entry in self._queue:
            if entry.valid and entry.chunk.addr == addr and entry.chunk.size == size:
                return entry
        return None

    def has_valid_below(self, iv: int) -> bool:
        """Is any valid entry staged with a smaller predicted IV?

        Used by the error handler to decide between *suspending* a
        request (another request in this batch may fill the IV gap —
        Fig. 6) and padding NOPs immediately.
        """
        return any(e.valid and e.iv < iv for e in self._queue)

    # -- staging ------------------------------------------------------------

    def refill(self, predictor: SwapPredictor, leeway: int) -> int:
        """Re-align the staged queue with the current predictions.

        Entries that fell out of the prediction window are evicted
        (their ciphertext would only be IV-skipped later — e.g. a
        newer LIFO swap-out now resumes before them), then missing
        predictions are staged in order, subject to the depth and
        private-memory budgets. Returns the number of entries newly
        staged.
        """
        wanted = predictor.predict_all(self.config.depth, kv_count=self.config.kv_depth)
        wanted_keys = {t.key for t in wanted}
        for entry in self._queue:
            if entry.valid and not entry.reserved and entry.key not in wanted_keys:
                self._kill(entry, "left-prediction-window")
                self._evicted.add()
        self._gc()

        live = {e.key for e in self._queue if e.valid}
        budget = self.config.depth - len(live)
        staged = 0
        for target in wanted:
            if budget <= 0:
                break
            if target.key in live or target.addr in self.blocked_addrs:
                continue
            if self.staged_bytes + target.size > self.config.max_staged_bytes:
                break  # Private staging memory budget exhausted (§6).
            if self._stage(target, leeway):
                live.add(target.key)
                staged += 1
                budget -= 1
        return staged

    def _next_iv(self, leeway: int) -> int:
        current = self.machine.cpu_endpoint.tx_iv.current
        iv = max(current + leeway, self._last_assigned_iv + 1)
        self._last_assigned_iv = iv
        return iv

    def _stage(self, target: PredictionTarget, leeway: int) -> bool:
        memory = self.machine.host_memory
        try:
            region = memory.region_at(target.addr)
        except KeyError:
            return False  # The predicted source was freed meanwhile.
        if region.size != target.size:
            return False
        plaintext = memory.read(target.addr)
        chunk = MemoryChunk(target.addr, target.size, plaintext, region.tag)
        iv = self._next_iv(leeway)
        message = self.machine.cpu_endpoint.encrypt_with_iv(
            plaintext, iv, nbytes_logical=target.size
        )
        # Newest prediction first: under LIFO resume the entry staged
        # last is needed first, so it jumps the speculative queue.
        front = target.swap_class.value == "kv_cache"
        ready = self.machine.engine.submit_encrypt_parallel(
            target.size, ways=self.config.enc_ways, front=front
        )
        entry = StagedEntry(chunk, iv, message, ready, staged_at=self.machine.sim.now)
        memory.protect(target.addr, target.size, owner=entry.owner, deny_write=True)
        self._queue.append(entry)
        self._staged_total.add()
        hub = self.telemetry
        if hub.enabled:
            hub.emit(SpeculationEvent(
                self.machine.sim.now, "stage", target.addr, target.size, iv
            ))
        return True

    # -- invalidation -------------------------------------------------------

    def invalidate_overlapping(self, addr: int, size: int, reason: str = "write-fault") -> int:
        """Kill entries whose plaintext range overlaps a written range."""
        killed = 0
        for entry in self._queue:
            if entry.valid and entry.chunk.overlaps(addr, size):
                self._kill(entry, reason)
                killed += 1
                if reason == "write-fault":
                    self._invalidated_by_fault.add()
        return killed

    def on_iv_consumed(self, iv: int) -> Optional[StagedEntry]:
        """The channel consumed ``iv`` for something else; the staged
        ciphertext bound to it (if any) is cryptographically dead."""
        for entry in self._queue:
            if entry.valid and entry.iv == iv:
                self._kill(entry, "iv-skipped")
                self._invalidated_by_iv_skip.add()
                return entry
        return None

    def drop_stale(self, current_iv: int) -> int:
        """Kill every entry whose predicted IV already passed."""
        killed = 0
        for entry in self._queue:
            if entry.valid and entry.iv < current_iv:
                self._kill(entry, "stale-iv")
                killed += 1
        return killed

    def relinquish(self) -> int:
        """Abandon the pipeline (§5.3 irrecoverable errors).

        Entries reserved by suspended requests are spared — they are
        already matched to an in-flight request and will commit (or
        fall back) at the batch boundary.
        """
        self._relinquish_count.add()
        hub = self.telemetry
        if hub.enabled:
            hub.emit(SpeculationEvent(self.machine.sim.now, "relinquish"))
        killed = 0
        for entry in self._queue:
            if entry.valid and not entry.reserved:
                self._kill(entry, "relinquished")
                killed += 1
        self._gc()
        return killed

    def invalidate_entry(self, entry: StagedEntry, reason: str) -> None:
        """Kill one specific staged entry (injected mispredictions)."""
        if entry.valid:
            self._kill(entry, reason)

    def pop(self, entry: StagedEntry) -> None:
        """Remove a committed entry (its ciphertext went to the wire)."""
        self.machine.host_memory.unprotect(entry.owner)
        self._queue.remove(entry)
        self._gc()
        hub = self.telemetry
        if hub.enabled:
            now = self.machine.sim.now
            # Staged lifetime as a span on the "speculation" lane.
            hub.tracer.record("speculation", "commit", entry.staged_at, now)
            hub.emit(SpeculationEvent(
                now, "commit", entry.chunk.addr, entry.chunk.size, entry.iv
            ))

    def _kill(self, entry: StagedEntry, reason: str) -> None:
        entry.valid = False
        entry.invalid_reason = reason
        self.machine.host_memory.unprotect(entry.owner)
        hub = self.telemetry
        if hub.enabled:
            now = self.machine.sim.now
            hub.tracer.record("speculation", reason, entry.staged_at, now)
            hub.emit(SpeculationEvent(
                now, "invalidate", entry.chunk.addr, entry.chunk.size,
                entry.iv, reason=reason,
            ))

    def _gc(self) -> None:
        """Drop dead entries once they can no longer be referenced."""
        self._queue = [e for e in self._queue if e.valid]
