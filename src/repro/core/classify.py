"""Transfer classification (§4.2 observations, §5.1).

PipeLLM sees only low-level memcpy metadata. It separates *swaps*
(worth pipelining) from *small control traffic* (tokens, logits,
launch parameters — encrypted on demand) with two signals the paper
identifies:

1. swap transfers are large (usually >128 KB) while other traffic is
   small (usually <8 KB);
2. with the model known (§4.2 assumes it is), the exact byte sizes of
   a weight layer and of a KV-cache block are computable a priori, so
   a transfer whose size matches one of them can be attributed to the
   corresponding traffic class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

__all__ = ["SwapClass", "TransferClass", "TransferClassifier"]

DEFAULT_SWAP_THRESHOLD = 128 * 1024


class TransferClass(enum.Enum):
    """What a single memcpy is, as far as PipeLLM can tell."""

    SMALL = "small"          # Control traffic: never pipelined.
    WEIGHTS = "weights"      # Model offloading swap.
    KV_CACHE = "kv_cache"    # KV-cache swap.
    SWAP_OTHER = "swap"      # Large, but matches no known size.


class SwapClass(enum.Enum):
    """The two prediction streams PipeLLM maintains (§5.1)."""

    WEIGHTS = "weights"
    KV_CACHE = "kv_cache"


@dataclass
class TransferClassifier:
    """Size-based classifier with optional model-derived size hints."""

    swap_threshold: int = DEFAULT_SWAP_THRESHOLD
    weight_sizes: Set[int] = field(default_factory=set)
    kv_block_sizes: Set[int] = field(default_factory=set)

    def register_weight_size(self, nbytes: int) -> None:
        """Record the byte size of one offloadable weight chunk."""
        if nbytes <= 0:
            raise ValueError("weight chunk size must be positive")
        self.weight_sizes.add(nbytes)

    def register_kv_block_size(self, nbytes: int) -> None:
        """Record the byte size of one KV-cache swap unit."""
        if nbytes <= 0:
            raise ValueError("KV block size must be positive")
        self.kv_block_sizes.add(nbytes)

    def classify(self, size: int) -> TransferClass:
        """Classify one transfer from its byte size alone."""
        if size < self.swap_threshold:
            return TransferClass.SMALL
        if size in self.weight_sizes:
            return TransferClass.WEIGHTS
        if size in self.kv_block_sizes:
            return TransferClass.KV_CACHE
        return TransferClass.SWAP_OTHER

    def is_swap(self, size: int) -> bool:
        return self.classify(size) is not TransferClass.SMALL

    def swap_class(self, size: int) -> Optional[SwapClass]:
        """Which prediction stream a swap belongs to.

        Unmatched large transfers default to the KV stream: KV block
        geometry varies with runtime batch shape, whereas weight chunk
        sizes are exact, so an unknown large size is far more likely
        intermediate data than weights.
        """
        cls = self.classify(size)
        if cls is TransferClass.SMALL:
            return None
        if cls is TransferClass.WEIGHTS:
            return SwapClass.WEIGHTS
        return SwapClass.KV_CACHE
