"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — every available experiment with its paper artifact.
* ``run <experiment> [--scale quick|full] [--json]`` — run one
  experiment and print its table (the same rows EXPERIMENTS.md
  records), or the same rows as JSON.
* ``all [--scale ...]`` — run every experiment in order.
* ``systems`` — the compared system configurations.
* ``claims [--json]`` — verify the paper's headline claims.
* ``trace <experiment> [--format chrome|json|csv|ascii] [--out F]`` —
  re-run one experiment with telemetry recording on and export the
  unified trace (Chrome ``trace_event`` JSON loads directly into
  https://ui.perfetto.dev).
* ``cluster [--replicas N --policy P --fail-at T]`` — serve a
  multi-tenant Poisson workload on N confidential replicas behind the
  encrypted-session gateway and print the throughput/latency summary.
* ``serve [--rate RPS]`` — the online-serving front end: without
  ``--rate``, sweep the latency-vs-offered-load frontier per system ×
  admission policy; with ``--rate``, one OpenAI-style streaming run
  with per-request TTFT/TPOT and SLO accounting.
* ``disagg [--scale ...]`` — disaggregated prefill/decode serving
  with live encrypted KV-cache migration: without ``--rate``, the
  full campaign (frontier vs monolithic, speculation recovery,
  hardware packs, hot-link stress verdicts, crash-mid-migration
  failover, mispredict storm); with ``--rate`` (or ``--hw-pack``),
  one summary run under a named hardware calibration.
* ``bench [--suite standard|smoke] [--out F] [--compare [BASE]]`` —
  the continuous benchmark harness: run the pinned-seed suite, write a
  schema-versioned ``BENCH_<n>.json`` artifact, and/or diff two
  artifacts' key metrics (exit 1 on >5 % regression).
* ``postmortem [--out DIR]`` — run a deterministic crash-and-recover
  serving scenario with causal tracing, SLO burn-rate alerting and the
  fault flight recorder armed, then write the post-mortem bundle
  (``postmortem.json`` + Chrome ``trace.json`` + the critical-path
  table). Byte-identical under one ``--seed``.
* ``dash`` — live ASCII dashboard over a FlexGen offloading run:
  utilization bars, latency percentiles, speculation hit-rate,
  IV-audit status and the degradation mode, refreshed from simulated
  time. ``--serve`` drives an online serving run over the cluster
  instead, adding the TTFT/TPOT panel.

``run``, ``all``, ``trace``, ``cluster``, ``serve``, ``bench`` and
``dash`` accept ``--seed N`` to override every workload generator's
RNG seed process-wide, and ``--crypto-backend {reference,fast}`` to
pick the fast-path profile (see :mod:`repro.fastpath`): ``fast`` (the
default) auto-detects the quickest AES-GCM implementation and enables
the tuned event queue; ``reference`` reproduces the pure-Python
conformance path bit for bit. Simulated results are identical either
way — only wall clock changes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from .bench import (
    SUITES,
    ablation_async_decrypt,
    attribution_breakdown,
    cluster_scaling,
    disagg_frontier,
    fault_campaign,
    parallel_scaling,
    verify_claims,
    extension_layerwise_fifo,
    extension_zero_offload,
    ablation_enc_threads,
    ablation_kv_depth,
    ablation_leeway,
    extension_teeio_scaling,
    fig10_success_rate,
    fig2_microbenchmark,
    fig3a_flexgen_overhead,
    fig3b_vllm_overhead,
    fig3c_peft_overhead,
    fig7_model_offloading,
    fig8_kv_swapping,
    fig9_threading,
    serve_frontier,
)
from .hw import pack_names as hw_pack_names

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": fig2_microbenchmark,
    "fig3a": fig3a_flexgen_overhead,
    "fig3b": fig3b_vllm_overhead,
    "fig3c": fig3c_peft_overhead,
    "fig7": fig7_model_offloading,
    "fig8": fig8_kv_swapping,
    "fig9": fig9_threading,
    "fig10": fig10_success_rate,
    "abl-threads": ablation_enc_threads,
    "abl-asyncdec": ablation_async_decrypt,
    "abl-leeway": ablation_leeway,
    "abl-kvdepth": ablation_kv_depth,
    "ext-teeio": extension_teeio_scaling,
    "ext-layerwise": extension_layerwise_fifo,
    "ext-zero": extension_zero_offload,
    "cluster": cluster_scaling,
    "serve": serve_frontier,
    "disagg": disagg_frontier,
    "faults": fault_campaign,
    "parallel": parallel_scaling,
    "attrib": attribution_breakdown,
}

_SYSTEMS_HELP = """\
w/o CC      confidential computing disabled (native performance)
CC          NVIDIA CC as shipped: inline single-thread AES in the memcpy
CC-4t       CC with 4 crypto threads, no pipelining (Fig. 9 strawman)
PipeLLM     speculative pipelined encryption (this paper)
PipeLLM-0   PipeLLM with always-wrong sequence prediction (Fig. 10)
TEE-I/O     hypothetical inline hardware engine shared by N tenants (§8.3)
"""


def _add_fastpath_arg(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--crypto-backend", choices=("reference", "fast"), default=None,
        metavar="PROFILE", dest="crypto_backend",
        help="fast-path profile: 'fast' (default) auto-detects the "
             "quickest AES-GCM backend and the tuned event queue; "
             "'reference' runs the pure-Python conformance path "
             "(identical simulated results, slower wall clock)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PipeLLM (ASPLOS 2025) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("systems", help="describe the compared systems")
    claims = sub.add_parser("claims", help="verify the paper's headline claims")
    claims.add_argument("--scale", choices=("quick", "full"), default="quick")
    claims.add_argument("--json", action="store_true", help="emit outcomes as JSON")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", choices=("quick", "full"), default="quick")
    run.add_argument("--json", action="store_true", help="emit the result rows as JSON")
    run.add_argument("--seed", type=int, default=None, metavar="N",
                     help="override every workload generator's RNG seed")
    _add_fastpath_arg(run)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", choices=("quick", "full"), default="quick")
    everything.add_argument("--seed", type=int, default=None, metavar="N",
                            help="override every workload generator's RNG seed")
    _add_fastpath_arg(everything)

    cluster = sub.add_parser(
        "cluster", help="serve a multi-tenant workload on N confidential replicas"
    )
    cluster.add_argument("--replicas", type=int, default=2, metavar="N")
    cluster.add_argument("--policy",
                         choices=("round-robin", "least-loaded", "affinity"),
                         default="least-loaded")
    cluster.add_argument("--system", choices=("pipellm", "cc", "native"),
                         default="pipellm", help="per-replica runtime")
    cluster.add_argument("--rate", type=float, default=4.0, metavar="RPS",
                         help="Poisson arrival rate (requests/s)")
    cluster.add_argument("--duration", type=float, default=10.0, metavar="S",
                         help="arrival window (simulated seconds)")
    cluster.add_argument("--tenants", type=int, default=4, metavar="N")
    cluster.add_argument("--fail-at", type=float, default=None, metavar="T",
                         help="crash one replica at simulated time T")
    cluster.add_argument("--fail-replica", type=int, default=0, metavar="I")
    cluster.add_argument("--recover-after", type=float, default=5.0, metavar="S",
                         help="crash-to-recovery delay (0 = stays down)")
    cluster.add_argument("--seed", type=int, default=None, metavar="N")
    cluster.add_argument("--json", action="store_true",
                         help="emit the run summary as JSON")
    _add_fastpath_arg(cluster)

    serve = sub.add_parser(
        "serve", help="online-serving front end over the confidential cluster"
    )
    serve.add_argument("--rate", type=float, default=None, metavar="RPS",
                       help="offered load for one streaming run (omit to "
                            "sweep the full frontier)")
    serve.add_argument("--scale", choices=("quick", "full"), default="quick",
                       help="frontier sweep size (ignored with --rate)")
    serve.add_argument("--duration", type=float, default=5.0, metavar="S",
                       help="arrival window for a single run (simulated s)")
    serve.add_argument("--system", choices=("pipellm", "cc", "native"),
                       default="pipellm", help="per-replica runtime")
    serve.add_argument("--admission", choices=("slo", "fifo"), default="slo",
                       help="admission policy in front of the gateway")
    serve.add_argument("--trace", choices=("sharegpt", "alpaca"),
                       default="sharegpt", help="length distribution preset")
    serve.add_argument("--replicas", type=int, default=2, metavar="N")
    serve.add_argument("--tenants", type=int, default=4, metavar="N")
    serve.add_argument("--fail-at", type=float, default=None, metavar="T",
                       help="crash one replica at simulated time T")
    serve.add_argument("--recover-after", type=float, default=5.0, metavar="S")
    serve.add_argument("--seed", type=int, default=None, metavar="N")
    serve.add_argument("--json", action="store_true",
                       help="emit the run summary (or frontier rows) as JSON")
    _add_fastpath_arg(serve)

    disagg = sub.add_parser(
        "disagg",
        help="disaggregated prefill/decode serving with live encrypted "
             "KV-cache migration",
    )
    disagg.add_argument("--scale", choices=("quick", "full"), default="quick",
                        help="campaign size (ignored in single-run mode)")
    disagg.add_argument("--rate", type=float, default=None, metavar="RPS",
                        help="offered load for one summary run (omit to "
                             "run the full campaign)")
    disagg.add_argument("--duration", type=float, default=8.0, metavar="S",
                        help="arrival window for a single run (simulated s)")
    disagg.add_argument("--system", choices=("pipellm", "cc", "native"),
                        default="pipellm", help="per-worker runtime")
    disagg.add_argument("--hw-pack", choices=hw_pack_names(), default=None,
                        metavar="PACK", dest="hw_pack",
                        help="named hardware calibration for a single run "
                             "(h100-cc, b300-cc, cpu-tee); implies "
                             "single-run mode")
    disagg.add_argument("--prefill", type=int, default=1, metavar="N",
                        help="prefill workers (0 = monolithic baseline)")
    disagg.add_argument("--decode", type=int, default=3, metavar="N",
                        help="decode workers")
    disagg.add_argument("--policy",
                        choices=("round-robin", "least-loaded", "affinity"),
                        default="affinity", help="decode placement policy")
    disagg.add_argument("--tenants", type=int, default=4, metavar="N")
    disagg.add_argument("--fail-at", type=float, default=None, metavar="T",
                        help="crash one worker at simulated time T")
    disagg.add_argument("--fail-kind", choices=("prefill", "decode"),
                        default="decode")
    disagg.add_argument("--fail-index", type=int, default=0, metavar="I")
    disagg.add_argument("--recover-after", type=float, default=5.0,
                        metavar="S", help="crash-to-recovery delay "
                        "(0 = stays down)")
    disagg.add_argument("--seed", type=int, default=None, metavar="N")
    disagg.add_argument("--json", action="store_true",
                        help="emit the run summary (or campaign rows) as JSON")
    _add_fastpath_arg(disagg)

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign: degradation table across storm rates",
    )
    faults.add_argument("--scale", choices=("quick", "full"), default="quick")
    faults.add_argument("--json", action="store_true",
                        help="emit the result rows as JSON")
    faults.add_argument("--seed", type=int, default=None, metavar="N",
                        help="override the fault and workload RNG seeds")
    _add_fastpath_arg(faults)

    par = sub.add_parser(
        "parallel",
        help="multi-GPU scaling campaign over the encrypted interconnect",
    )
    par.add_argument("--scale", choices=("quick", "full"), default="quick")
    par.add_argument("--json", action="store_true",
                     help="emit the result rows as JSON")
    par.add_argument("--seed", type=int, default=None, metavar="N",
                     help="override every workload generator's RNG seed")
    _add_fastpath_arg(par)

    trace = sub.add_parser(
        "trace", help="run one experiment with telemetry on and export the trace"
    )
    trace.add_argument("experiment", choices=sorted(EXPERIMENTS))
    trace.add_argument("--scale", choices=("quick", "full"), default="quick")
    trace.add_argument(
        "--format", choices=("chrome", "json", "csv", "ascii"), default="chrome",
        help="chrome: Perfetto-loadable trace_event JSON; json/csv: flat "
             "metric dumps; ascii: Gantt charts",
    )
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write to FILE instead of stdout")
    trace.add_argument("--max-events", type=int, default=None, metavar="N",
                       help="retain at most N typed events per machine")
    trace.add_argument("--seed", type=int, default=None,
                       help="override every workload generator's RNG seed")
    trace.add_argument("--attrib", type=int, default=None, metavar="REQ",
                       help="print the critical-path waterfall for request "
                            "id REQ (and the aggregate profile) instead of "
                            "exporting; REQ=-1 profiles every machine "
                            "without a per-request waterfall")
    _add_fastpath_arg(trace)

    pm = sub.add_parser(
        "postmortem",
        help="deterministic crash scenario → flight-recorder bundle, "
             "Chrome trace and critical-path table",
    )
    pm.add_argument("--out", default=None, metavar="DIR",
                    help="bundle directory (omit to print the bundle JSON)")
    pm.add_argument("--replicas", type=int, default=2, metavar="N")
    pm.add_argument("--rate", type=float, default=18.0, metavar="RPS",
                    help="offered load (high enough to burn the SLO budget)")
    pm.add_argument("--duration", type=float, default=6.0, metavar="S",
                    help="arrival window (simulated seconds)")
    pm.add_argument("--fail-at", type=float, default=2.0, metavar="T",
                    help="crash replica 0 at simulated time T")
    pm.add_argument("--recover-after", type=float, default=2.0, metavar="S")
    pm.add_argument("--ring", type=int, default=256, metavar="N",
                    help="flight-recorder ring size per machine")
    pm.add_argument("--seed", type=int, default=None, metavar="N")
    _add_fastpath_arg(pm)

    bench = sub.add_parser(
        "bench", help="continuous benchmark harness with regression gating"
    )
    bench.add_argument("--suite", choices=sorted(SUITES), default="standard")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="artifact path (default: next BENCH_<n>.json "
                            "under --dir)")
    bench.add_argument("--dir", default=".", metavar="DIR",
                       help="directory holding BENCH_*.json artifacts")
    bench.add_argument("--compare", nargs="?", const="latest", default=None,
                       metavar="BASELINE",
                       help="after the run, diff against BASELINE (default: "
                            "the latest prior artifact); exit 1 on regression")
    bench.add_argument("--candidate", default=None, metavar="FILE",
                       help="compare FILE instead of running the suite")
    bench.add_argument("--tolerance", type=float, default=5.0, metavar="PCT",
                       help="regression tolerance in percent (default 5)")
    bench.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 (PR soft gate)")
    bench.add_argument("--seed", type=int, default=None, metavar="N")
    bench.add_argument("--json", action="store_true",
                       help="emit the comparison (or artifact) as JSON")
    _add_fastpath_arg(bench)

    dash = sub.add_parser(
        "dash", help="live ASCII dashboard over a FlexGen offloading run "
                     "(or, with --serve, an online-serving run)"
    )
    dash.add_argument("--system", choices=("pipellm", "cc"), default="pipellm")
    dash.add_argument("--serve", action="store_true",
                      help="dashboard an online-serving run over the "
                           "confidential cluster (TTFT/TPOT line)")
    dash.add_argument("--rate", type=float, default=10.0, metavar="RPS",
                      help="offered load for --serve")
    dash.add_argument("--duration", type=float, default=4.0, metavar="S",
                      help="arrival window for --serve (simulated seconds)")
    dash.add_argument("--requests", type=int, default=12, metavar="N")
    dash.add_argument("--interval-ms", type=float, default=50.0,
                      help="frame period in simulated milliseconds")
    dash.add_argument("--refresh-s", type=float, default=0.0, metavar="S",
                      help="wall-clock pause between frames (watchable pace)")
    dash.add_argument("--seed", type=int, default=None, metavar="N")
    dash.add_argument("--json", action="store_true",
                      help="print only the final summary as JSON")
    _add_fastpath_arg(dash)
    return parser


def _run_one(name: str, scale: str, out, as_json: bool = False) -> None:
    start = time.time()
    result = EXPERIMENTS[name](scale)
    if as_json:
        print(json.dumps(result.to_dict(), indent=2), file=out)
    else:
        print(result.render(), file=out)
        print(f"[{name}: {time.time() - start:.1f}s]", file=out)


def _run_trace(args, out) -> int:
    from .telemetry import ascii_gantt, chrome_trace, flat_metrics, metrics_csv, recording

    with recording(max_events_per_hub=args.max_events) as session:
        EXPERIMENTS[args.experiment](args.scale)
    if args.attrib is not None:
        return _print_attrib(session, args.attrib, out)
    if args.format == "chrome":
        text = json.dumps(chrome_trace(session.hubs), separators=(",", ":"))
    elif args.format == "json":
        text = json.dumps(flat_metrics(session.hubs), indent=2)
    elif args.format == "csv":
        text = metrics_csv(session.hubs)
    else:
        text = ascii_gantt(session.hubs)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"wrote {args.format} trace for {args.experiment} "
              f"({len(session.hubs)} machines) to {args.out}", file=out)
    else:
        print(text, file=out)
    return 0


def _print_attrib(session, request_id: int, out) -> int:
    """``trace --attrib``: per-request waterfalls via the profiler."""
    from .observatory import profile_hub, render_profile, render_waterfall

    found = False
    for hub in session.hubs:
        profile = profile_hub(hub, enc_bandwidth=None)
        if not profile.requests:
            continue
        print(render_profile(profile), file=out)
        if request_id >= 0:
            attribution = profile.find(request_id)
            if attribution is not None:
                print(render_waterfall(attribution), file=out)
                found = True
        print(file=out)
    if request_id >= 0 and not found:
        print(f"request id {request_id} not found in any machine's records",
              file=out)
        return 1
    return 0


def _run_postmortem(args, out) -> int:
    """``postmortem``: crash scenario → deterministic bundle on disk."""
    from .core import ClusterConfig
    from .serve import LoadSpec, run_serve
    from .telemetry import recording
    from .tracing import (
        AlertEngine,
        BurnRateRule,
        FlightRecorder,
        TraceCollector,
        collecting,
        default_event_rules,
        postmortem_bundle,
        render_critical_path_table,
        write_postmortem,
    )

    seed = args.seed if args.seed is not None else 42
    config = ClusterConfig(
        replicas=args.replicas,
        fail_at=args.fail_at,
        fail_replica=0,
        recover_after=args.recover_after,
        seed=seed,
    )
    load = LoadSpec(rate=args.rate, duration=args.duration, seed=seed)
    collector = TraceCollector()
    recorder = FlightRecorder(ring_size=args.ring)
    engine = AlertEngine(
        slo_rules=(
            BurnRateRule(
                "slo-burn", "slo", budget=0.05,
                long_window=max(1.0, args.duration / 2),
                short_window=max(0.25, args.duration / 8),
                threshold=2.0, min_samples=8,
                cooldown=max(1.0, args.duration / 2),
            ),
        ),
        event_rules=default_event_rules(window=max(0.5, args.duration / 4)),
    )
    with recording() as session, collecting(collector):
        engine.attach_session(session)
        recorder.attach_session(session)
        result = run_serve(config, load, alerts=engine, seed=seed)
        hubs = list(session.hubs)
    end_time = max(
        (event.time for hub in hubs for event in hub.events),
        default=load.duration,
    )
    if not recorder.snapshots:
        recorder.snapshot("end-of-run", end_time)
    bundle = postmortem_bundle(
        recorder=recorder,
        collector=collector,
        alerts=engine,
        meta={
            "command": "postmortem",
            "seed": seed,
            "replicas": args.replicas,
            "rate": args.rate,
            "duration": args.duration,
            "fail_at": args.fail_at,
            "recover_after": args.recover_after,
            "offered": result.offered,
            "completed": result.completed,
            "shed": result.shed,
            "failovers": result.failovers,
            "crashes": result.crashes,
        },
    )
    if args.out:
        written = write_postmortem(args.out, bundle, hubs=hubs,
                                   collector=collector)
        for name, path in sorted(written.items()):
            print(f"wrote {name}: {path}", file=out)
        print(
            f"postmortem: {len(recorder.snapshots)} snapshots, "
            f"{len(engine.alerts)} alerts, "
            f"{bundle['closure']['traces_checked']} traces "
            f"({len(bundle['closure']['problems'])} closure problems)",
            file=out,
        )
    else:
        print(json.dumps(bundle, indent=2, sort_keys=True), file=out)
    print(render_critical_path_table(collector), file=out)
    return 1 if bundle["closure"]["problems"] else 0


def _run_bench(args, out) -> int:
    from .bench.continuous import (
        compare_artifacts,
        find_latest_artifact,
        load_artifact,
        next_artifact_path,
        render_comparison,
        run_suite,
    )
    from pathlib import Path

    directory = Path(args.dir)
    candidate_path = None
    if args.candidate is not None:
        candidate_path = Path(args.candidate)
        candidate = load_artifact(candidate_path)
    else:
        seed = args.seed if args.seed is not None else 1
        candidate = run_suite(args.suite, seed=seed, clock=time.time)
        candidate_path = Path(args.out) if args.out else next_artifact_path(directory)
        candidate_path.write_text(
            json.dumps(candidate, indent=2, sort_keys=True) + "\n"
        )
        print(
            f"wrote {candidate_path} (suite={candidate['suite']} "
            f"seed={candidate['seed']} "
            f"wall={candidate['wall_clock_s']:.1f}s "
            f"verdicts: cc={candidate['verdicts']['offload-cc']} "
            f"pipellm={candidate['verdicts']['offload-pipellm']})",
            file=out,
        )

    if args.compare is None:
        if args.json and args.candidate is not None:
            print(json.dumps(candidate, indent=2, sort_keys=True), file=out)
        return 0

    if args.compare == "latest":
        own = None
        if candidate_path is not None:
            from .bench.continuous import artifact_index
            own = artifact_index(candidate_path)
        baseline_path = find_latest_artifact(directory, below=own)
        if baseline_path is None or baseline_path == candidate_path:
            print("no prior BENCH_*.json artifact to compare against", file=out)
            return 0
    else:
        baseline_path = Path(args.compare)
    baseline = load_artifact(baseline_path)
    diff = compare_artifacts(baseline, candidate, tolerance=args.tolerance / 100.0)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True), file=out)
    else:
        print(f"compare {baseline_path.name} -> {candidate_path.name}:", file=out)
        print(render_comparison(diff), file=out)
    if diff["regressions"] and not args.warn_only:
        return 1
    return 0


def _run_dash(args, out) -> int:
    from .observatory.dashboard import run_flexgen_dashboard, run_serve_dashboard

    if args.serve:
        run = run_serve_dashboard(
            rate=args.rate,
            duration=args.duration,
            system=args.system,
            interval_s=max(args.interval_ms / 1e3, 1e-4),
            render=not args.json,
            sink=None if args.json else (lambda frame: print(frame + "\n", file=out)),
            refresh_wall_s=args.refresh_s,
            seed=args.seed if args.seed is not None else 1,
        )
        print(json.dumps(run.summary, indent=2, sort_keys=True), file=out)
        return 0

    if args.system == "pipellm":
        from .bench import pipellm

        system = pipellm(8, 2)
    else:
        from .bench import CC as system  # noqa: N811

    run = run_flexgen_dashboard(
        system=system,
        n_requests=args.requests,
        interval_s=args.interval_ms / 1e3,
        render=not args.json,
        sink=None if args.json else (lambda frame: print(frame + "\n", file=out)),
        refresh_wall_s=args.refresh_s,
        seed=args.seed if args.seed is not None else 1,
    )
    print(json.dumps(run.summary, indent=2, sort_keys=True), file=out)
    return 0


def _run_cluster(args, out) -> int:
    from .cluster import run_cluster
    from .core import ClusterConfig

    config = ClusterConfig(
        replicas=args.replicas,
        policy=args.policy,
        system=args.system,
        fail_at=args.fail_at,
        fail_replica=args.fail_replica,
        recover_after=args.recover_after,
        seed=args.seed if args.seed is not None else 42,
    )
    start = time.time()
    result = run_cluster(
        config, rate=args.rate, duration=args.duration, tenants=args.tenants
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2), file=out)
        return 0
    print(
        f"cluster: {result.replicas} replicas ({result.system}), "
        f"policy={result.policy}, rate={args.rate:g} req/s, "
        f"{args.tenants} tenants", file=out,
    )
    rows = [
        ("offered / completed / shed",
         f"{result.offered} / {result.completed} / {result.shed}"),
        ("throughput", f"{result.throughput:.2f} req/s"),
        ("latency p50 / p99",
         f"{result.p50_latency * 1e3:.1f} ms / {result.p99_latency * 1e3:.1f} ms"),
        ("gateway queue depth (mean)", f"{result.queue_depth_mean:.2f}"),
        ("handshakes / failovers / crashes",
         f"{result.handshakes} / {result.failovers} / {result.crashes}"),
        ("prefix hits / swap-outs",
         f"{result.prefix_hits} / {result.swap_outs}"),
        ("auth failures", str(result.auth_failures)),
        ("IVs audited", f"{result.iv_observed} over {result.iv_lanes} lanes"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"  {label.ljust(width)}  {value}", file=out)
    util = "  ".join(
        f"r{rid}={frac * 100:.0f}%" for rid, frac in sorted(result.utilization.items())
    )
    print(f"  {'per-replica GPU utilization'.ljust(width)}  {util}", file=out)
    for tenant, frac in sorted(result.slo_attainment.items()):
        print(f"  {f'SLO attainment {tenant}'.ljust(width)}  {frac * 100:.0f}%",
              file=out)
    print(f"[cluster: {time.time() - start:.1f}s]", file=out)
    return 0


def _run_disagg(args, out) -> int:
    if args.rate is None and args.hw_pack is None:
        _run_one("disagg", args.scale, out, as_json=args.json)
        return 0

    from .core import DisaggConfig
    from .disagg import run_disagg

    config = DisaggConfig(
        prefill_workers=args.prefill,
        decode_workers=args.decode,
        system=args.system,
        decode_policy=args.policy,
        hw_pack=args.hw_pack,
        fail_at=args.fail_at,
        fail_kind=args.fail_kind,
        fail_index=args.fail_index,
        recover_after=args.recover_after,
        seed=args.seed if args.seed is not None else 42,
    )
    rate = args.rate if args.rate is not None else 4.0
    start = time.time()
    result = run_disagg(
        config, rate=rate, duration=args.duration, tenants=args.tenants
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True), file=out)
        return 0
    topology = (
        "monolithic" if result.prefill_workers == 0
        else f"{result.prefill_workers}p+{result.decode_workers}d"
    )
    print(
        f"disagg: {topology} ({result.system}), "
        f"pack={args.hw_pack or 'h100-cc'}, rate={rate:g} req/s, "
        f"{args.tenants} tenants", file=out,
    )
    rows = [
        ("offered / completed / shed",
         f"{result.offered} / {result.completed} / {result.shed}"),
        ("goodput", f"{result.goodput:.2f} req/s"),
        ("TTFT p50 / p99",
         f"{result.p50_ttft * 1e3:.1f} ms / {result.p99_ttft * 1e3:.1f} ms"),
        ("latency mean / p99",
         f"{result.mean_latency * 1e3:.1f} ms / "
         f"{result.p99_latency * 1e3:.1f} ms"),
        ("migrations / chunks / resends",
         f"{result.migrations} / {result.migration_chunks} / "
         f"{result.migration_resends}"),
        ("speculation hit rate", f"{result.migration_hit_rate:.3f}"),
        ("wire per chunk", f"{result.migration_s_per_chunk * 1e6:.1f} us"),
        ("failovers / resumes / replays",
         f"{result.failovers} / {result.resumes} / {result.replays}"),
        ("IVs audited",
         f"{result.iv_observed} over {result.iv_lanes} lanes "
         f"({result.migration_links} links)"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"  {label.ljust(width)}  {value}", file=out)
    util = "  ".join(
        f"{label}={frac * 100:.0f}%"
        for label, frac in sorted(result.utilization.items())
    )
    print(f"  {'per-worker GPU utilization'.ljust(width)}  {util}", file=out)
    print(f"[disagg: {time.time() - start:.1f}s]", file=out)
    return 0


def _run_serve(args, out) -> int:
    if args.rate is None:
        _run_one("serve", args.scale, out, as_json=args.json)
        return 0

    from .bench.serve import SERVE_MAX_OUTSTANDING, SERVE_RESERVE_BYTES
    from .core import ClusterConfig
    from .serve import LoadSpec, run_serve
    from .workloads import ALPACA_SERVE, SHAREGPT_SERVE

    trace = SHAREGPT_SERVE if args.trace == "sharegpt" else ALPACA_SERVE
    config = ClusterConfig(
        replicas=args.replicas,
        system=args.system,
        policy="least-loaded",
        reserve_bytes=SERVE_RESERVE_BYTES,
        max_outstanding=SERVE_MAX_OUTSTANDING,
        fail_at=args.fail_at,
        recover_after=args.recover_after,
    )
    load = LoadSpec(
        trace=trace, rate=args.rate, duration=args.duration,
        tenants=args.tenants,
    )
    start = time.time()
    result = run_serve(config, load, admission=args.admission)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True), file=out)
        return 0
    print(
        f"serve: {args.replicas} replicas ({args.system}), "
        f"admission={result.admission}, trace={result.trace}, "
        f"rate={args.rate:g} req/s", file=out,
    )
    shed = " ".join(
        f"{reason}={count}"
        for reason, count in sorted(result.shed_by_reason.items())
    ) or "none"
    rows = [
        ("offered / completed / shed",
         f"{result.offered} / {result.completed} / {result.shed}"),
        ("shed reasons", shed),
        ("SLO attainment", f"{result.attainment * 100:.0f}%"),
        ("goodput", f"{result.goodput:.2f} req/s"),
        ("TTFT p50 / p99",
         f"{result.p50_ttft * 1e3:.1f} ms / {result.p99_ttft * 1e3:.1f} ms"),
        ("TPOT mean", f"{result.mean_tpot * 1e3:.2f} ms"),
        ("swap-outs / failovers / auth failures",
         f"{result.swap_outs} / {result.failovers} / {result.auth_failures}"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"  {label.ljust(width)}  {value}", file=out)
    print(f"[serve: {time.time() - start:.1f}s]", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if getattr(args, "seed", None) is not None:
        from .sim import set_default_seed

        set_default_seed(args.seed)
    if getattr(args, "crypto_backend", None) is not None:
        from . import fastpath

        fastpath.configure(args.crypto_backend)
    if args.command == "list":
        for name, fn in EXPERIMENTS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<14} {summary}", file=out)
        return 0
    if args.command == "systems":
        print(_SYSTEMS_HELP, end="", file=out)
        return 0
    if args.command == "claims":
        from .bench.claims import render_outcomes

        outcomes = verify_claims(args.scale)
        if args.json:
            print(json.dumps([
                {
                    "claim_id": o.claim.claim_id,
                    "statement": o.claim.statement,
                    "paper_value": o.claim.paper_value,
                    "measured": o.measured,
                    "passed": o.passed,
                }
                for o in outcomes
            ], indent=2), file=out)
        else:
            print(render_outcomes(outcomes), file=out)
        return 0 if all(o.passed for o in outcomes) else 1
    if args.command == "run":
        _run_one(args.experiment, args.scale, out, as_json=args.json)
        return 0
    if args.command == "all":
        for name in EXPERIMENTS:
            _run_one(name, args.scale, out)
            print(file=out)
        return 0
    if args.command == "faults":
        _run_one("faults", args.scale, out, as_json=args.json)
        return 0
    if args.command == "parallel":
        _run_one("parallel", args.scale, out, as_json=args.json)
        return 0
    if args.command == "trace":
        return _run_trace(args, out)
    if args.command == "cluster":
        return _run_cluster(args, out)
    if args.command == "serve":
        return _run_serve(args, out)
    if args.command == "disagg":
        return _run_disagg(args, out)
    if args.command == "postmortem":
        return _run_postmortem(args, out)
    if args.command == "bench":
        return _run_bench(args, out)
    if args.command == "dash":
        return _run_dash(args, out)
    return 2


if __name__ == "__main__":
    sys.exit(main())
