"""Figure 8 — vLLM KV-cache swapping with PipeLLM (§7.2).

Normalized latency vs request rate for OPT-30B (ShareGPT + Alpaca)
and OPT-13B (ShareGPT), comparing w/o CC / CC / PipeLLM with one
encryption and one decryption thread, as in the paper. Shape targets:

* no divergence while there is no memory pressure;
* under pressure CC blows up (33.3–52.8 % on OPT-30B in the paper)
  and PipeLLM lands between w/o CC and CC;
* prediction success stays near 100 % (LIFO-friendly workload);
* OPT-13B suffers less than OPT-30B (32.5 % vs 75 % of GPU memory).
"""

from repro.bench import fig8_kv_swapping
from conftest import run_once


def test_fig8_kv_swapping(benchmark, echo):
    result = run_once(benchmark, fig8_kv_swapping, "quick")
    echo(result)

    # System ordering at every measured point under pressure.
    for row in result.select(system="CC"):
        if row["overhead_pct"] < 10:
            continue  # No pressure at this rate: nothing to compare.
        pipe = result.find(
            model=row["model"], dataset=row["dataset"], rate=row["rate"],
            system="PipeLLM",
        )
        assert pipe["norm_latency_s_tok"] < row["norm_latency_s_tok"]

    # Prediction success stays high wherever swapping happened.
    success = [
        row["success_rate"]
        for row in result.select(system="PipeLLM")
        if isinstance(row["success_rate"], float) and row["overhead_pct"] > 10
    ]
    assert all(rate > 0.85 for rate in success), success

    # Every parallel-n sweep of 30B/ShareGPT diverges under load.
    for parallel in (2, 4, 6):
        cc_rows = result.select(
            model="opt-30b", dataset="sharegpt", parallel=parallel, system="CC"
        )
        assert max(row["overhead_pct"] for row in cc_rows) > 30

    # p90 tail latencies are reported and at least the means.
    for row in result.rows:
        assert row["p90_latency_s_tok"] >= row["norm_latency_s_tok"] * 0.99
