"""Figure 2 — H2D memcpy latency/throughput microbenchmark.

Regenerates the paper's table: CC-disabled vs CC-enabled latency and
throughput at 32 B / 128 KB / 1 MB / 32 MB. The calibrated model must
match the paper's measurements closely (they are its calibration
source), so this bench doubles as a calibration regression test.
"""

import pytest

from repro.bench import fig2_microbenchmark
from conftest import run_once

#: Paper values: size -> (latency_us, throughput_gbps or None).
PAPER_CC_DISABLED = {
    "32B": (1.43, None),
    "128KB": (1.17, 27.16),
    "1MB": (1.19, 48.2),
    "32MB": (1.43, 55.31),
}
PAPER_CC_ENABLED = {
    "32B": (14.93, None),
    "128KB": (22.809, 3.32),
    "1MB": (162.5, 5.82),
    "32MB": (5252.1, 5.83),
}


def test_fig2_microbenchmark(benchmark, echo):
    result = run_once(benchmark, fig2_microbenchmark, "quick")
    echo(result)

    for system, paper in (("w/o CC", PAPER_CC_DISABLED), ("CC", PAPER_CC_ENABLED)):
        for size, (latency_us, throughput) in paper.items():
            row = result.find(size=size, system=system)
            assert row["latency_us"] == pytest.approx(latency_us, rel=0.35)
            if throughput is not None:
                assert row["throughput_gbps"] == pytest.approx(throughput, rel=0.2)

    # The headline shape: CC costs about an order of magnitude of
    # bandwidth on large transfers.
    ncc = result.find(size="32MB", system="w/o CC")["throughput_gbps"]
    cc = result.find(size="32MB", system="CC")["throughput_gbps"]
    assert 6 < ncc / cc < 14
