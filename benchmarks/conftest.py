"""Shared benchmark plumbing.

Each benchmark runs one paper experiment end to end inside the
deterministic simulator. Since a run is itself a full simulation (not
a microsecond-scale kernel), every benchmark uses a single
pedantic round; the interesting output is the experiment table, which
is echoed so `pytest benchmarks/ --benchmark-only -s` regenerates the
paper's numbers.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def echo(capsys):
    """Print an experiment table even under captured output."""

    def _echo(result):
        with capsys.disabled():
            print()
            print(result.render())

    return _echo
