"""Figure 3 — the confidential-computing overhead study (§3).

Three sub-figures, each comparing "CC" against "w/o CC":

* 3a — FlexGen OPT-66B model offloading (paper: up to 88.2 % drop)
* 3b — vLLM OPT-30B KV swapping (latency diverges with request rate)
* 3c — PEFT fine-tuning (36.2 % drop on OPT-30B, 14.0 % on OPT-13B)
"""

import pytest

from repro.bench import (
    fig3a_flexgen_overhead,
    fig3b_vllm_overhead,
    fig3c_peft_overhead,
)
from conftest import run_once


def test_fig3a_flexgen(benchmark, echo):
    result = run_once(benchmark, fig3a_flexgen_overhead, "quick")
    echo(result)
    drops = [row["drop_pct"] for row in result.select(system="CC")]
    # Paper: 82.8 %–88.2 % across configurations.
    assert all(75 < drop < 95 for drop in drops)
    assert max(drops) == pytest.approx(88.2, abs=4.0)


def test_fig3b_vllm(benchmark, echo):
    result = run_once(benchmark, fig3b_vllm_overhead, "quick")
    echo(result)
    rates = sorted({row["rate"] for row in result.rows})
    low, high = rates[0], rates[-1]
    # At low rate there is no memory pressure: CC ≈ w/o CC (§3).
    cc_low = result.find(rate=low, system="CC")["norm_latency_s_tok"]
    ncc_low = result.find(rate=low, system="w/o CC")["norm_latency_s_tok"]
    assert cc_low == pytest.approx(ncc_low, rel=0.05)
    # At high rate swapping kicks in and CC's latency diverges.
    cc_high = result.find(rate=high, system="CC")["norm_latency_s_tok"]
    ncc_high = result.find(rate=high, system="w/o CC")["norm_latency_s_tok"]
    assert cc_high > 1.3 * ncc_high
    # Swapping is the cause: the high-rate rows actually swapped.
    assert result.find(rate=high, system="CC")["swap_ins"] > 0


def test_fig3c_peft(benchmark, echo):
    result = run_once(benchmark, fig3c_peft_overhead, "quick")
    echo(result)
    drop_30b = result.find(model="opt-30b", system="CC")["drop_pct"]
    drop_13b = result.find(model="opt-13b", system="CC")["drop_pct"]
    # Paper: 36.2 % and 14.0 %.
    assert drop_30b == pytest.approx(36.2, abs=8.0)
    assert drop_13b == pytest.approx(14.0, abs=6.0)
    assert drop_13b < drop_30b
