"""Figure 10 — ablation on sequence-prediction success (§7.4).

"PipeLLM-0" predicts the right *set* of chunks in the always-wrong
*order*. The paper measures only an 8.3 % latency penalty: the ready
ciphertext is still usable thanks to request re-ordering and NOP
padding. Our reproduction shows the same qualitative result (the
penalty is small compared with the CC-vs-PipeLLM gap).
"""

from repro.bench import fig10_success_rate
from conftest import run_once


def test_fig10_success_rate(benchmark, echo):
    result = run_once(benchmark, fig10_success_rate, "quick")
    echo(result)

    pipe = result.find(system="PipeLLM")["norm_latency_s_tok"]
    zero = result.find(system="PipeLLM-0")["norm_latency_s_tok"]
    cc = result.find(system="CC")["norm_latency_s_tok"]

    penalty = zero / pipe - 1.0
    # Paper: ~8.3 %. The penalty must be small, and in particular tiny
    # against what losing the pipeline entirely (CC) would cost.
    assert penalty < 0.15
    assert zero < cc
    # NOPs are the mechanism that absorbs the mispredictions.
    assert result.find(system="PipeLLM-0")["nops"] >= 1
