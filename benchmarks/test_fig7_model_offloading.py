"""Figure 7 — model offloading with PipeLLM (§7.2).

FlexGen (OPT-66B and 4-bit OPT-175B) and PEFT (OPT-30B/13B) across
w/o CC / CC / PipeLLM. Headline claims to reproduce:

* CC costs 82.8–88.2 % of FlexGen's throughput and up to 36.2 % of
  PEFT's;
* PipeLLM cuts the overhead to below 19.6 % everywhere.
"""

from repro.bench import fig7_model_offloading
from conftest import run_once


def test_fig7_model_offloading(benchmark, echo):
    result = run_once(benchmark, fig7_model_offloading, "quick")
    echo(result)

    flexgen_cc = [
        row["overhead_pct"]
        for row in result.select(system="CC")
        if row["workload"].startswith("flexgen")
    ]
    assert all(70 < overhead < 95 for overhead in flexgen_cc)

    pipellm = [row["overhead_pct"] for row in result.select(system="PipeLLM")]
    assert all(overhead < 19.6 for overhead in pipellm), pipellm

    # PipeLLM strictly dominates CC in every configuration.
    for row in result.select(system="PipeLLM"):
        cc_row = result.find(
            workload=row["workload"], config=row["config"], system="CC"
        )
        assert row["throughput_tok_s"] > cc_row["throughput_tok_s"]
