"""Ablation benches on PipeLLM's design choices (beyond the paper).

These quantify the design decisions DESIGN.md calls out: encryption
thread count for model offloading (§7.2), asynchronous decryption
(§5.4), the adaptive IV-leeway controller and the KV staging-window
depth (our documented extensions).
"""

from repro.bench import (
    ablation_async_decrypt,
    ablation_enc_threads,
    ablation_kv_depth,
    ablation_leeway,
)
from conftest import run_once


def test_ablation_enc_threads(benchmark, echo):
    result = run_once(benchmark, ablation_enc_threads, "quick")
    echo(result)
    throughputs = result.column("throughput_tok_s")
    # Monotone in thread count, with a large knee between 1 and 8:
    # one AES thread is indistinguishable from the CC baseline.
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] > 4 * throughputs[0]
    assert result.find(enc_threads=1)["overhead_pct"] > 80


def test_ablation_async_decrypt(benchmark, echo):
    result = run_once(benchmark, ablation_async_decrypt, "quick")
    echo(result)
    on = result.find(system="PipeLLM")
    off = result.find(system="PipeLLM-syncdec")
    # §5.4: taking decryption off the critical path helps, and the
    # async path actually ran (the counter proves the mechanism).
    assert on["norm_latency_s_tok"] < off["norm_latency_s_tok"]
    assert on["async_decrypts"] > 0
    assert off["async_decrypts"] == 0


def test_ablation_leeway(benchmark, echo):
    result = run_once(benchmark, ablation_leeway, "quick")
    echo(result)
    adaptive = result.find(policy="adaptive")
    fixed0 = result.find(policy="fixed-0")
    # The adaptive controller must be at least as good as the best
    # fixed setting it is replacing (small tolerance: these runs are
    # noisy at the request level).
    best_fixed = min(
        row["norm_latency_s_tok"] for row in result.rows if row["policy"] != "adaptive"
    )
    assert adaptive["norm_latency_s_tok"] <= best_fixed * 1.05
    assert adaptive["success_rate"] >= 0.85


def test_ablation_kv_depth(benchmark, echo):
    result = run_once(benchmark, ablation_kv_depth, "quick")
    echo(result)
    # Deeper windows trade evictions for IV-skips; success holds up
    # across the sweep (the mechanisms compensate for each other).
    for row in result.rows:
        assert row["success_rate"] > 0.9
    shallow = result.find(kv_depth=1)
    deep = result.find(kv_depth=8)
    assert shallow["iv_skipped"] <= deep["iv_skipped"]
    assert shallow["evicted"] >= deep["evicted"]
