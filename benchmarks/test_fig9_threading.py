"""Figure 9 — trivial multi-threading vs pipelining (§7.3).

The paper's point: "CC-4t" (4 crypto threads, no pipelining) narrows
the gap but PipeLLM with only 2 threads still outperforms it — the
win comes from taking encryption off the critical path, not from raw
thread count.
"""

from repro.bench import fig9_threading
from conftest import run_once


def test_fig9_threading(benchmark, echo):
    result = run_once(benchmark, fig9_threading, "quick")
    echo(result)

    base = result.find(system="w/o CC")["norm_latency_s_tok"]
    cc = result.find(system="CC")["norm_latency_s_tok"]
    cc4t = result.find(system="CC-4t")["norm_latency_s_tok"]
    pipe = result.find(system="PipeLLM")["norm_latency_s_tok"]

    # More threads help the CC baseline...
    assert cc4t < cc
    # ...but PipeLLM with 2 threads beats CC-4t with 8.
    assert pipe < cc4t
    assert result.find(system="PipeLLM")["crypto_threads"] == 2
    assert result.find(system="CC-4t")["crypto_threads"] == 8
    # And nobody beats the unencrypted baseline.
    assert base <= pipe
