"""The reproduction scorecard: every headline claim must pass."""

from repro.bench import verify_claims
from repro.bench.claims import render_outcomes


def test_all_headline_claims_reproduce(benchmark, echo):
    outcomes = benchmark.pedantic(verify_claims, args=("quick",), rounds=1, iterations=1)
    import io

    class _Box:
        def render(self):
            return render_outcomes(outcomes)

    echo(_Box())
    failing = [o.claim.claim_id for o in outcomes if not o.passed]
    assert not failing, f"claims failed: {failing}"
