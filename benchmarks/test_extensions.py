"""Extension experiments beyond the paper's figures.

* §8.3 quantified: shared TEE-I/O hardware vs per-tenant PipeLLM.
* Layer-wise KV swapping (Figure 5's FIFO pattern) end to end.
"""

from repro.bench import WITHOUT_CC, CC, extension_teeio_scaling, pipellm
from repro.models import OPT_30B
from repro.serving import LayerwiseConfig, LayerwiseKvEngine
from repro.workloads import SyntheticShape
from conftest import run_once


def test_extension_teeio_scaling(benchmark, echo):
    result = run_once(benchmark, extension_teeio_scaling, "quick")
    echo(result)
    pipe = result.find(system="PipeLLM")["throughput_tok_s"]
    one = result.find(system="TEE-I/O", tenants=1)["throughput_tok_s"]
    eight = result.find(system="TEE-I/O", tenants=8)["throughput_tok_s"]
    # Alone, the hardware engine is on par with PipeLLM...
    assert one == benchmark.extra_info.setdefault("one", one)
    assert abs(one - pipe) / pipe < 0.15
    # ...but sharing it across a standard 8-GPU server collapses it,
    # while PipeLLM's CPU threads are per-tenant.
    assert eight < 0.25 * pipe
    # Degradation is monotone in tenant count.
    throughputs = [row["throughput_tok_s"] for row in result.select(system="TEE-I/O")]
    assert throughputs == sorted(throughputs, reverse=True)


def _run_layerwise(system_spec):
    machine, runtime = system_spec.build()
    config = LayerwiseConfig(OPT_30B, SyntheticShape(192, 4), batch_size=256)
    engine = LayerwiseKvEngine(machine, runtime, config)
    result = engine.run()
    assert machine.gpu.auth_failures == 0
    return result


def test_extension_layerwise_fifo(benchmark, echo):
    def experiment():
        return {
            "w/o CC": _run_layerwise(WITHOUT_CC),
            "CC": _run_layerwise(CC),
            "PipeLLM": _run_layerwise(pipellm(8, 8)),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    base = results["w/o CC"].throughput
    cc = results["CC"].throughput
    pipe = results["PipeLLM"].throughput
    with_streaming = results["w/o CC"].streamed_layers
    assert with_streaming > 0
    # The FIFO swap pattern behaves like the other workloads: CC
    # collapses (both directions are crypto-bound), PipeLLM recovers
    # most of it.
    assert 1 - cc / base > 0.85
    assert cc < pipe < base
