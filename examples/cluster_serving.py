#!/usr/bin/env python3
"""A confidential serving *cluster*: N replicas behind one gateway.

PipeLLM makes a single CVM+GPU machine fast; this example runs four of
them inside one simulator behind an encrypted-session gateway and
shows the deployment-level story end to end:

1. every tenant runs its own attested key exchange per replica, so
   request/response ciphertext rides per-tenant IV streams completely
   separate from each replica's internal CVM<->GPU channel;
2. the affinity policy routes a tenant back to the replica holding its
   warm prefix KV blocks (vLLM-style reuse across requests);
3. a replica crash mid-run orphans its in-flight requests, which fail
   over to survivors through *fresh* handshakes — and a cluster-wide
   IV audit plus the GCM tag counters prove no nonce was ever reused
   and no forged ciphertext was ever accepted.

Run:  python examples/cluster_serving.py
"""

from repro.cluster import Cluster
from repro.core import ClusterConfig


def serve(title: str, config: ClusterConfig, rate: float = 5.0) -> None:
    print(f"{title}")
    cluster = Cluster(config)
    result = cluster.run(cluster.workload(rate=rate, duration=8.0, tenants=4))
    util = "  ".join(
        f"r{rid}={frac * 100:.0f}%"
        for rid, frac in sorted(result.utilization.items())
    )
    print(f"   completed {result.completed}/{result.offered} "
          f"({result.shed} shed) at {result.throughput:.2f} req/s, "
          f"p50 {result.p50_latency * 1e3:.0f} ms / "
          f"p99 {result.p99_latency * 1e3:.0f} ms")
    print(f"   handshakes={result.handshakes}  prefix_hits={result.prefix_hits}  "
          f"failovers={result.failovers}  util: {util}")
    if result.auth_failures:
        raise SystemExit("AUTH FAILURE — this must never print")
    print(f"   crypto: {result.iv_observed} IVs audited over "
          f"{result.iv_lanes} (key, stream) lanes, 0 tag failures\n")


def main() -> None:
    print("=== 1. Four replicas, least-loaded routing ===")
    serve("Load balances across the fleet:",
          ClusterConfig(replicas=4, policy="least-loaded"))

    print("=== 2. Tenant-affinity routing ===")
    serve("Tenants stick to replicas; warm prefixes skip prefill:",
          ClusterConfig(replicas=4, policy="affinity"))

    print("=== 3. Crash and failover ===")
    serve("Replica 0 dies at t=2s, recovers at t=6s; requests migrate:",
          ClusterConfig(replicas=2, policy="least-loaded",
                        fail_at=2.0, fail_replica=0, recover_after=4.0),
          rate=6.0)
    print("Every request finished, every tag verified, every IV fresh.")


if __name__ == "__main__":
    main()
