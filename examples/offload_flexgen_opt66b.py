#!/usr/bin/env python3
"""Serving OPT-66B with model offloading (the paper's case study 1).

OPT-66B needs ~132 GB of fp16 weights — it cannot fit an 80 GB H100,
so FlexGen streams the overflow layers from host memory every pass.
This example reproduces the Fig. 3a / Fig. 7 comparison on a small
synthetic batch and prints the throughput of all three systems plus
the predictor's view of the repetitive swap pattern.

Run:  python examples/offload_flexgen_opt66b.py
"""

from repro import CcMode, CudaContext, OPT_66B, PipeLLMRuntime, build_machine
from repro.serving import FlexGenConfig, FlexGenEngine
from repro.workloads import SyntheticShape

SHAPE = SyntheticShape(prompt_len=32, output_len=12)
BATCH = 48


def run(label, machine, runtime):
    config = FlexGenConfig(OPT_66B, SHAPE, batch_size=BATCH, n_requests=BATCH)
    engine = FlexGenEngine(machine, runtime, config)
    result = engine.run()
    assert machine.gpu.auth_failures == 0
    print(
        f"{label:<22} {result.throughput:8.2f} tok/s   "
        f"({result.offloaded_layers}/{OPT_66B.n_layers} layers streamed, "
        f"{result.swap_in_count} swap-ins)"
    )
    return result


def main():
    print(f"FlexGen OPT-66B, batch {BATCH}, {SHAPE.label}:\n")

    machine = build_machine(CcMode.DISABLED)
    base = run("w/o CC", machine, CudaContext(machine))

    machine = build_machine(CcMode.ENABLED)
    cc = run("CC (NVIDIA default)", machine, CudaContext(machine))

    # PipeLLM needs several encryption threads here: ciphertext must be
    # produced faster than the ~47 GB/s the CC DMA path can move it.
    machine = build_machine(CcMode.ENABLED, enc_threads=8, dec_threads=2)
    runtime = PipeLLMRuntime(machine)
    pipe = run("CC + PipeLLM", machine, runtime)

    print()
    print(f"CC throughput drop:      {100 * (1 - cc.throughput / base.throughput):5.1f} %"
          "   (paper: up to 88.2 %)")
    print(f"PipeLLM overhead:        {100 * (1 - pipe.throughput / base.throughput):5.1f} %"
          "   (paper: < 19.6 %)")
    print()
    stats = runtime.stats()
    print(f"prediction success rate: {stats['success_rate']:.1%} "
          f"({stats['misses']:.0f} cold-start misses)")
    print(f"detector scores:         {runtime.predictor.scores()}")


if __name__ == "__main__":
    main()
