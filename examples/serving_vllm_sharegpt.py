#!/usr/bin/env python3
"""Serving OPT-30B chat traffic with KV-cache swapping (case study 2).

OPT-30B fits the GPU, but serving many concurrent ShareGPT-length
conversations with parallel sampling overflows the KV-cache space, so
vLLM preempts requests by swapping their KV to host memory and
resumes them LIFO. This example sweeps the request rate and prints
the normalized latency (s/token) of w/o CC, CC and PipeLLM — the
Fig. 3b / Fig. 8 experiment.

Run:  python examples/serving_vllm_sharegpt.py
"""

from repro import CcMode, CudaContext, OPT_30B, PipeLLMRuntime, build_machine
from repro.serving import VllmConfig, VllmEngine
from repro.sim import SeededRng
from repro.workloads import SHAREGPT, poisson_trace

RATES = (0.4, 0.8, 1.2, 1.6)
DURATION = 40.0
PARALLEL = 6


def run(system, rate):
    if system == "w/o CC":
        machine = build_machine(CcMode.DISABLED)
        runtime = CudaContext(machine)
    elif system == "CC":
        machine = build_machine(CcMode.ENABLED)
        runtime = CudaContext(machine)
    else:
        # The paper uses just one encryption and one decryption thread
        # for vLLM — pipelining, not parallelism, does the work.
        machine = build_machine(CcMode.ENABLED, enc_threads=1, dec_threads=1)
        runtime = PipeLLMRuntime(machine)
    requests = poisson_trace(SHAREGPT, rate, DURATION, SeededRng(42), parallel_n=PARALLEL)
    engine = VllmEngine(machine, runtime, VllmConfig(OPT_30B, requests))
    result = engine.run()
    assert machine.gpu.auth_failures == 0
    return result, runtime


def main():
    print(f"vLLM OPT-30B, ShareGPT-like trace, parallel sampling n={PARALLEL}")
    print(f"{'rate':>6}  {'w/o CC':>10}  {'CC':>10}  {'PipeLLM':>10}  "
          f"{'swaps':>6}  {'success':>8}")
    for rate in RATES:
        base, _ = run("w/o CC", rate)
        cc, _ = run("CC", rate)
        pipe, runtime = run("PipeLLM", rate)
        stats = runtime.stats()
        success = f"{stats['success_rate']:.0%}" if stats["swap_requests"] else "—"
        print(
            f"{rate:>6.1f}  {base.mean_normalized_latency:>8.3f} s"
            f"  {cc.mean_normalized_latency:>8.3f} s"
            f"  {pipe.mean_normalized_latency:>8.3f} s"
            f"  {pipe.swap_in_count:>6d}  {success:>8}"
        )
    print("\nShape to observe: all three agree while memory pressure is low;")
    print("once swapping starts, CC's latency diverges first and PipeLLM")
    print("stays much closer to the unencrypted baseline.")


if __name__ == "__main__":
    main()
