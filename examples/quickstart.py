#!/usr/bin/env python3
"""Quickstart: the secure channel, the CC tax, and PipeLLM's cure.

Builds three simulated H100 machines — confidential computing off,
on, and on-with-PipeLLM — and runs the same toy swap loop (a model
layer streamed from host memory ten times) on each. Prints the
end-to-end time per system plus PipeLLM's internal statistics.

Run:  python examples/quickstart.py
"""

from repro import CcMode, CudaContext, PipeLLMRuntime, build_machine
from repro.hw import MB


LAYER_BYTES = 256 * MB
ITERATIONS = 40


def run(label, machine, runtime):
    # Host-side copy of one "layer" of weights. The payload is the
    # functional content that really flows through AES-GCM; the
    # logical size drives the timing model.
    layer = machine.host_memory.allocate(LAYER_BYTES, "layer.0", b"pretend-weights")
    runtime.hint_weight_chunk_size(LAYER_BYTES)

    def app(sim):
        for _ in range(ITERATIONS):
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(layer.addr))
            yield handle.api_done          # cudaMemcpyAsync returns
            yield handle.complete          # data resident on device
            yield sim.timeout(2e-3)        # pretend GPU compute

    machine.sim.process(app(machine.sim))
    machine.run()

    assert machine.gpu.read_plaintext("layer.0") == b"pretend-weights"
    assert machine.gpu.auth_failures == 0
    print(f"{label:<22} {machine.sim.now * 1e3:8.2f} ms")
    return machine.sim.now


def main():
    print(f"Streaming a {LAYER_BYTES // MB} MB layer {ITERATIONS} times:\n")

    base = run("w/o CC", *with_runtime(CcMode.DISABLED))
    cc = run("CC (NVIDIA default)", *with_runtime(CcMode.ENABLED))

    machine = build_machine(CcMode.ENABLED, enc_threads=8, dec_threads=2)
    pipellm = PipeLLMRuntime(machine)
    pipe = run("CC + PipeLLM", machine, pipellm)

    print()
    print(f"CC overhead:      {100 * (cc / base - 1):6.1f} %")
    print(f"PipeLLM overhead: {100 * (pipe / base - 1):6.1f} %")
    print()
    print("PipeLLM stats:")
    for key, value in pipellm.stats().items():
        if value:
            print(f"  {key:<24} {value}")


def with_runtime(mode):
    machine = build_machine(mode)
    return machine, CudaContext(machine)


if __name__ == "__main__":
    main()
