#!/usr/bin/env python3
"""Fault injection and graceful degradation, end to end.

Builds one PipeLLM machine with a seeded fault injector attacking the
whole stack at once — forced mispredictions, GCM tag corruption, IV
desynchronization, PCIe jitter/drops, and encryption-engine stalls —
and streams a weight-swap loop through the storm. Shows:

1. every authentication failure recovered by resync + re-encryption
   under fresh IVs (never a reused one — an attached IV audit raises
   on any repeat);
2. the runtime degrading to non-speculative in-order encryption when
   the miss rate crosses the threshold, then probing its way back to
   speculation once the storm window closes;
3. the degradation table the full campaign sweeps
   (``python -m repro faults``).

Run:  python examples/fault_injection.py
"""

from repro import CcMode, PipeLLMRuntime, build_machine
from repro.bench import fault_campaign
from repro.cluster.tenant import ClusterIvAudit
from repro.faults import FaultInjector, FaultPlan
from repro.hw import MB

LAYER_BYTES = 64 * MB
LAYERS = 24
ITERATIONS = 10


def storm_demo():
    # A storm confined to a window: 30% forced mispredictions, 7.5%
    # tag corruption and IV desync, plus PCIe and engine noise.
    plan = FaultPlan(
        name="demo-storm",
        start=0.05, stop=0.60,
        mispredict_rate=0.30,
        tag_corrupt_rate=0.075,
        iv_desync_rate=0.075,
        pcie_jitter_rate=0.05, pcie_drop_rate=0.01,
        engine_stall_rate=0.02,
    )
    injector = FaultInjector(plan, seed=7)
    machine = build_machine(
        CcMode.ENABLED, enc_threads=8, dec_threads=2, faults=injector
    )
    runtime = PipeLLMRuntime(machine)
    runtime.hint_weight_chunk_size(LAYER_BYTES)

    # The audit sees every IV both endpoints ever consume and raises
    # on any (key, IV) repeat — recovery must always burn fresh IVs.
    audit = ClusterIvAudit()
    machine.cpu_endpoint.attach_audit(audit)
    machine.gpu.endpoint.attach_audit(audit)

    layers = [
        machine.host_memory.allocate(LAYER_BYTES, f"layer.{i}", f"weights-{i}".encode())
        for i in range(LAYERS)
    ]

    def app(sim):
        for _ in range(ITERATIONS):
            for layer in layers:
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(layer.addr))
                yield handle.complete

    machine.sim.process(app(machine.sim))
    machine.sim.run()

    stats = runtime.stats()
    print("injected faults:")
    for action, count in sorted(injector.counts.items()):
        print(f"  {action:<12} {count}")
    print("recovery actions:")
    for action, count in sorted(injector.recoveries.items()):
        print(f"  {action:<15} {count}")
    print(f"auth failures seen by the GPU : {machine.gpu.auth_failures}")
    print(f"  ... all recovered, requests completed: "
          f"{int(stats['swap_requests'])} swaps, "
          f"{int(stats['auth_recoveries'])} re-encrypted deliveries")
    print("degradation controller transitions:")
    for t, prev, mode in runtime.fault_controller.transitions:
        print(f"  {t * 1e3:9.3f} ms  {prev} -> {mode}")
    print(f"final mode: {runtime.fault_controller.mode.value} "
          f"(degraded for {stats['degraded_seconds'] * 1e3:.1f} ms)")
    print(f"IV audit: {audit.observed} IVs over {audit.keys_seen()} lanes, "
          "zero reuse")

    # Functional proof: every layer's plaintext landed bit-exact
    # despite the corruption along the way.
    for layer in layers:
        chunk = machine.host_memory.chunk_at(layer.addr)
        assert machine.gpu._contents[chunk.tag] == bytes(chunk.payload)
    print("every layer decrypted bit-exact on the GPU\n")


def main():
    print("=== storm demo: one machine through a fault window ===\n")
    storm_demo()
    print("=== degradation table (quick campaign) ===\n")
    print(fault_campaign("quick").render())


if __name__ == "__main__":
    main()
