#!/usr/bin/env python3
"""LoRA fine-tuning with DeepSpeed-style offloading (case study 3).

Fine-tuning OPT-30B streams offloaded base-model layers forward and
backward every step (the repetitive pattern with period 2·L), while
the optimizer rewrites the small LoRA adapters on the CPU each step —
exercising PipeLLM's write-fault invalidation: ciphertext staged from
the adapters goes stale the moment the optimizer runs.

Run:  python examples/finetune_peft_lora.py
"""

from repro import CcMode, CudaContext, OPT_30B, PipeLLMRuntime, build_machine
from repro.serving import PeftConfig, PeftEngine
from repro.sim import SeededRng
from repro.workloads import ultrachat_batches

STEPS = 4
BATCH_SIZE = 12
#: Layers kept on the GPU; the rest stream per step. Chosen to match
#: the paper's memory pressure (≈36 % CC drop on OPT-30B).
RESIDENT_LAYERS = 36


def run(label, machine, runtime):
    batches = ultrachat_batches(STEPS, BATCH_SIZE, SeededRng(7))
    config = PeftConfig(OPT_30B, batches, resident_layers=RESIDENT_LAYERS)
    engine = PeftEngine(machine, runtime, config)
    result = engine.run()
    assert machine.gpu.auth_failures == 0
    print(
        f"{label:<22} {result.throughput:8.0f} tok/s   "
        f"({result.offloaded_layers} layers streamed per pass)"
    )
    return result


def main():
    print(f"PEFT LoRA fine-tuning of OPT-30B, ultrachat-like batches of {BATCH_SIZE}:\n")

    machine = build_machine(CcMode.DISABLED)
    base = run("w/o CC", machine, CudaContext(machine))

    machine = build_machine(CcMode.ENABLED)
    cc = run("CC (NVIDIA default)", machine, CudaContext(machine))

    machine = build_machine(CcMode.ENABLED, enc_threads=4, dec_threads=1)
    runtime = PipeLLMRuntime(machine)
    pipe = run("CC + PipeLLM", machine, runtime)

    print()
    print(f"CC throughput drop: {100 * (1 - cc.throughput / base.throughput):5.1f} %"
          "   (paper: 36.2 %)")
    print(f"PipeLLM overhead:   {100 * (1 - pipe.throughput / base.throughput):5.1f} %"
          "   (paper: < 19.6 %)")
    print()
    # The adapters were rewritten every step — the GPU must hold the
    # LAST version, proving stale speculative ciphertext never shipped.
    final = machine.gpu.read_plaintext("lora.adapters")
    print(f"GPU-side adapters after step {STEPS - 1}: {final!r}")
    assert final == f"adapters-b{STEPS - 1}".encode()


if __name__ == "__main__":
    main()
