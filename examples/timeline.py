#!/usr/bin/env python3
"""Regenerating the paper's §4.1 pipelining illustration from a run.

The paper sketches, by hand, how NVIDIA CC serializes encrypt →
transfer → compute while PipeLLM overlaps them. This example runs the
same three-iteration swap loop on both systems with span tracing
enabled and renders the actual simulated timelines as ASCII Gantt
charts — lane `enc[0]` is the encryption thread, `pcie.h2d.cc` the
DMA path, `gpu` the compute engine.

For whole experiments the unified telemetry subsystem supersedes this
hand-rolled capture: ``python -m repro trace <experiment>`` (or
``examples/trace_export.py``) records every machine through
:mod:`repro.telemetry` and exports Chrome-trace / JSON / CSV / ASCII
views of the same lanes, plus speculation state and per-request
lifecycle records.

Run:  python examples/timeline.py
"""

from repro import CcMode, CudaContext, PipeLLMRuntime, build_machine
from repro.hw import MB
from repro.sim import render_gantt

LAYER = 128 * MB
ITERATIONS = 4


def run(label, machine, runtime):
    machine.sim.tracer.enabled = True
    layer = machine.host_memory.allocate(LAYER, "layer.0", b"weights")
    runtime.hint_weight_chunk_size(LAYER)

    def app(sim):
        for _ in range(ITERATIONS):
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(layer.addr))
            yield handle.api_done
            yield handle.complete
            yield machine.gpu.compute(5e12, 1e9, layers=1)  # ~12 ms kernel

    machine.sim.process(app(machine.sim))
    machine.run()
    assert machine.gpu.auth_failures == 0

    lanes = [
        lane for lane in ("enc[0]", "enc[1]", "pcie.h2d.cc", "pcie.h2d", "gpu")
        if lane in machine.sim.tracer.lanes()
    ]
    print(f"--- {label} " + "-" * (60 - len(label)))
    print(render_gantt(machine.sim.tracer, width=70, lanes=lanes))
    print(f"total: {machine.sim.now * 1e3:.1f} ms  "
          f"(gpu busy {machine.sim.tracer.busy_time('gpu') * 1e3:.1f} ms)\n")
    return machine.sim.now


def main():
    machine = build_machine(CcMode.ENABLED)
    cc = run("CC: encryption serialized on the critical path",
             machine, CudaContext(machine))

    machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=1)
    pipe = run("PipeLLM: encryption pipelined off the critical path",
               machine, PipeLLMRuntime(machine))

    print(f"Same work, {cc / pipe:.1f}x faster once encryption overlaps "
          "transfer and compute — the paper's §4.1 picture, measured.")


if __name__ == "__main__":
    main()
