#!/usr/bin/env python3
"""Extending PipeLLM with a new swap pattern (§5.1's extension point).

The paper: "PipeLLM's predictor is general and can easily extend to
other patterns. To implement a new pattern, one needs to recognize the
pattern from the history and write a prediction function given the
current swapping states."

This example serves a (hypothetical) system that swaps chunks in a
*strided* order — every second chunk, then the others — which none of
the built-in hypotheses (repetitive/FIFO/LIFO/Markov over a churning
pool) nails from the pool alone. We write a ``StrideDetector``,
register it, and watch it win the hypothesis race.

Run:  python examples/custom_pattern.py
"""

from repro import CcMode, PipeLLMRuntime, build_machine
from repro.core import SwapClass
from repro.core.patterns import PatternDetector
from repro.hw import MB, MemoryChunk

CHUNK = 8 * MB
CHUNKS = 8


class StrideDetector(PatternDetector):
    """Predicts swap-ins at a fixed address stride.

    Recognition: fit a stride to the last few swap-ins (wrapping over
    the observed address set); prediction: continue it.
    """

    name = "stride"

    def __init__(self):
        self._history = []
        self._known = []
        self._hits = 0
        self._graded = 0

    # -- PatternDetector interface -------------------------------------

    def observe_swap_out(self, key):
        if key not in self._known:
            self._known.append(key)

    def observe_swap_in(self, key):
        prediction = self.predict(1)
        if prediction:
            self._graded += 1
            if prediction[0] == key:
                self._hits += 1
        self._history.append(key)

    @property
    def score(self):
        return self._hits / self._graded if self._graded else 0.0

    def _stride(self):
        if len(self._history) < 3 or len(self._known) < 2:
            return None
        addrs = sorted(k[0] for k in self._known)
        index = {addr: i for i, addr in enumerate(addrs)}
        positions = [index.get(k[0]) for k in self._history[-3:]]
        if None in positions:
            return None
        step1 = (positions[1] - positions[0]) % len(addrs)
        step2 = (positions[2] - positions[1]) % len(addrs)
        return step1 if step1 == step2 and step1 != 0 else None

    def predict(self, count):
        stride = self._stride()
        if stride is None or not self._history:
            return []
        addrs = sorted(k[0] for k in self._known)
        size = self._known[0][1]
        index = {addr: i for i, addr in enumerate(addrs)}
        position = index.get(self._history[-1][0])
        if position is None:
            return []
        out = []
        for _ in range(count):
            position = (position + stride) % len(addrs)
            out.append((addrs[position], size))
        return out


def build_and_run(register_stride):
    machine = build_machine(CcMode.ENABLED, enc_threads=4, dec_threads=2)
    runtime = PipeLLMRuntime(machine)
    if register_stride:
        # The one-line extension point: add the hypothesis to the race.
        runtime.predictor._detectors[SwapClass.KV_CACHE].append(StrideDetector())

    regions = []
    for i in range(CHUNKS):
        region = machine.host_memory.allocate(CHUNK, f"chunk.{i}", f"c{i}".encode())
        machine.gpu._contents[f"chunk.{i}"] = f"c{i}".encode()
        regions.append(region)

    # Strided access: 0, 3, 6, 1, 4, 7, 2, 5, 0, ... (stride 3 mod 8).
    order = [(3 * i) % CHUNKS for i in range(CHUNKS * 6)]

    def app(sim):
        # Make all chunks known via one swap-out pass.
        for region in regions:
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, CHUNK, b"", region.tag))
            yield handle.api_done
        yield runtime.synchronize()
        yield sim.timeout(0.1)
        # Strided swap-in traffic.
        for index in order:
            region = regions[index]
            yield runtime.cpu_access(region.addr)
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
            yield handle.api_done
            yield runtime.synchronize()
            yield sim.timeout(1e-3)

    machine.sim.process(app(machine.sim))
    machine.run()
    assert machine.gpu.auth_failures == 0
    return runtime


def main():
    baseline = build_and_run(register_stride=False)
    extended = build_and_run(register_stride=True)

    print("hypothesis scores after the strided workload (with stride):")
    for name, score in sorted(extended.predictor.scores().items()):
        if name.startswith("kv_cache"):
            print(f"  {name:<22} {score:.2f}")

    base_stats = baseline.stats()
    ext_stats = extended.stats()
    print(f"\nmisses without StrideDetector: {base_stats['misses']:.0f} "
          f"of {base_stats['swap_requests']:.0f}")
    print(f"misses with    StrideDetector: {ext_stats['misses']:.0f} "
          f"of {ext_stats['swap_requests']:.0f}")
    print("\nThe built-in repetitive hypothesis eventually learns any "
          "periodic order, but it needs a full period of history; the "
          "stride hypothesis locks on after three observations, so the "
          "cold-start misses shrink.")
    assert extended.predictor.scores()["kv_cache.stride"] > 0.95
    assert ext_stats["misses"] <= base_stats["misses"]


if __name__ == "__main__":
    main()
