#!/usr/bin/env python3
"""Why swap data cannot simply be re-sent: the replay-attack demo (§8.2).

The paper discusses an obvious "optimization": swap data is read-only
on the CPU, so why not keep the encrypted copy and re-send it instead
of re-encrypting? Answer: the incrementing-IV AES-GCM channel exists
precisely to kill replay and reordering, and this demo shows each
attack failing against the functional channel model — and then shows
PipeLLM doing the job *properly*, with a fresh IV per transfer, at
full speed.

Run:  python examples/attack_replay.py
"""

from repro import CcMode, PipeLLMRuntime, build_machine
from repro.crypto import AuthenticationError, EncryptedMessage, SecureSession
from repro.hw import MB, MemoryChunk


def attack_demos():
    cpu, gpu = SecureSession(key=bytes(range(16))).endpoints()

    print("1. Replay: attacker captures a ciphertext and re-injects it.")
    message = cpu.encrypt_next(b"proprietary-fine-tuned-weights")
    gpu.decrypt_next(message)  # legitimate delivery
    try:
        gpu.decrypt_next(message)
        raise SystemExit("REPLAY SUCCEEDED — this must never print")
    except AuthenticationError:
        print("   -> rejected (the GPU's IV advanced; the old tag cannot verify)\n")

    print("2. Reorder: attacker delivers transfer #2 before transfer #1.")
    cpu2, gpu2 = SecureSession(key=bytes(range(16))).endpoints()
    first = cpu2.encrypt_next(b"first")
    second = cpu2.encrypt_next(b"second")
    try:
        gpu2.decrypt_next(second)
        raise SystemExit("REORDER SUCCEEDED — this must never print")
    except AuthenticationError:
        print("   -> rejected (tag binds ciphertext to its IV position)\n")

    print("3. Tamper: attacker flips one ciphertext bit in shared memory.")
    cpu3, gpu3 = SecureSession(key=bytes(range(16))).endpoints()
    msg = cpu3.encrypt_next(b"user prompt: quarterly numbers...")
    flipped = EncryptedMessage(
        bytes([msg.ciphertext[0] ^ 1]) + msg.ciphertext[1:],
        msg.tag, msg.sender_iv, msg.nbytes_logical,
    )
    try:
        gpu3.decrypt_next(flipped)
        raise SystemExit("TAMPER SUCCEEDED — this must never print")
    except AuthenticationError:
        print("   -> rejected (GHASH covers every ciphertext bit)\n")


def pipellm_does_it_right():
    print("4. PipeLLM: same chunk transferred twice, re-encrypted each time.")
    machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
    runtime = PipeLLMRuntime(machine)
    region = machine.host_memory.allocate(64 * MB, "kv.0", b"read-only swap data")
    ciphertexts = []

    def app():
        for _ in range(2):
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
            yield handle.complete
            # Peek at the last h2d record's functional ciphertext via
            # the session (illustrative only).
            ciphertexts.append(machine.cpu_endpoint.tx_iv.current)

    machine.sim.process(app())
    machine.run()
    assert machine.gpu.auth_failures == 0
    print("   -> both transfers authenticated; the channel consumed IVs "
          f"{ciphertexts[0] - 1} and {ciphertexts[1] - 1}")
    print("   -> identical plaintext, two different IVs, two different "
          "ciphertexts: nothing for an attacker to correlate or replay")


def main():
    attack_demos()
    pipellm_does_it_right()


if __name__ == "__main__":
    main()
