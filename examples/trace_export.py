#!/usr/bin/env python3
"""Capturing a unified telemetry trace of one experiment.

Everything the stack does — PCIe DMA, crypto-engine threads, GPU
kernels, speculation staging/validation, per-memcpy lifecycle — flows
through each machine's :class:`repro.telemetry.TelemetryHub`. This
example records the Fig. 2 microbenchmark, prints a per-machine
summary and an ASCII Gantt excerpt, and writes a Chrome ``trace_event``
JSON you can drop into https://ui.perfetto.dev (or chrome://tracing).

The same capture is available from the CLI:

    python -m repro trace fig2 --scale quick --out trace.json
    python -m repro trace fig8 --format ascii
    python -m repro trace fig10 --format csv

Run:  python examples/trace_export.py
"""

import json

from repro.bench import fig2_microbenchmark
from repro.telemetry import ascii_gantt, chrome_trace, recording

OUT = "trace.json"


def main():
    # Every Machine built inside the block gets an enabled hub.
    with recording() as session:
        fig2_microbenchmark("quick")

    doc = chrome_trace(session.hubs)
    with open(OUT, "w") as fh:
        json.dump(doc, fh)

    for machine in doc["otherData"]["machines"]:
        print(f"{machine['label']:<10} spans={machine['spans']:<6} "
              f"events={machine['events']:<6} requests={machine['requests']}")
    print(f"\n{len(doc['traceEvents'])} trace events -> {OUT} "
          "(load it in https://ui.perfetto.dev)\n")

    # The same event stream, as ASCII — here only the PCIe lanes of
    # the last machine (the CC baseline at the largest transfer size).
    print(ascii_gantt(session.hubs[-1:], width=70, lane_prefix="pcie"))


if __name__ == "__main__":
    main()
