"""§8.1 side-channel demonstrations.

The paper concedes that PipeLLM *introduces* side channels relative to
plain NVIDIA CC: an attacker observing the (encrypted) bus can count
NOP transfers, learning (1) that the LLM system is swapping and
(2) how often predictions fail. These tests demonstrate the channel
exists in the model — and that it leaks only what the paper says.
"""

import pytest

from repro.cc import CcMode, CudaContext, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB, MemoryChunk

KV = 4 * MB


def lifo_workload(machine, runtime, count=3):
    regions = []
    for i in range(count):
        region = machine.host_memory.allocate(KV, f"kv.{i}")
        machine.gpu._contents[f"kv.{i}"] = b"secret"
        regions.append(region)

    def app():
        for region in regions:
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", region.tag))
            yield handle.api_done
        yield runtime.synchronize()
        yield machine.sim.timeout(0.1)
        # Request only the deepest entry: forces NOP padding.
        high = max(runtime.pipeline.valid_entries, key=lambda e: e.iv)
        handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(high.chunk.addr))
        yield handle.api_done
        yield runtime.synchronize()

    machine.sim.process(app())
    machine.run()


class TestNopSideChannel:
    def test_attacker_counts_nops(self):
        machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        runtime = PipeLLMRuntime(machine)
        lifo_workload(machine, runtime)
        observed = machine.pcie.observed_nops()
        # The snooper's count agrees with the runtime's own NOP count:
        # this is exactly the leak §8.1 describes.
        assert observed == runtime.nops_sent
        assert observed >= 1

    def test_baseline_cc_emits_no_nops(self):
        machine = build_machine(CcMode.ENABLED)
        ctx = CudaContext(machine)
        region = machine.host_memory.allocate(KV, "w", b"x")

        def app():
            yield ctx.memcpy_h2d(region.chunk()).complete

        machine.sim.process(app())
        machine.run()
        assert machine.pcie.observed_nops() == 0

    def test_payload_sizes_visible_contents_not(self):
        machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        runtime = PipeLLMRuntime(machine)
        lifo_workload(machine, runtime)
        # The snooper sees transfer sizes (KV-sized and NOP-sized)...
        sizes = {record.nbytes for record in machine.pcie.bus_log}
        assert KV in sizes
        # ...but the log carries no payloads — and the channel payloads
        # themselves were ciphertext (verified by the auth invariant).
        assert machine.gpu.auth_failures == 0
        assert all(not hasattr(record, "payload") for record in machine.pcie.bus_log)

    def test_swap_activity_distinguishable(self):
        """Fewer mispredictions ⇒ fewer NOPs: the frequency profile of
        prediction failures is observable, as the paper warns."""
        # Perfect-order resume: no NOPs beyond the leeway.
        machine_good = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        runtime_good = PipeLLMRuntime(machine_good)
        regions = []
        for i in range(3):
            region = machine_good.host_memory.allocate(KV, f"kv.{i}")
            machine_good.gpu._contents[f"kv.{i}"] = b"s"
            regions.append(region)

        def app_good():
            for region in regions:
                handle = runtime_good.memcpy_d2h(
                    MemoryChunk(region.addr, KV, b"", region.tag)
                )
                yield handle.api_done
            yield runtime_good.synchronize()
            yield machine_good.sim.timeout(0.1)
            for region in reversed(regions):  # correct LIFO order
                handle = runtime_good.memcpy_h2d(
                    machine_good.host_memory.chunk_at(region.addr)
                )
                yield handle.api_done
            yield runtime_good.synchronize()

        machine_good.sim.process(app_good())
        machine_good.run()

        machine_bad = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        runtime_bad = PipeLLMRuntime(machine_bad)
        lifo_workload(machine_bad, runtime_bad)  # skips entries: NOPs

        assert machine_bad.pcie.observed_nops() > machine_good.pcie.observed_nops()
