"""The example scripts are part of the public surface: run the fast
ones end to end (each asserts its own correctness internally)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "CC overhead" in out
        assert "PipeLLM overhead" in out

    def test_attack_replay(self, capsys):
        load_example("attack_replay").main()
        out = capsys.readouterr().out
        assert out.count("rejected") == 3
        assert "SUCCEEDED" not in out

    def test_custom_pattern(self, capsys):
        load_example("custom_pattern").main()
        out = capsys.readouterr().out
        assert "stride" in out

    def test_finetune_example(self, capsys):
        load_example("finetune_peft_lora").main()
        out = capsys.readouterr().out
        assert "PipeLLM overhead" in out

    def test_offload_example(self, capsys):
        load_example("offload_flexgen_opt66b").main()
        out = capsys.readouterr().out
        assert "prediction success rate" in out

    def test_cluster_serving_example(self, capsys):
        load_example("cluster_serving").main()
        out = capsys.readouterr().out
        assert "Crash and failover" in out
        assert "0 tag failures" in out
        assert "AUTH FAILURE" not in out
