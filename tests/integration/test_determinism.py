"""Whole-system determinism: identical inputs, identical simulations.

Reproducibility of EXPERIMENTS.md rests on this property, so it gets
its own end-to-end tests across all three runtime systems.
"""

import pytest

from repro.bench import CC, WITHOUT_CC, pipellm, run_flexgen, run_vllm
from repro.models import OPT_30B, OPT_66B
from repro.workloads import ALPACA, SyntheticShape


class TestDeterminism:
    @pytest.mark.parametrize("system", [WITHOUT_CC, CC, pipellm(4, 2)],
                             ids=["w/o CC", "CC", "PipeLLM"])
    def test_flexgen_bitwise_repeatable(self, system):
        shape = SyntheticShape(32, 3)
        a, _ = run_flexgen(system, OPT_66B, shape, batch_size=8, n_requests=8)
        b, _ = run_flexgen(system, OPT_66B, shape, batch_size=8, n_requests=8)
        assert a.elapsed == b.elapsed
        assert a.throughput == b.throughput

    @pytest.mark.parametrize("system", [WITHOUT_CC, pipellm(1, 1)],
                             ids=["w/o CC", "PipeLLM"])
    def test_vllm_bitwise_repeatable(self, system):
        a, _ = run_vllm(system, OPT_30B, ALPACA, rate=4.0, parallel_n=2, duration=6.0)
        b, _ = run_vllm(system, OPT_30B, ALPACA, rate=4.0, parallel_n=2, duration=6.0)
        assert a.normalized_latencies == b.normalized_latencies
        assert a.swap_in_count == b.swap_in_count

    def test_pipellm_stats_repeatable(self):
        system = pipellm(4, 2)
        _, r1 = run_flexgen(system, OPT_66B, SyntheticShape(32, 3), 8, 8)
        _, r2 = run_flexgen(system, OPT_66B, SyntheticShape(32, 3), 8, 8)
        assert r1.stats() == r2.stats()
