"""Security-property tests (§8.1).

PipeLLM must preserve NVIDIA CC's confidentiality and integrity. The
functional crypto layer lets these properties be demonstrated rather
than asserted: replay, reorder, tamper and ciphertext-reuse attacks
all fail GCM authentication, and unvalidated speculative ciphertext
never reaches the (attacker-visible) shared memory path.
"""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.crypto import AuthenticationError, SecureSession
from repro.hw import MB, MemoryChunk

KV = 4 * MB


class TestChannelAttacks:
    """Attacks on the raw secure channel."""

    def setup_method(self):
        self.cpu, self.gpu = SecureSession(key=bytes(range(16))).endpoints()

    def test_replay_attack_fails(self):
        message = self.cpu.encrypt_next(b"model-weights")
        assert self.gpu.decrypt_next(message) == b"model-weights"
        with pytest.raises(AuthenticationError):
            self.gpu.decrypt_next(message)  # Attacker re-injects.

    def test_reorder_attack_fails(self):
        first = self.cpu.encrypt_next(b"first")
        second = self.cpu.encrypt_next(b"second")
        with pytest.raises(AuthenticationError):
            self.gpu.decrypt_next(second)

    def test_splice_attack_fails(self):
        """Mixing ciphertext and tag from different transfers fails."""
        a = self.cpu.encrypt_next(b"payload-a")
        b = self.cpu.encrypt_next(b"payload-b")
        from repro.crypto import EncryptedMessage

        frankenstein = EncryptedMessage(a.ciphertext, b.tag, a.sender_iv, a.nbytes_logical)
        with pytest.raises(AuthenticationError):
            self.gpu.decrypt_next(frankenstein)

    def test_bitflip_attack_fails(self):
        message = self.cpu.encrypt_next(b"sensitive")
        from repro.crypto import EncryptedMessage

        flipped = EncryptedMessage(
            bytes([message.ciphertext[0] ^ 0x80]) + message.ciphertext[1:],
            message.tag,
            message.sender_iv,
            message.nbytes_logical,
        )
        with pytest.raises(AuthenticationError):
            self.gpu.decrypt_next(flipped)

    def test_ciphertext_is_not_plaintext(self):
        message = self.cpu.encrypt_next(b"the-secret-weights!!")
        assert b"secret" not in message.ciphertext


class TestSpeculationSecrecy:
    """§6: speculative state must not weaken the threat model."""

    def make_runtime(self):
        machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        runtime = PipeLLMRuntime(machine, PipeLLMConfig(kv_depth=4))
        return machine, runtime

    def _stage_some(self, machine, runtime):
        regions = []
        for i in range(2):
            region = machine.host_memory.allocate(KV, f"kv.{i}")
            machine.gpu._contents[f"kv.{i}"] = f"secret-{i}".encode()
            regions.append(region)

        def out():
            for region in regions:
                handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", region.tag))
                yield handle.api_done
            yield runtime.synchronize()
            yield machine.sim.timeout(0.1)

        machine.sim.process(out())
        machine.run()
        return regions

    def test_staged_ciphertext_never_plaintext(self):
        machine, runtime = self.make_runtime()
        self._stage_some(machine, runtime)
        for entry in runtime.pipeline.entries:
            assert entry.chunk.payload not in (b"",)
            assert entry.message.ciphertext != entry.chunk.payload

    def test_mispredicted_ciphertext_never_shipped(self):
        """An entry invalidated before commit must never cross the
        channel: the GPU sees only authenticated, in-order traffic."""
        machine, runtime = self.make_runtime()
        regions = self._stage_some(machine, runtime)
        # Invalidate everything, then demand the data anyway.
        runtime.pipeline.relinquish()

        def app():
            for region in reversed(regions):
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                yield handle.api_done
            yield runtime.synchronize()

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        assert machine.gpu.read_plaintext("kv.0") == b"secret-0"

    def test_nops_carry_dummy_data(self):
        """§8.1: padding NOPs contain dummy data — nothing secret."""
        machine, runtime = self.make_runtime()
        self._stage_some(machine, runtime)
        high = max(runtime.pipeline.valid_entries, key=lambda e: e.iv)

        def app():
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(high.chunk.addr))
            yield handle.api_done
            yield runtime.synchronize()

        machine.sim.process(app())
        machine.run()
        assert runtime.nops_sent >= 1
        assert machine.gpu.auth_failures == 0


class TestIvReuseNeverHappens:
    """The cardinal GCM rule: no IV is ever consumed twice on a wire."""

    def test_wire_iv_uniqueness_under_stress(self):
        machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        runtime = PipeLLMRuntime(machine)
        regions = [
            machine.host_memory.allocate(KV, f"kv.{i}") for i in range(4)
        ]
        for i in range(4):
            machine.gpu._contents[f"kv.{i}"] = b"x"
        small = machine.host_memory.allocate(1024, "tok", b"t")

        def app():
            for region in regions:
                handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", region.tag))
                yield handle.api_done
            yield runtime.synchronize()
            yield machine.sim.timeout(0.05)
            # Interleave small transfers with LIFO swap-ins.
            for region in reversed(regions):
                yield runtime.memcpy_h2d(machine.host_memory.chunk_at(small.addr)).complete
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                yield handle.api_done
            yield runtime.synchronize()

        machine.sim.process(app())
        machine.run()
        # If any IV had been reused or skipped inconsistently, the GPU
        # copy engine would have failed authentication.
        assert machine.gpu.auth_failures == 0
        # Both sides agree on how many IVs the wire consumed.
        assert machine.cpu_endpoint.tx_iv.consumed == machine.gpu.endpoint.rx_iv.consumed
