"""Randomized stress testing of the PipeLLM runtime.

Hypothesis drives arbitrary interleavings of the operations a serving
system can perform — swap-ins, swap-outs, small transfers, in-place
writes, synchronizations, region frees — against a PipeLLM machine.
The invariants are global and unconditional:

* the GPU copy engine never sees an authentication failure (all IV
  bookkeeping is sound for *every* interleaving);
* the simulation always drains (no deadlock — every completion event
  fires);
* plaintext delivered to the GPU always equals the host plaintext at
  request time (stale speculative ciphertext never ships);
* both endpoints agree on consumed IV counts.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB, MemoryChunk

KV = 2 * MB

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("swap_out"), st.integers(0, 5)),
        st.tuples(st.just("swap_in"), st.integers(0, 5)),
        st.tuples(st.just("small"), st.integers(0, 2)),
        st.tuples(st.just("write"), st.integers(0, 5)),
        st.tuples(st.just("sync"), st.just(0)),
        st.tuples(st.just("wait"), st.integers(1, 50)),
        st.tuples(st.just("free"), st.integers(0, 5)),
    ),
    min_size=5,
    max_size=40,
)


class Driver:
    """Interprets one random op sequence against a fresh machine."""

    def __init__(self, ops, config):
        self.machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
        self.runtime = PipeLLMRuntime(self.machine, config)
        self.ops = ops
        self.versions = {}     # slot -> version counter
        self.regions = {}      # slot -> host region currently backing it
        self.handles = []
        self.delivered = []    # (tag, payload expected at request time)
        self.landed = []       # (tag, plaintext) in wire-landing order
        self.small = self.machine.host_memory.allocate(1024, "small", b"s")
        inner = self.machine.gpu.receive_ciphertext

        def receive(chunk, message):
            plaintext = inner(chunk, message)
            self.landed.append((chunk.tag, plaintext))
            return plaintext

        self.machine.gpu.receive_ciphertext = receive

    def payload(self, slot):
        return f"slot{slot}-v{self.versions.get(slot, 0)}".encode()

    def _ensure_region(self, slot):
        if slot not in self.regions:
            region = self.machine.host_memory.allocate(
                KV, f"slot{slot}", self.payload(slot)
            )
            self.regions[slot] = region
        return self.regions[slot]

    def run(self):
        machine, runtime = self.machine, self.runtime

        def app(sim):
            for op, arg in self.ops:
                if op == "swap_out":
                    region = self._ensure_region(arg)
                    tag = region.tag
                    machine.gpu._contents[tag] = self.payload(arg)
                    handle = runtime.memcpy_d2h(
                        MemoryChunk(region.addr, KV, self.payload(arg), tag)
                    )
                    self.handles.append(handle)
                    yield handle.api_done
                elif op == "swap_in":
                    if arg not in self.regions:
                        continue
                    region = self.regions[arg]
                    yield runtime.cpu_access(region.addr)
                    chunk = machine.host_memory.chunk_at(region.addr)
                    handle = runtime.memcpy_h2d(chunk)
                    self.handles.append(handle)
                    self.delivered.append((region.tag, chunk.payload))
                    yield handle.api_done
                elif op == "small":
                    handle = runtime.memcpy_h2d(
                        MemoryChunk(self.small.addr, 1024, b"s", "small")
                    )
                    self.handles.append(handle)
                    yield handle.api_done
                elif op == "write":
                    if arg not in self.regions:
                        continue
                    region = self.regions[arg]
                    yield runtime.cpu_access(region.addr)
                    self.versions[arg] = self.versions.get(arg, 0) + 1
                    machine.host_memory.write(region.addr, self.payload(arg))
                elif op == "sync":
                    yield runtime.synchronize()
                elif op == "wait":
                    yield sim.timeout(arg * 1e-3)
                elif op == "free":
                    region = self.regions.pop(arg, None)
                    if region is not None:
                        yield runtime.cpu_access(region.addr)
                        machine.host_memory.free(region)
            yield runtime.synchronize()

        proc = machine.sim.process(app(machine.sim))
        machine.run()
        return proc


@given(ops=op_strategy)
@settings(max_examples=40, deadline=None)
def test_random_interleavings_preserve_all_invariants(ops):
    driver = Driver(ops, PipeLLMConfig(kv_depth=3))
    proc = driver.run()

    machine, runtime = driver.machine, driver.runtime
    # No deadlock: the driver process ran to completion.
    assert proc.triggered and proc.ok
    # Crypto soundness for this interleaving.
    assert machine.gpu.auth_failures == 0
    # Every transfer's completion fired.
    assert all(h.complete.triggered for h in driver.handles)
    # IV ledger agreement between the endpoints (both directions).
    assert machine.cpu_endpoint.tx_iv.consumed == machine.gpu.endpoint.rx_iv.consumed
    assert machine.gpu.endpoint.tx_iv.consumed == machine.cpu_endpoint.rx_iv.consumed
    # Content integrity: every plaintext the copy engine committed
    # equals the host plaintext captured at request time. Compared
    # per tag — PipeLLM may re-order *different* requests on the wire
    # to reuse staged ciphertext (the fig10 mechanism), but same-tag
    # deliveries must land in request order with request-time bytes;
    # a later swap-out of the same tag legitimately overwrites device
    # contents, so the final GPU state is not the right observation
    # point.
    landed_by_tag, delivered_by_tag = {}, {}
    for tag, plaintext in driver.landed:
        if tag != "small":
            landed_by_tag.setdefault(tag, []).append(plaintext)
    for tag, plaintext in driver.delivered:
        delivered_by_tag.setdefault(tag, []).append(plaintext)
    assert landed_by_tag == delivered_by_tag


@given(ops=op_strategy)
@settings(max_examples=15, deadline=None)
def test_random_interleavings_with_sabotaged_predictor(ops):
    """Even with deliberately wrong prediction ORDER the invariants
    hold — mispredictions cost time, never correctness."""
    driver = Driver(ops, PipeLLMConfig(kv_depth=3, sabotage="reverse"))
    proc = driver.run()
    assert proc.triggered and proc.ok
    assert driver.machine.gpu.auth_failures == 0
    assert all(h.complete.triggered for h in driver.handles)
