"""Property fuzzing of the baseline CC channel itself.

Random mixes of H2D and D2H transfers (any sizes, any interleaving,
any thread counts) through the CC-enabled CudaContext must always
authenticate and always deliver the right bytes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc import CcMode, CudaContext, build_machine
from repro.hw import MemoryChunk

transfers = st.lists(
    st.tuples(
        st.sampled_from(["h2d", "d2h"]),
        st.integers(min_value=1, max_value=64 << 20),   # logical size
        st.binary(min_size=0, max_size=24),             # payload
    ),
    min_size=1,
    max_size=25,
)


@given(ops=transfers, enc_threads=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_cc_channel_delivers_everything(ops, enc_threads):
    machine = build_machine(CcMode.ENABLED, enc_threads=enc_threads, dec_threads=enc_threads)
    ctx = CudaContext(machine)
    expectations = []

    def app():
        for index, (direction, size, payload) in enumerate(ops):
            payload = payload or b"\x00"
            size = max(size, len(payload))
            tag = f"x{index}"
            if direction == "h2d":
                region = machine.host_memory.allocate(size, tag, payload)
                ctx.memcpy_h2d(region.chunk())
                expectations.append(("gpu", tag, payload))
            else:
                machine.gpu._contents[tag] = payload
                dest = machine.host_memory.allocate(size, f"dst{index}")
                ctx.memcpy_d2h(MemoryChunk(dest.addr, size, payload, tag))
                expectations.append(("host", dest.addr, payload))
        yield ctx.synchronize()

    machine.sim.process(app())
    machine.run()

    assert machine.gpu.auth_failures == 0
    for kind, key, payload in expectations:
        if kind == "gpu":
            assert machine.gpu.read_plaintext(key) == payload
        else:
            assert machine.host_memory.read(key) == payload
    # Both directions' ledgers agree.
    assert machine.cpu_endpoint.tx_iv.consumed == machine.gpu.endpoint.rx_iv.consumed
    assert machine.gpu.endpoint.tx_iv.consumed == machine.cpu_endpoint.rx_iv.consumed
