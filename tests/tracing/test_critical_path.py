"""Exact critical-path extraction: unit, property and end-to-end.

The headline acceptance invariant of the tracing subsystem is exactness:
for every traced request, ``critical_path_duration(segments)`` equals
the root span's measured duration *float-identically* — across the
serving front end, the cluster gateway (including crash/failover) and
tensor-parallel interconnect hops.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing import (
    ROOT_PARENT,
    CausalSpan,
    TraceCollector,
    check_closure,
    collecting,
    critical_path,
    critical_path_duration,
    extract_trace,
    fleet_attribution,
    stage_class,
)
from repro.tracing.critical_path import Segment


def _span(span_id, parent, stage, start, end, name=None):
    return CausalSpan(
        trace_id="t", span_id=span_id, parent_span_id=parent,
        name=name or stage, stage=stage, machine="m", start=start, end=end,
    )


# -- unit ----------------------------------------------------------------


def test_single_root_is_one_segment():
    segs = critical_path([_span(0, ROOT_PARENT, "request", 0.0, 2.0)])
    assert [(s.stage, s.start, s.end) for s in segs] == [("request", 0.0, 2.0)]
    assert critical_path_duration(segs) == 2.0


def test_gap_attributed_to_enclosing_span():
    # Child covers [0.5, 1.2] of a [0, 2] root: the root owns the
    # leading [0, 0.5] and trailing [1.2, 2.0] gaps.
    segs = critical_path([
        _span(0, ROOT_PARENT, "request", 0.0, 2.0),
        _span(1, 0, "service", 0.5, 1.2),
    ])
    assert [(s.stage, s.start, s.end) for s in segs] == [
        ("request", 0.0, 0.5),
        ("service", 0.5, 1.2),
        ("request", 1.2, 2.0),
    ]


def test_last_finisher_wins_overlap():
    # Two overlapping children: the one finishing last was the blocker
    # over the overlap; the earlier one only owns time before it.
    segs = critical_path([
        _span(0, ROOT_PARENT, "request", 0.0, 3.0),
        _span(1, 0, "encrypt", 0.0, 2.0),
        _span(2, 0, "pcie", 1.0, 3.0),
    ])
    assert [(s.stage, s.start, s.end) for s in segs] == [
        ("encrypt", 0.0, 1.0),
        ("pcie", 1.0, 3.0),
    ]


def test_open_children_skipped():
    segs = critical_path([
        _span(0, ROOT_PARENT, "request", 0.0, 1.0),
        _span(1, 0, "service", 0.2, math.nan),
    ])
    assert [(s.stage, s.start, s.end) for s in segs] == [("request", 0.0, 1.0)]


def test_child_overrunning_root_is_clamped():
    # Adoption can land a transfer span that finishes after its parent
    # closed; exactness must survive via clamping.
    segs = critical_path([
        _span(0, ROOT_PARENT, "request", 0.0, 1.0),
        _span(1, 0, "transfer", 0.5, 4.0),
    ])
    assert critical_path_duration(segs) == 1.0
    assert segs[-1].end == 1.0


def test_multiple_roots_rejected():
    with pytest.raises(ValueError):
        critical_path([
            _span(0, ROOT_PARENT, "request", 0.0, 1.0),
            _span(1, ROOT_PARENT, "request", 0.0, 1.0),
        ])


def test_open_root_rejected():
    with pytest.raises(ValueError):
        critical_path([_span(0, ROOT_PARENT, "request", 0.0, math.nan)])


def test_seam_detection():
    with pytest.raises(ValueError):
        critical_path_duration([
            Segment("a", 0.0, 1.0, "a", "m", 0),
            Segment("b", 1.5, 2.0, "b", "m", 1),
        ])


def test_check_closure_flags_everything():
    spans = [
        _span(0, ROOT_PARENT, "request", 0.0, 2.0),
        _span(1, 0, "queue", 0.0, math.nan),       # dangling
        _span(2, 99, "service", 0.5, 1.0),         # orphan parent
        _span(3, 0, "step", 1.0, 0.5),             # ends before start
    ]
    problems = check_closure(spans)
    assert len(problems) == 3
    assert any("dangling" in p for p in problems)
    assert any("orphan" in p for p in problems)
    assert any("ends before" in p for p in problems)
    assert check_closure([_span(0, ROOT_PARENT, "request", 0.0, 2.0)]) == []


def test_stage_classes_cover_the_taxonomy():
    assert stage_class("encrypt") == "aes"
    assert stage_class("decrypt") == "aes"
    assert stage_class("pcie") == "pcie"
    assert stage_class("interconnect") == "bridge"
    assert stage_class("step") == "compute"
    assert stage_class("queue") == "queueing"
    assert stage_class("hold") == "queueing"
    assert stage_class("whatever") == "other"


def test_fleet_attribution_verdict_and_broken_trace_exclusion():
    col = TraceCollector()
    root = col.start_trace("good", "request", "request", "gw", 0.0)
    col.add(root, "encrypt", "encrypt", "cpu", 0.0, 0.9)
    col.end(root, 1.0)
    # A broken trace must contribute problems but no time.
    col.start_trace("bad", "request", "request", "gw", 0.0)  # never closed
    fleet = fleet_attribution(col)
    assert fleet.n_traces == 1
    assert fleet.verdict == "encryption-bound"
    assert fleet.share("aes") == pytest.approx(0.9)
    assert any(p.startswith("bad:") for p in fleet.closure_problems)


# -- property: exactness over random well-formed trees -------------------


@st.composite
def span_trees(draw):
    """Random single-root span trees with arbitrary float times."""
    n = draw(st.integers(min_value=0, max_value=12))
    times = st.floats(
        min_value=0.0, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    )
    r0, r1 = sorted((draw(times), draw(times)))
    spans = [_span(0, ROOT_PARENT, "request", r0, r1)]
    for i in range(1, n + 1):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        a, b = sorted((draw(times), draw(times)))
        stage = draw(st.sampled_from(
            ["encrypt", "pcie", "interconnect", "step", "queue", "zzz"]
        ))
        spans.append(_span(i, parent, stage, a, b))
    return spans


@settings(max_examples=200, deadline=None)
@given(span_trees())
def test_exactness_property(spans):
    """For any well-formed tree: the chain is gapless and its duration
    equals the root duration exactly (float-identical, no epsilon)."""
    segs = critical_path(spans)
    duration = critical_path_duration(segs)  # raises on any seam
    root = spans[0]
    assert duration == root.end - root.start
    if segs:
        assert segs[0].start == root.start
        assert segs[-1].end == root.end


# -- end-to-end: exactness over full simulated runs ----------------------


def _assert_all_traces_exact(col, expect_min_traces):
    ids = col.trace_ids()
    assert len(ids) >= expect_min_traces
    assert col.open_spans() == []
    for trace_id in ids:
        path = extract_trace(col, trace_id)
        assert path.closure_problems == [], (trace_id, path.closure_problems)
        root = col.root(trace_id)
        assert path.duration == root.duration, trace_id
    return ids


def test_cluster_run_traces_are_exact():
    from repro.cluster import run_cluster
    from repro.core import ClusterConfig
    from repro.telemetry import recording

    with recording(), collecting() as col:
        result = run_cluster(
            ClusterConfig(replicas=2, seed=7), rate=3.0, duration=6.0
        )
    assert result.completed > 0
    _assert_all_traces_exact(col, expect_min_traces=result.completed)


def test_crash_failover_traces_stay_closed():
    """A replica crash mid-run must not leave one dangling span: the
    in-flight attempt closes with status "failover" and the retry's
    fresh attempt span carries the trace to completion."""
    from repro.cluster import run_cluster
    from repro.core import ClusterConfig
    from repro.telemetry import recording

    with recording(), collecting() as col:
        result = run_cluster(
            ClusterConfig(
                replicas=3, seed=11, fail_at=2.0, recover_after=3.0
            ),
            rate=4.0, duration=10.0,
        )
    assert result.failovers > 0, "scenario must actually exercise failover"
    ids = _assert_all_traces_exact(col, expect_min_traces=result.completed)
    failover_spans = [
        s for trace_id in ids for s in col.trace(trace_id)
        if s.status == "failover"
    ]
    assert failover_spans, "failover attempts must be visibly closed"


def test_serve_run_traces_are_exact():
    from repro.core import ClusterConfig
    from repro.serve import LoadSpec, run_serve
    from repro.telemetry import recording

    with recording(), collecting() as col:
        result = run_serve(
            ClusterConfig(replicas=2, seed=5),
            LoadSpec(rate=6.0, duration=5.0, seed=5),
        )
    assert result.completed > 0
    _assert_all_traces_exact(col, expect_min_traces=result.completed)
    # Serve roots are minted at frontend admission.
    assert any(t.startswith("serve.req-") for t in col.trace_ids())


def test_parallel_interconnect_hops_get_root_traces():
    """TP inter-GPU hops no request owns mint per-hop root traces whose
    critical paths are exact and bridge/pcie attributed."""
    from repro.cc import CcMode, build_machine
    from repro.models import OPT_13B
    from repro.parallel import TensorParallelEngine
    from repro.telemetry import recording

    with recording(), collecting() as col:
        machine = build_machine(
            CcMode.ENABLED, n_gpus=2, enc_threads=2, dec_threads=2
        )
        engine = TensorParallelEngine(machine, OPT_13B, batch=8)
        engine.run(output_tokens=1)
    ids = _assert_all_traces_exact(col, expect_min_traces=4)
    assert all(".hop-" in t for t in ids)
    fleet = fleet_attribution(col)
    assert fleet.n_traces == len(ids)
    assert fleet.total_s > 0
