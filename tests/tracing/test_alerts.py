"""AlertEngine: multi-window burn rules, anomaly count rules, wiring."""

from repro.sim import Simulator
from repro.telemetry.events import AlertEvent, RecoveryEvent
from repro.telemetry.hub import TelemetryHub
from repro.tracing import (
    AlertEngine,
    BurnRateRule,
    EventRule,
    default_event_rules,
)


def _burn_engine(**overrides):
    rule = BurnRateRule(
        name="slo-burn", signal="slo", budget=0.1,
        long_window=10.0, short_window=2.0, threshold=2.0,
        min_samples=4, cooldown=overrides.pop("cooldown", 0.0),
    )
    return AlertEngine(slo_rules=(rule,), **overrides)


def test_burn_fires_when_both_windows_exceed_threshold():
    eng = _burn_engine()
    # 4 failures in a row: long = short = 100% error / 10% budget = 10x.
    for i in range(4):
        eng.observe_slo(float(i) * 0.1, ok=False)
    assert len(eng.alerts) >= 1
    alert = eng.alerts[0]
    assert alert.rule == "slo-burn" and alert.burn_rate >= 2.0


def test_burn_silent_below_min_samples():
    eng = _burn_engine()
    for i in range(3):  # min_samples is 4
        eng.observe_slo(float(i) * 0.1, ok=False)
    assert eng.alerts == []


def test_burn_needs_recent_failures_too():
    """Long window polluted but short window clean → no page (the
    incident already healed)."""
    eng = _burn_engine()
    for i in range(6):
        eng.observe_slo(float(i) * 0.1, ok=False)  # old burst
    eng.alerts.clear()
    eng._last_fired.clear()
    # 3s later: short window (2s) holds only passing samples.
    for i in range(8):
        eng.observe_slo(3.5 + i * 0.1, ok=True)
    assert eng.alerts == []


def test_burn_silent_on_healthy_stream():
    eng = _burn_engine()
    for i in range(50):
        # ~5% errors, spread out (never at the head where one failure
        # dominates a sparsely populated window): burn < 2x budget.
        eng.observe_slo(i * 0.1, ok=(i % 20 != 10))
    assert eng.alerts == []


def test_burn_cooldown_rate_limits():
    eng = _burn_engine(cooldown=5.0)
    for i in range(40):
        eng.observe_slo(i * 0.1, ok=False)  # 4s of continuous failure
    assert len(eng.alerts) == 1


def test_event_rule_threshold_and_window():
    rule = EventRule("auth-anomaly", ("auth-recover",), window=1.0, threshold=3)
    eng = AlertEngine(event_rules=(rule,))
    emit = lambda t: eng.observe_event(
        RecoveryEvent(time=t, action="auth-recover", request_id=0)
    )
    emit(0.0)
    emit(2.0)  # first fell out of the window
    emit(2.5)
    assert eng.alerts == []
    emit(2.9)  # three within [1.9, 2.9]
    assert len(eng.alerts) == 1
    assert eng.alerts[0].rule == "auth-anomaly"


def test_default_event_rules_thresholds():
    rules = {r.name: r for r in default_event_rules(window=2.0)}
    assert rules["auth-anomaly"].threshold == 3
    assert rules["iv-anomaly"].threshold == 2
    assert rules["mode-flap"].threshold == 4
    assert set(rules["mode-flap"].actions) == {"degrade", "probe", "restore"}
    # Cooldown defaults to the window: one incident pages once.
    assert all(r.cooldown == 2.0 for r in rules.values())


def test_non_recovery_events_ignored():
    rule = EventRule("auth-anomaly", ("auth-recover",), window=1.0, threshold=1)
    eng = AlertEngine(event_rules=(rule,))
    eng.observe_event(AlertEvent(time=0.0, rule="x", severity="page",
                                 burn_rate=1.0, window_s=1.0))
    assert eng.alerts == []


def test_firing_emits_alert_event_and_counters_on_hub():
    sim = Simulator()
    hub = TelemetryHub(sim, label="m0")
    hub.enabled = True
    rule = EventRule("iv-anomaly", ("resync",), window=1.0, threshold=2)
    eng = AlertEngine(hub=hub, event_rules=(rule,))
    eng.watch(hub)
    for t in (0.1, 0.2):
        hub.emit(RecoveryEvent(time=t, action="resync", request_id=0))
    assert len(eng.alerts) == 1
    fired = [e for e in hub.events if isinstance(e, AlertEvent)]
    assert len(fired) == 1 and fired[0].rule == "iv-anomaly"
    assert hub.metrics.counter("alerts.fired").value == 1
    assert hub.metrics.counter("alerts.iv-anomaly").value == 1


def test_attach_session_chains_on_register():
    """Recorder + engine must compose on one session: attach_session
    chains rather than clobbers the previous on_register hook."""
    from repro.telemetry import recording
    from repro.tracing import FlightRecorder

    rule = EventRule("iv-anomaly", ("resync",), window=1.0, threshold=1)
    eng = AlertEngine(event_rules=(rule,))
    recorder = FlightRecorder(ring_size=8)
    with recording() as session:
        recorder.attach_session(session)
        eng.attach_session(session)
        sim = Simulator()
        hub = TelemetryHub(sim, label="late")
        hub.enabled = True
        session.register(hub)  # registered after both attached
        hub.emit(RecoveryEvent(time=0.5, action="resync", request_id=1))
    assert len(eng.alerts) == 1
    assert "late" in recorder.rings and len(recorder.rings["late"]) == 1
