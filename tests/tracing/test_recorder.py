"""FlightRecorder rings/triggers, post-mortem bundles, determinism."""

import io
import json
from pathlib import Path

import pytest

from repro.sim import Simulator
from repro.telemetry.events import (
    AlertEvent,
    ClusterEvent,
    RecoveryEvent,
    TransferEvent,
)
from repro.telemetry.hub import TelemetryHub
from repro.tracing import (
    AlertEngine,
    FlightRecorder,
    TraceCollector,
    postmortem_bundle,
    render_critical_path_table,
    write_postmortem,
)


def _hub(label="m0"):
    hub = TelemetryHub(Simulator(), label=label)
    hub.enabled = True
    return hub


def test_ring_is_bounded_per_machine():
    recorder = FlightRecorder(ring_size=4)
    hub = _hub()
    recorder.watch(hub)
    for i in range(10):
        hub.emit(TransferEvent(time=i * 0.1, direction="h2d", size=1, addr=i))
    ring = recorder.rings["m0"]
    assert len(ring) == 4
    assert ring[0].addr == 6  # oldest events evicted first


def test_ring_size_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(ring_size=0)


@pytest.mark.parametrize("event,reason", [
    (ClusterEvent(time=1.0, action="crash", replica=2), "crash:replica-2"),
    (RecoveryEvent(time=1.0, action="auth-recover", request_id=3),
     "auth-failure"),
    (AlertEvent(time=1.0, rule="slo-burn", severity="page",
                burn_rate=4.0, window_s=2.0), "alert:slo-burn"),
])
def test_snapshot_triggers(event, reason):
    recorder = FlightRecorder(ring_size=8)
    hub = _hub()
    recorder.watch(hub)
    hub.emit(TransferEvent(time=0.5, direction="h2d", size=1, addr=0))
    hub.emit(event)
    assert len(recorder.snapshots) == 1
    snap = recorder.snapshots[0]
    assert snap["reason"] == reason
    assert snap["time"] == 1.0
    # The ring contents as of the trigger, including the trigger itself.
    assert [row["time"] for row in snap["rings"]["m0"]] == [0.5, 1.0]


def test_benign_events_do_not_trigger():
    recorder = FlightRecorder(ring_size=8)
    hub = _hub()
    recorder.watch(hub)
    hub.emit(TransferEvent(time=0.1, direction="h2d", size=1, addr=0))
    hub.emit(RecoveryEvent(time=0.2, action="retry", request_id=0))
    hub.emit(ClusterEvent(time=0.3, action="admit", replica=0))
    assert recorder.snapshots == []


def test_snapshot_covers_every_watched_machine():
    recorder = FlightRecorder(ring_size=8)
    a, b = _hub("a"), _hub("b")
    recorder.watch(a)
    recorder.watch(b)
    b.emit(TransferEvent(time=0.1, direction="d2h", size=1, addr=0))
    a.emit(ClusterEvent(time=0.2, action="crash", replica=0))
    snap = recorder.snapshots[0]
    assert sorted(snap["rings"]) == ["a", "b"]
    assert len(snap["rings"]["b"]) == 1


def test_bundle_schema_and_sections():
    col = TraceCollector()
    root = col.start_trace("t-1", "request", "request", "gw", 0.0)
    col.add(root, "encrypt", "encrypt", "cpu", 0.0, 0.6)
    col.end(root, 1.0)
    recorder = FlightRecorder(ring_size=4)
    hub = _hub()
    recorder.watch(hub)
    hub.emit(ClusterEvent(time=0.9, action="crash", replica=0))
    engine = AlertEngine()
    engine._fire("slo-burn", "page", 0.9, 4.0, 2.0, "test")
    bundle = postmortem_bundle(
        recorder=recorder, collector=col, alerts=engine, meta={"seed": 7}
    )
    assert bundle["schema"] == "repro.postmortem/v1"
    assert bundle["meta"] == {"seed": 7}
    assert len(bundle["snapshots"]) == 1
    assert bundle["alerts"][0]["rule"] == "slo-burn"
    assert bundle["traces"][0]["trace_id"] == "t-1"
    assert bundle["fleet"]["verdict"] == "encryption-bound"
    assert bundle["closure"] == {"traces_checked": 1, "problems": []}
    json.dumps(bundle)  # must be JSON-serializable as-is


def test_empty_bundle_still_a_bundle():
    bundle = postmortem_bundle()
    assert bundle["schema"] == "repro.postmortem/v1"
    assert bundle["snapshots"] == [] and bundle["traces"] == []
    assert bundle["closure"]["traces_checked"] == 0


def test_bundle_reports_closure_problems():
    col = TraceCollector()
    col.start_trace("t-1", "request", "request", "gw", 0.0)  # dangling
    bundle = postmortem_bundle(collector=col)
    assert bundle["closure"]["traces_checked"] == 1
    assert any("dangling" in p for p in bundle["closure"]["problems"])


def test_render_table_marks_broken_traces():
    col = TraceCollector()
    root = col.start_trace("ok-trace", "request", "request", "gw", 0.0)
    col.end(root, 1.0)
    col.start_trace("bad-trace", "request", "request", "gw", 0.0)
    table = render_critical_path_table(col)
    assert "ok-trace" in table
    assert "BROKEN" in table
    assert render_critical_path_table(TraceCollector()).endswith(
        "(no traces collected)"
    )


def test_write_postmortem_files(tmp_path):
    col = TraceCollector()
    root = col.start_trace("t-1", "request", "request", "gw", 0.0)
    col.end(root, 1.0)
    written = write_postmortem(
        tmp_path, postmortem_bundle(collector=col), hubs=[_hub()],
        collector=col,
    )
    assert sorted(written) == ["critical_paths", "postmortem", "trace"]
    doc = json.loads(Path(written["postmortem"]).read_text())
    assert doc["schema"] == "repro.postmortem/v1"
    trace_doc = json.loads(Path(written["trace"]).read_text())
    assert "traceEvents" in trace_doc


def test_cli_postmortem_byte_identical_under_one_seed(tmp_path):
    """The acceptance check: two `repro postmortem` runs at one seed
    write byte-identical bundles, traces and tables."""
    from repro import cli

    dirs = [tmp_path / "a", tmp_path / "b"]
    for outdir in dirs:
        code = cli.main(
            [
                "postmortem", "--out", str(outdir), "--seed", "7",
                "--rate", "10", "--duration", "3", "--fail-at", "1.0",
            ],
            out=io.StringIO(),
        )
        assert code == 0, "closure problems must not appear"
    for name in ("postmortem.json", "trace.json", "critical_paths.txt"):
        a = (dirs[0] / name).read_bytes()
        b = (dirs[1] / name).read_bytes()
        assert a == b, f"{name} differs between identical-seed runs"
    bundle = json.loads((dirs[0] / "postmortem.json").read_text())
    # The scripted scenario crashes replica 0: the crash snapshot and
    # closed traces must be present.
    assert any(
        s["reason"].startswith("crash:") for s in bundle["snapshots"]
    )
    assert bundle["closure"]["problems"] == []
    assert bundle["closure"]["traces_checked"] > 0
