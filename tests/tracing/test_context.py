"""TraceContext / TraceCollector span-lifecycle semantics."""

import pytest

from repro.tracing import (
    ROOT_PARENT,
    TraceCollector,
    TraceContext,
    active_collector,
    collecting,
)


def test_start_trace_mints_root():
    col = TraceCollector()
    ctx = col.start_trace("t-1", "request", "request", "gateway", 0.0)
    assert ctx == TraceContext("t-1", 0, ROOT_PARENT)
    root = col.root("t-1")
    assert root is not None and root.open
    col.end(ctx, 2.0)
    assert not root.open and root.duration == 2.0
    assert col.trace_ids() == ["t-1"]


def test_begin_nests_under_parent_with_sequential_span_ids():
    col = TraceCollector()
    root = col.start_trace("t-1", "request", "request", "gw", 0.0)
    a = col.begin(root, "queue", "queue", "gw", 0.0)
    b = col.begin(root, "service", "service", "replica-0", 0.5)
    assert (a.trace_id, a.span_id, a.parent_span_id) == ("t-1", 1, 0)
    assert (b.trace_id, b.span_id, b.parent_span_id) == ("t-1", 2, 0)
    grandchild = col.begin(b, "step", "compute", "replica-0", 0.6)
    assert grandchild.parent_span_id == b.span_id


def test_root_requires_trace_id():
    col = TraceCollector()
    with pytest.raises(ValueError):
        col.begin(None, "request", "request", "gw", 0.0)


def test_duplicate_trace_id_rejected():
    col = TraceCollector()
    col.start_trace("t-1", "request", "request", "gw", 0.0)
    with pytest.raises(ValueError):
        col.start_trace("t-1", "request", "request", "gw", 1.0)


def test_begin_under_unknown_trace_rejected():
    col = TraceCollector()
    ghost = TraceContext("nope", 0)
    with pytest.raises(ValueError):
        col.begin(ghost, "queue", "queue", "gw", 0.0)


def test_end_unknown_span_raises_keyerror():
    col = TraceCollector()
    col.start_trace("t-1", "request", "request", "gw", 0.0)
    with pytest.raises(KeyError):
        col.end(TraceContext("t-1", 99), 1.0)


def test_double_end_rejected():
    col = TraceCollector()
    ctx = col.start_trace("t-1", "request", "request", "gw", 0.0)
    col.end(ctx, 1.0)
    with pytest.raises(ValueError):
        col.end(ctx, 2.0)


def test_add_records_closed_interval():
    col = TraceCollector()
    root = col.start_trace("t-1", "request", "request", "gw", 0.0)
    col.add(root, "encrypt", "encrypt", "cpu", 0.1, 0.4, status="ok")
    (span,) = [s for s in col.spans if s.name == "encrypt"]
    assert not span.open
    assert span.start == 0.1 and span.end == 0.4


def test_open_spans_tracks_dangling():
    col = TraceCollector()
    root = col.start_trace("t-1", "request", "request", "gw", 0.0)
    child = col.begin(root, "queue", "queue", "gw", 0.0)
    assert len(col.open_spans()) == 2
    col.end(child, 1.0)
    col.end(root, 1.0)
    assert col.open_spans() == []


def test_collecting_stack_nesting():
    assert active_collector() is None
    with collecting() as outer:
        assert active_collector() is outer
        inner_col = TraceCollector()
        with collecting(inner_col):
            assert active_collector() is inner_col
        assert active_collector() is outer
    assert active_collector() is None


def test_adopt_record_materializes_stage_children():
    """A completed hub record with a bound trace becomes a transfer
    span whose children are the record's measured stage intervals."""
    from repro.telemetry.hub import RequestRecord

    col = TraceCollector()
    root = col.start_trace("t-1", "request", "request", "gw", 0.0)
    record = RequestRecord(
        request_id=1, direction="h2d", addr=0, size=4096, submit_time=0.0
    )
    record.trace = root
    record.mark_stage("encrypt", 0.0, 0.3)
    record.mark_stage("pcie", 0.3, 0.9)
    record.complete_time = 0.9
    xfer = col.adopt_record(record, machine="m0")
    assert xfer is not None
    spans = col.trace("t-1")
    stages = [(s.stage, s.start, s.end) for s in spans if s.parent_span_id == xfer.span_id]
    assert stages == [("encrypt", 0.0, 0.3), ("pcie", 0.3, 0.9)]
    transfer = col._by_key[("t-1", xfer.span_id)]
    assert transfer.stage == "transfer" and transfer.end == 0.9


def test_adopt_record_without_trace_is_noop():
    from repro.telemetry.hub import RequestRecord

    col = TraceCollector()
    record = RequestRecord(
        request_id=1, direction="h2d", addr=0, size=4096, submit_time=0.0
    )
    record.complete_time = 1.0
    assert col.adopt_record(record) is None
    assert len(col) == 0
