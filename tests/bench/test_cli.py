"""CLI tests (``python -m repro``)."""

import io

import pytest

from repro.cli import EXPERIMENTS, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_every_experiment(self):
        code, text = run_cli("list")
        assert code == 0
        for name in EXPERIMENTS:
            assert name in text

    def test_registry_covers_all_paper_figures(self):
        for figure in ("fig2", "fig3a", "fig3b", "fig3c", "fig7", "fig8", "fig9", "fig10"):
            assert figure in EXPERIMENTS


class TestSystems:
    def test_describes_systems(self):
        code, text = run_cli("systems")
        assert code == 0
        for name in ("w/o CC", "CC-4t", "PipeLLM-0", "TEE-I/O"):
            assert name in text


class TestRun:
    def test_runs_fig2(self):
        code, text = run_cli("run", "fig2")
        assert code == 0
        assert "32MB" in text
        assert "throughput_gbps" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "fig99")

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "fig2", "--scale", "huge")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli()


class TestBenchCommand:
    def test_bench_writes_artifact_and_self_compares(self, tmp_path):
        first = tmp_path / "BENCH_0.json"
        code, text = run_cli(
            "bench", "--suite", "smoke", "--out", str(first),
            "--dir", str(tmp_path),
        )
        assert code == 0
        assert first.exists()
        assert "verdicts: cc=encryption-bound" in text

        code, text = run_cli(
            "bench", "--suite", "smoke", "--dir", str(tmp_path), "--compare",
        )
        assert code == 0
        assert (tmp_path / "BENCH_1.json").exists()
        assert "0 regressions" in text

    def test_bench_candidate_compare_gates(self, tmp_path):
        import json

        code, _ = run_cli(
            "bench", "--suite", "smoke",
            "--out", str(tmp_path / "BENCH_0.json"), "--dir", str(tmp_path),
        )
        assert code == 0
        baseline = json.loads((tmp_path / "BENCH_0.json").read_text())
        baseline["key_metrics"]["pipellm_hit_rate"]["value"] *= 0.5
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(baseline))

        code, text = run_cli(
            "bench", "--candidate", str(worse), "--dir", str(tmp_path),
            "--compare", str(tmp_path / "BENCH_0.json"),
        )
        assert code == 1
        assert "pipellm_hit_rate" in text

        code, _ = run_cli(
            "bench", "--candidate", str(worse), "--dir", str(tmp_path),
            "--compare", str(tmp_path / "BENCH_0.json"), "--warn-only",
        )
        assert code == 0


class TestDashCommand:
    def test_dash_json_summary(self):
        import json

        code, text = run_cli(
            "dash", "--json", "--requests", "4", "--interval-ms", "200",
        )
        assert code == 0
        summary = json.loads(text)
        assert summary["system"] == "PipeLLM"
        assert summary["verdict"] == "pcie-bound"


class TestServeCommand:
    def test_serve_registered_as_experiment(self):
        assert "serve" in EXPERIMENTS

    def test_single_run_summary(self):
        code, text = run_cli("serve", "--rate", "8", "--duration", "2")
        assert code == 0
        assert "admission=slo" in text
        assert "SLO attainment" in text
        assert "TTFT p50 / p99" in text

    def test_single_run_json_ledger_closes(self):
        import json

        code, text = run_cli("serve", "--rate", "12", "--duration", "2", "--json")
        assert code == 0
        doc = json.loads(text)
        assert doc["completed"] + doc["shed"] == doc["offered"]
        assert doc["system"] == "pipellm"
        assert doc["trace"] == "sharegpt-serve"

    def test_trace_and_admission_flags(self):
        import json

        code, text = run_cli(
            "serve", "--rate", "8", "--duration", "2",
            "--trace", "alpaca", "--admission", "fifo", "--json",
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["trace"] == "alpaca-serve"
        assert doc["admission"] == "fifo"


class TestTraceAttrib:
    def test_waterfall_for_request(self):
        code, text = run_cli("trace", "fig2", "--attrib", "0")
        assert code == 0
        assert "critical-path profile" in text
        assert "request 0" in text
        assert "= wire latency" in text

    def test_profiles_only_when_negative(self):
        code, text = run_cli("trace", "fig2", "--attrib", "-1")
        assert code == 0
        assert "critical-path profile" in text
        assert "request " not in text

    def test_missing_request_id_fails(self):
        code, text = run_cli("trace", "fig2", "--attrib", "999999")
        assert code == 1
        assert "not found" in text
