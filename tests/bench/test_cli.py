"""CLI tests (``python -m repro``)."""

import io

import pytest

from repro.cli import EXPERIMENTS, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_every_experiment(self):
        code, text = run_cli("list")
        assert code == 0
        for name in EXPERIMENTS:
            assert name in text

    def test_registry_covers_all_paper_figures(self):
        for figure in ("fig2", "fig3a", "fig3b", "fig3c", "fig7", "fig8", "fig9", "fig10"):
            assert figure in EXPERIMENTS


class TestSystems:
    def test_describes_systems(self):
        code, text = run_cli("systems")
        assert code == 0
        for name in ("w/o CC", "CC-4t", "PipeLLM-0", "TEE-I/O"):
            assert name in text


class TestRun:
    def test_runs_fig2(self):
        code, text = run_cli("run", "fig2")
        assert code == 0
        assert "32MB" in text
        assert "throughput_gbps" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "fig99")

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "fig2", "--scale", "huge")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli()
