"""TEE-I/O model tests (§8.3 extension)."""

import pytest

from repro.bench import TEEIO_LINE_RATE, teeio_params
from repro.hw import default_params


class TestParams:
    def test_single_tenant_gets_line_rate(self):
        params = teeio_params(1)
        assert params.enc_bandwidth_per_thread == TEEIO_LINE_RATE
        assert params.dec_bandwidth_per_thread == TEEIO_LINE_RATE

    def test_sharing_divides_rate(self):
        assert teeio_params(8).enc_bandwidth_per_thread == TEEIO_LINE_RATE / 8

    def test_hardware_control_plane_cheaper(self):
        assert teeio_params(1).cc_control_latency < default_params().cc_control_latency

    def test_other_params_untouched(self):
        params = teeio_params(4)
        base = default_params()
        assert params.pcie_bandwidth == base.pcie_bandwidth
        assert params.cc_dma_bandwidth == base.cc_dma_bandwidth
        assert params.gpu_memory_bytes == base.gpu_memory_bytes

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            teeio_params(0)

    def test_single_tenant_beats_cc_single_thread(self):
        """The hardware engine at line rate transfers a 1 GiB chunk
        roughly an order of magnitude faster than the software path."""
        hw = teeio_params(1)
        sw = default_params()
        size = 1 << 30
        assert hw.cc_occupancy(size) < sw.cc_occupancy(size) / 8
