"""Wall-clock lockdown for the fast path (slow; deselect with -m 'not slow').

Pins the headline property the fast-path PR claims: on a fixed
crypto-dominated workload, the fast profile is at least ``FLOOR``×
faster than the reference profile *while producing byte-identical
results*. The workload is deliberately small and deterministic so the
ratio — not the absolute time — is what matters; ratios are robust to
machine speed, which absolute budgets are not.

Also asserts the wall-clock hygiene lint stays clean: the simulation
tree itself still never reads wall time (these tests may — they live
outside ``src/``, which is all the lint scans).
"""

import time
from pathlib import Path

import pytest

from repro import fastpath
from repro.crypto import SecureSession, SessionHandshake
from repro.crypto.backend import available_backends
from repro.observatory import ALLOWED_WALL_CLOCK_FILES, wall_clock_call_sites

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Minimum fast/reference speedup on the crypto workload. The fast
#: profile's worst accelerated backend (numpy batching) clears this
#: with margin; hardware AES-GCM clears it by orders of magnitude.
FLOOR = 5.0

_ACCELERATED = [b for b in available_backends() if b != "reference"]


def crypto_workload():
    """Fixed bring-up + bulk-traffic workload; returns a transcript.

    Fresh seeds and keys every call so neither the DH memo nor the
    GCM-instance cache can satisfy a later profile's run from an
    earlier profile's work (cache keys include the exponent mode and
    backend, but the point of the measurement is the uncached path).
    """
    transcript = []
    profile = fastpath.config().name.encode()
    for i in range(6):
        tag = profile + b":%d" % i
        driver = SessionHandshake("driver", seed=b"wall-" + tag)
        gpu = SessionHandshake("gpu", seed=b"wall-" + tag)
        session = driver.complete(gpu.message())
        assert gpu.complete(driver.message()).key == session.key
        cpu, dev = session.endpoints()
        for j in range(40):
            payload = bytes([(i * 40 + j) % 256]) * 1600
            message = cpu.encrypt_next(payload, nbytes_logical=1 << 20)
            transcript.append((message.ciphertext, message.tag))
            assert dev.decrypt_next(message) == payload
    return transcript


def timed(profile):
    with fastpath.use_profile(profile):
        start = time.perf_counter()
        transcript = crypto_workload()
        return time.perf_counter() - start, transcript


@pytest.mark.slow
class TestSpeedupFloor:
    @pytest.mark.skipif(
        not _ACCELERATED,
        reason="no accelerated AES-GCM backend available; fast == reference",
    )
    def test_fast_profile_at_least_5x_on_crypto_workload(self):
        # Interleave and keep the best of three to shave scheduler noise.
        fast_times, ref_times = [], []
        for _ in range(3):
            ref_s, _ = timed("reference")
            fast_s, _ = timed("fast")
            ref_times.append(ref_s)
            fast_times.append(fast_s)
        speedup = min(ref_times) / min(fast_times)
        assert speedup >= FLOOR, (
            f"fast profile only {speedup:.1f}x faster than reference "
            f"(floor {FLOOR}x; backends: {available_backends()})"
        )

    def test_profiles_differ_only_in_speed_within_a_profile(self):
        # Same profile, same seeds ⇒ byte-identical transcripts; the
        # stopwatch is the only thing allowed to change run over run.
        _, first = timed("fast")
        _, second = timed("fast")
        assert first == second


@pytest.mark.slow
class TestWallClockHygiene:
    def test_simulation_tree_still_never_reads_wall_time(self):
        # The fast path added no wall-clock reads anywhere in src/.
        assert wall_clock_call_sites(SRC) == []

    def test_allowed_list_unchanged(self):
        assert set(ALLOWED_WALL_CLOCK_FILES) == {
            "cli.py", "observatory/dashboard.py"
        }
