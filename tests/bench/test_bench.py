"""Tests for the benchmark harness: systems registry and tables."""

import pytest

from repro.bench import (
    CC,
    ExperimentResult,
    QUICK,
    SystemSpec,
    WITHOUT_CC,
    cc_threads,
    fig2_microbenchmark,
    pipellm,
    pipellm_zero,
)
from repro.cc import CcMode, CudaContext
from repro.core import PipeLLMRuntime


class TestSystemSpecs:
    def test_without_cc(self):
        machine, runtime = WITHOUT_CC.build()
        assert not machine.cc_enabled
        assert isinstance(runtime, CudaContext)

    def test_cc_single_thread(self):
        machine, runtime = CC.build()
        assert machine.cc_enabled
        assert machine.engine.enc_threads == 1
        assert isinstance(runtime, CudaContext)

    def test_cc_threads(self):
        spec = cc_threads(4)
        machine, _ = spec.build()
        assert spec.name == "CC-4t"
        assert machine.engine.enc_threads == 4
        assert machine.engine.dec_threads == 4

    def test_pipellm(self):
        spec = pipellm(8, 2)
        machine, runtime = spec.build()
        assert isinstance(runtime, PipeLLMRuntime)
        assert machine.engine.enc_threads == 8
        assert runtime.config.sabotage is None

    def test_pipellm_zero(self):
        spec = pipellm_zero()
        _, runtime = spec.build()
        assert spec.name == "PipeLLM-0"
        assert runtime.config.sabotage == "reverse"

    def test_with_threads(self):
        spec = CC.with_threads(3, 5)
        machine, _ = spec.build()
        assert machine.engine.enc_threads == 3
        assert machine.engine.dec_threads == 5

    def test_builds_are_independent(self):
        a, _ = CC.build()
        b, _ = CC.build()
        assert a is not b


class TestExperimentResult:
    def make(self):
        return ExperimentResult("figX", "test", columns=["a", "b"])

    def test_add_and_find(self):
        result = self.make()
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        assert result.find(a=2)["b"] == "y"
        assert result.column("a") == [1, 2]

    def test_unknown_column_rejected(self):
        result = self.make()
        with pytest.raises(KeyError):
            result.add_row(c=1)
        with pytest.raises(KeyError):
            result.column("c")

    def test_find_missing_raises(self):
        with pytest.raises(KeyError):
            self.make().find(a=9)

    def test_select(self):
        result = self.make()
        result.add_row(a=1, b="x")
        result.add_row(a=1, b="y")
        assert len(result.select(a=1)) == 2

    def test_render_contains_data(self):
        result = self.make()
        result.add_row(a=1.5, b="hello")
        result.add_note("a note")
        text = result.render()
        assert "figX" in text
        assert "hello" in text
        assert "note: a note" in text


class TestFig2:
    """The microbenchmark is cheap enough to assert here in full."""

    @pytest.fixture(scope="class")
    def result(self):
        return fig2_microbenchmark(QUICK)

    def test_all_rows_present(self, result):
        assert len(result.rows) == 8

    def test_cc_latency_order_of_magnitude(self, result):
        ncc = result.find(size="32MB", system="w/o CC")
        cc = result.find(size="32MB", system="CC")
        # Paper: 1.43 µs vs 5252 µs.
        assert cc["latency_us"] / ncc["latency_us"] > 1000

    def test_cc_throughput_collapse(self, result):
        ncc = result.find(size="32MB", system="w/o CC")
        cc = result.find(size="32MB", system="CC")
        # Paper: 55.31 vs 5.83 GB/s — about an order of magnitude.
        assert 6 < ncc["throughput_gbps"] / cc["throughput_gbps"] < 14

    def test_values_match_paper_closely(self, result):
        assert result.find(size="1MB", system="CC")["throughput_gbps"] == pytest.approx(
            5.82, rel=0.1
        )
        assert result.find(size="32MB", system="w/o CC")["throughput_gbps"] == pytest.approx(
            55.31, rel=0.05
        )
