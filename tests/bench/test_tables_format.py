"""Rendering edge-case tests for ExperimentResult tables."""

from repro.bench import ExperimentResult
from repro.bench.tables import _format_cell


class TestCellFormatting:
    def test_zero(self):
        assert _format_cell(0.0) == "0"

    def test_small_floats_use_scientific(self):
        assert "e" in _format_cell(0.000123) or _format_cell(0.000123) == "0.000123"

    def test_large_floats_compact(self):
        assert _format_cell(123456.0) == "1.23e+05"

    def test_mid_floats_trimmed(self):
        assert _format_cell(1.500) == "1.5"
        assert _format_cell(2.0) == "2"

    def test_strings_passthrough(self):
        assert _format_cell("hello") == "hello"

    def test_ints_passthrough(self):
        assert _format_cell(42) == "42"


class TestRenderLayout:
    def test_columns_aligned(self):
        result = ExperimentResult("x", "t", columns=["long_column_name", "b"])
        result.add_row(long_column_name=1, b="yy")
        lines = result.render().splitlines()
        header, divider, row = lines[1], lines[2], lines[3]
        assert len(header) == len(divider) == len(row)

    def test_empty_table_renders(self):
        result = ExperimentResult("x", "t", columns=["a"])
        text = result.render()
        assert "x — t" in text
        assert "a" in text

    def test_missing_cell_blank(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        result.add_row(a=1)
        assert "1" in result.render()
