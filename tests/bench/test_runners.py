"""Experiment-runner helper tests (quick configurations)."""

import pytest

from repro.bench import CC, QUICK, FULL, Scale, WITHOUT_CC, pipellm, run_flexgen, run_peft, run_vllm
from repro.models import OPT_13B, OPT_30B, OPT_66B
from repro.workloads import ALPACA, SHAREGPT, SyntheticShape


class TestScale:
    def test_quick_smaller_than_full(self):
        assert QUICK.flexgen_requests < FULL.flexgen_requests
        assert QUICK.vllm_duration < FULL.vllm_duration
        assert QUICK.peft_steps < FULL.peft_steps

    def test_quick_shortens_outputs_full_does_not(self):
        assert QUICK.flexgen_output is not None
        assert FULL.flexgen_output is None

    def test_scale_resolution(self):
        from repro.bench.experiments import _scale

        assert _scale("quick") is QUICK
        assert _scale("full") is FULL
        assert _scale(QUICK) is QUICK
        with pytest.raises(KeyError):
            _scale("huge")


class TestRunners:
    def test_run_flexgen_returns_result_and_runtime(self):
        result, runtime = run_flexgen(
            WITHOUT_CC, OPT_66B, SyntheticShape(32, 2), batch_size=8, n_requests=8
        )
        assert result.generated_tokens == 16
        assert runtime.trace  # the runtime observed transfers

    def test_run_peft(self):
        result, _ = run_peft(WITHOUT_CC, OPT_13B, batch_size=4, resident_layers=38, steps=1)
        assert result.steps == 1
        assert result.offloaded_layers == 2

    def test_run_vllm(self):
        result, _ = run_vllm(WITHOUT_CC, OPT_30B, ALPACA, rate=2.0, parallel_n=2, duration=5.0)
        assert result.finished > 0

    def test_run_vllm_seed_determinism(self):
        a, _ = run_vllm(CC, OPT_30B, SHAREGPT, rate=1.0, parallel_n=2, duration=8.0, seed=5)
        b, _ = run_vllm(CC, OPT_30B, SHAREGPT, rate=1.0, parallel_n=2, duration=8.0, seed=5)
        assert a.mean_normalized_latency == b.mean_normalized_latency
        assert a.swap_in_count == b.swap_in_count

    def test_run_vllm_different_seed_differs(self):
        a, _ = run_vllm(WITHOUT_CC, OPT_30B, SHAREGPT, rate=1.0, parallel_n=2, duration=8.0, seed=5)
        b, _ = run_vllm(WITHOUT_CC, OPT_30B, SHAREGPT, rate=1.0, parallel_n=2, duration=8.0, seed=6)
        assert a.normalized_latencies != b.normalized_latencies

    def test_pipellm_runner_exposes_stats(self):
        _, runtime = run_flexgen(
            pipellm(4, 2), OPT_66B, SyntheticShape(32, 2), batch_size=8, n_requests=8
        )
        assert "success_rate" in runtime.stats()
