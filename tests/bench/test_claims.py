"""Claims-registry tests (the reproduction scorecard)."""

import pytest

from repro.bench import CLAIMS, verify_claims
from repro.bench.claims import ClaimOutcome, render_outcomes


class TestRegistry:
    def test_every_eval_figure_claimed(self):
        experiments = {claim.experiment.__name__ for claim in CLAIMS}
        for name in (
            "fig2_microbenchmark",
            "fig3a_flexgen_overhead",
            "fig3c_peft_overhead",
            "fig7_model_offloading",
            "fig8_kv_swapping",
            "fig9_threading",
            "fig10_success_rate",
        ):
            assert name in experiments

    def test_ids_unique(self):
        ids = [claim.claim_id for claim in CLAIMS]
        assert len(ids) == len(set(ids))

    def test_statements_cite_paper_values(self):
        for claim in CLAIMS:
            assert claim.paper_value


class TestVerification:
    @pytest.fixture(scope="class")
    def outcomes(self):
        # The cheapest claims subset: run the fig2-based claim only by
        # filtering; the full scorecard runs as `python -m repro claims`
        # and in the benchmark suite.
        from repro.bench.claims import CLAIMS as ALL

        cheap = [c for c in ALL if c.experiment.__name__ == "fig2_microbenchmark"]
        result = cheap[0].experiment("quick")
        return [ClaimOutcome(c, *c.check(result)) for c in cheap]

    def test_cheap_claims_pass(self, outcomes):
        assert all(outcome.passed for outcome in outcomes)

    def test_render(self, outcomes):
        text = render_outcomes(outcomes)
        assert "PASS" in text
        assert "paper:" in text and "measured:" in text
        assert f"{len(outcomes)}/{len(outcomes)} claims reproduced" in text
