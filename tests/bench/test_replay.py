"""Deterministic replay: same ``--seed`` ⇒ bit-identical results.

Every claim number, benchmark row, cluster summary, and telemetry
event stream must be a pure function of (code, seed). These tests run
the same CLI invocation twice in one process and demand byte-identical
output — any hidden dependence on wall-clock, dict iteration order, or
cross-run RNG leakage shows up as a diff.
"""

import io

import pytest

from repro import fastpath
from repro.cli import main
from repro.sim import set_default_seed


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(autouse=True)
def _reset_seed():
    # ``--seed`` and ``--crypto-backend`` override process-wide state;
    # never leak either into other tests.
    previous_profile = fastpath.config()
    yield
    set_default_seed(None)
    fastpath.configure(previous_profile)


def twice(*argv):
    code1, text1 = run_cli(*argv)
    code2, text2 = run_cli(*argv)
    assert code1 == code2 == 0
    return text1, text2


class TestReplay:
    def test_run_bench_replays_identically(self):
        first, second = twice("run", "fig2", "--json", "--seed", "11")
        assert first == second

    def test_cluster_replays_identically(self):
        first, second = twice(
            "cluster", "--replicas", "2", "--rate", "20", "--duration", "0.5",
            "--tenants", "2", "--seed", "5", "--json",
        )
        assert first == second

    def test_fault_campaign_replays_identically(self):
        first, second = twice("faults", "--seed", "7", "--json")
        assert first == second

    @pytest.mark.slow
    def test_parallel_campaign_replays_identically(self):
        first, second = twice("parallel", "--seed", "13", "--json")
        assert first == second

    def test_serve_replays_identically(self):
        first, second = twice(
            "serve", "--rate", "12", "--duration", "2", "--seed", "21", "--json",
        )
        assert first == second

    def test_disagg_replays_identically(self):
        first, second = twice(
            "disagg", "--rate", "6", "--duration", "1.5", "--seed", "9",
            "--json",
        )
        assert first == second

    def test_disagg_hw_pack_replays_identically(self):
        first, second = twice(
            "disagg", "--hw-pack", "b300-cc", "--rate", "4", "--duration",
            "1.5", "--seed", "9", "--json",
        )
        assert first == second

    def test_serve_seed_changes_the_run(self):
        _, first = run_cli("serve", "--rate", "12", "--duration", "2",
                           "--seed", "21", "--json")
        set_default_seed(None)
        _, second = run_cli("serve", "--rate", "12", "--duration", "2",
                            "--seed", "22", "--json")
        assert first != second

    def test_telemetry_event_stream_replays_identically(self):
        # The full Chrome trace — every event, timestamp, and lane —
        # must replay, not just the aggregate rows.
        first, second = twice("trace", "fig2", "--format", "chrome",
                              "--seed", "3")
        assert first == second
        assert '"traceEvents"' in first

    def test_different_seeds_actually_differ(self):
        # Guard against the trivial pass where the seed is ignored.
        _, first = run_cli("cluster", "--replicas", "2", "--rate", "20",
                           "--duration", "0.5", "--seed", "5", "--json")
        set_default_seed(None)
        _, second = run_cli("cluster", "--replicas", "2", "--rate", "20",
                            "--duration", "0.5", "--seed", "6", "--json")
        assert first != second


class TestCrossProfileReplay:
    """Fast path ≡ reference path, observed end to end through the CLI.

    The fast-path profile swaps the AES-GCM backend, the event queue,
    the DH exponent width, and payload tiering all at once; every
    simulated quantity any subcommand prints must nevertheless be
    byte-identical to the pure reference path at the same seed.
    """

    def across_profiles(self, *argv):
        set_default_seed(None)
        code1, ref = run_cli(*argv, "--crypto-backend", "reference")
        set_default_seed(None)
        code2, fast = run_cli(*argv, "--crypto-backend", "fast")
        assert code1 == code2 == 0
        return ref, fast

    def test_run_fig2(self):
        ref, fast = self.across_profiles("run", "fig2", "--json", "--seed", "11")
        assert ref == fast

    def test_cluster(self):
        ref, fast = self.across_profiles(
            "cluster", "--replicas", "2", "--rate", "20", "--duration", "0.5",
            "--tenants", "2", "--seed", "5", "--json",
        )
        assert ref == fast

    def test_faults(self):
        ref, fast = self.across_profiles("faults", "--seed", "7", "--json")
        assert ref == fast

    @pytest.mark.slow
    def test_parallel(self):
        ref, fast = self.across_profiles("parallel", "--seed", "13", "--json")
        assert ref == fast

    def test_serve(self):
        ref, fast = self.across_profiles(
            "serve", "--rate", "12", "--duration", "2", "--seed", "21", "--json",
        )
        assert ref == fast

    def test_disagg(self):
        ref, fast = self.across_profiles(
            "disagg", "--rate", "6", "--duration", "1.5", "--seed", "9",
            "--json",
        )
        assert ref == fast

    def test_trace_event_stream(self):
        # Not just aggregates: every telemetry event and timestamp.
        ref, fast = self.across_profiles(
            "trace", "fig2", "--format", "chrome", "--seed", "3"
        )
        assert ref == fast
