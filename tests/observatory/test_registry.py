"""Metrics registry: families, exposition, snapshot, collectors."""

import pytest

from repro.bench import CC, pipellm, run_flexgen
from repro.models import OPT_66B
from repro.observatory import MetricsRegistry, bind_machine
from repro.telemetry import recording
from repro.workloads import SyntheticShape


class TestFamilies:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "served requests")
        requests.inc()
        requests.inc(2)
        assert requests.value == 3
        depth = registry.gauge("queue_depth")
        depth.set(7)
        assert depth.value == 7

    def test_register_is_idempotent_per_kind(self):
        registry = MetricsRegistry()
        first = registry.counter("hits")
        assert registry.counter("hits") is first
        with pytest.raises(ValueError):
            registry.gauge("hits")

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("bytes_total", labels=("direction",))
        family.labels("h2d").inc(10)
        family.labels(direction="d2h").inc(4)
        assert family.labels("h2d").value == 10
        assert family.labels("d2h").value == 4
        with pytest.raises(ValueError):
            family.labels("h2d", "extra")

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        latency = registry.histogram(
            "latency_seconds", buckets=(0.001, 0.01, 0.1)
        )
        for value in (0.0005, 0.005, 0.05, 0.5):
            latency.observe(value)
        child = latency.labels()
        assert child.counts == [1, 2, 3]
        assert child.total == 4
        assert child.sum == pytest.approx(0.5555)
        with pytest.raises(ValueError):
            registry.histogram("no_buckets")


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("hits", "cache hits").inc(3)
        family = registry.gauge("util", labels=("resource",))
        family.labels("pcie").set(0.5)
        registry.histogram("lat", buckets=(0.1,)).observe(0.05)
        text = registry.exposition(horizon=1.0)
        assert "# HELP repro_hits cache hits" in text
        assert "# TYPE repro_hits counter" in text
        assert "repro_hits 3" in text
        assert 'repro_util{resource="pcie"} 0.5' in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 0.05" in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_label_value_escaping_conformance(self):
        """Prometheus exposition format: backslash, double-quote and
        line-feed are escaped in label values — and nothing else."""
        registry = MetricsRegistry(namespace="repro")
        family = registry.gauge("util", labels=("resource",))
        family.labels('back\\slash "quoted"\nnewline').set(1.0)
        family.labels("plain{}=,").set(2.0)
        text = registry.exposition(horizon=1.0)
        assert (
            'repro_util{resource="back\\\\slash \\"quoted\\"\\nnewline"} 1'
            in text
        )
        # Braces, equals and commas are legal inside quoted values and
        # must pass through untouched.
        assert 'repro_util{resource="plain{}=,"} 2' in text
        # The escaped exposition stays one-line-per-sample parseable.
        for line in text.splitlines():
            assert "\n" not in line

    def test_snapshot_mirrors_exposition(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("lat", buckets=(0.1,)).observe(0.05)
        snap = registry.snapshot(horizon=1.0)
        assert snap["hits"]["kind"] == "counter"
        assert snap["hits"]["series"] == [{"labels": {}, "value": 3.0}]
        assert snap["lat"]["series"][0]["count"] == 1
        assert snap["lat"]["series"][0]["buckets"] == {"0.1": 1}


class TestCollectors:
    def test_collector_runs_at_scrape_with_horizon(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sim_time")
        seen = []

        def collector(horizon):
            seen.append(horizon)
            gauge.set(horizon)

        registry.register_collector(collector)
        snap = registry.snapshot(horizon=2.5)
        assert seen == [2.5]
        assert snap["sim_time"]["series"][0]["value"] == 2.5
        registry.exposition(horizon=3.0)
        assert seen == [2.5, 3.0]


class TestBindMachine:
    def run_bound(self, system):
        with recording():
            result, runtime = run_flexgen(
                system, OPT_66B, SyntheticShape(32, 4), batch_size=8, n_requests=8
            )
            machine = runtime.machine
            registry = MetricsRegistry()
            bind_machine(registry, machine, runtime=runtime, label=system.name)
            return registry.snapshot(machine.sim.now)

    def test_cc_machine_exposes_stack_metrics(self):
        snap = self.run_bound(CC)
        resources = {
            s["labels"]["resource"]: s["value"]
            for s in snap["resource_utilization"]["series"]
        }
        assert set(resources) >= {"pcie", "crypto-engine", "gpu"}
        assert all(0.0 <= v <= 1.0 for v in resources.values())
        assert resources["crypto-engine"] > 0.0
        quantiles = {
            (s["labels"]["direction"], s["labels"]["quantile"])
            for s in snap["wire_latency_seconds"]["series"]
        }
        assert ("h2d", "p50") in quantiles and ("h2d", "p99") in quantiles

    def test_pipellm_machine_exposes_speculation(self):
        snap = self.run_bound(pipellm(8, 2))
        hit = snap["speculation_hit_rate"]["series"]
        assert hit and 0.0 < hit[0]["value"] <= 1.0
        mode = snap["pipeline_mode"]["series"]
        assert mode and mode[0]["value"] == 0.0  # SPECULATIVE
        counters = {
            s["labels"]["name"] for s in snap["machine_counter"]["series"]
        }
        assert any(name.startswith("runtime.") for name in counters)

    def test_exposition_is_valid_over_real_machine(self):
        with recording():
            result, runtime = run_flexgen(
                pipellm(8, 2), OPT_66B, SyntheticShape(32, 4),
                batch_size=4, n_requests=4,
            )
            machine = runtime.machine
            registry = MetricsRegistry()
            bind_machine(registry, machine, runtime=runtime)
            text = registry.exposition(machine.sim.now)
        for line in text.strip().splitlines():
            assert line.startswith("#") or " " in line
        assert "repro_resource_utilization" in text


class TestBindGatewayServing:
    def run_bound(self, rate=10.0, duration=3.0):
        from repro.cluster import Cluster
        from repro.core import ClusterConfig
        from repro.observatory import bind_gateway
        from repro.serve import LoadSpec, ServeFrontend, generate_load

        cluster = Cluster(ClusterConfig(
            replicas=2, system="pipellm", policy="least-loaded",
            reserve_bytes=55 << 30, max_outstanding=12,
        ))
        frontend = ServeFrontend(cluster)
        requests = generate_load(LoadSpec(rate=rate, duration=duration))
        result = frontend.run(requests, duration=duration)
        registry = MetricsRegistry()
        bind_gateway(registry, cluster.gateway)
        return cluster, result, registry

    def test_ttft_tpot_quantile_gauges(self):
        cluster, result, registry = self.run_bound()
        snap = registry.snapshot(cluster.sim.now)
        series = {
            (s["labels"]["metric"], s["labels"]["quantile"]): s["value"]
            for s in snap["serve_latency_seconds"]["series"]
        }
        for metric in ("ttft", "tpot"):
            assert series[(metric, "p50")] <= series[(metric, "p95")]
            assert series[(metric, "p95")] <= series[(metric, "p99")]
            assert series[(metric, "p50")] > 0.0
        ttft = cluster.gateway.metrics.latencies["serve.ttft_s"]
        assert series[("ttft", "p99")] == pytest.approx(ttft.p(99))

    def test_histogram_observes_each_sample_once(self):
        cluster, result, registry = self.run_bound()
        first = registry.snapshot(cluster.sim.now)
        second = registry.snapshot(cluster.sim.now)
        ttft = cluster.gateway.metrics.latencies["serve.ttft_s"]

        def hist_count(snap):
            for s in snap["serve_latency_hist_seconds"]["series"]:
                if s["labels"]["metric"] == "ttft":
                    return s["count"]
            raise AssertionError("no ttft histogram series")

        # Cumulative children + seen-offsets: re-scraping without new
        # samples must not double-count.
        assert hist_count(first) == ttft.count == result.completed
        assert hist_count(second) == ttft.count

    def test_serve_counters_mirrored(self):
        cluster, result, registry = self.run_bound()
        snap = registry.snapshot(cluster.sim.now)
        counters = {
            s["labels"]["name"]: s["value"]
            for s in snap["gateway_counter"]["series"]
        }
        assert counters["serve.completed"] == result.completed
