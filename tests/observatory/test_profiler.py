"""Critical-path profiler: exact attribution, invariant, verdicts."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import CC, pipellm, run_flexgen
from repro.models import OPT_66B
from repro.observatory import (
    STAGES,
    attribute_request,
    profile_hub,
    render_profile,
    render_waterfall,
)
from repro.observatory.profiler import CRYPTO_STAGES, TRANSFER_STAGES
from repro.telemetry import TelemetryHub, recording
from repro.telemetry.hub import RequestRecord
from repro.workloads import SyntheticShape


def make_record(request_id=0, size=1024, submit=0.0, complete=math.nan, **kw):
    record = RequestRecord(
        request_id=request_id, direction="h2d", addr=0, size=size,
        submit_time=submit,
    )
    record.complete_time = complete
    for key, value in kw.items():
        setattr(record, key, value)
    return record


def synthetic_hub(records):
    hub = TelemetryHub(enabled=True)
    hub.requests.extend(records)
    return hub


class TestSyntheticFixtures:
    def test_encryption_bound_fixture_exact(self):
        # 8 ms AES wait, 2 ms on the wire: 80/20 split, crypto regime.
        record = make_record(size=4096, complete=10e-3, outcome="miss")
        record.mark_stage("encrypt", 0.0, 8e-3)
        record.mark_stage("pcie", 8e-3, 10e-3)
        attribution = attribute_request(record)
        assert attribution.stages == {"encrypt": 8e-3, "pcie": 2e-3}
        assert attribution.total == 10e-3
        assert attribution.share("encrypt") == 0.8
        assert attribution.share("pcie") == 0.2

        profile = profile_hub(synthetic_hub([record]))
        assert profile.verdict == "encryption-bound"
        assert profile.totals == {"encrypt": 8e-3, "pcie": 2e-3}
        assert profile.bucket_share(CRYPTO_STAGES) == 0.8

    def test_pcie_bound_fixture_exact(self):
        # Staged hit: only transfer stages block, AES is off-path.
        record = make_record(size=4096, complete=5e-3, outcome="hit_now")
        record.mark_stage("wire-order", 0.0, 0.5e-3)
        record.mark_stage("control", 0.5e-3, 1e-3)
        record.mark_stage("pcie", 1e-3, 5e-3)
        profile = profile_hub(synthetic_hub([record]))
        assert profile.verdict == "pcie-bound"
        assert profile.bucket_share(TRANSFER_STAGES) == 1.0
        assert profile.bucket_share(CRYPTO_STAGES) == 0.0
        assert profile.totals["pcie"] == 4e-3

    def test_residual_lands_in_other(self):
        record = make_record(complete=10e-3)
        record.mark_stage("pcie", 0.0, 6e-3)
        attribution = attribute_request(record)
        assert attribution.stages["other"] == 10e-3 - 6e-3
        assert sum(attribution.stages.values()) == attribution.total

    def test_incomplete_request_skipped(self):
        assert attribute_request(make_record()) is None
        profile = profile_hub(synthetic_hub([make_record()]))
        assert profile.requests == []
        assert profile.verdict == "idle"

    def test_compute_bound_needs_busy_gpu(self):
        record = make_record(complete=1e-3)
        record.mark_stage("encrypt", 0.0, 0.6e-3)
        record.mark_stage("pcie", 0.6e-3, 1e-3)
        hub = synthetic_hub([record])
        hub.tracer.enabled = True
        hub.tracer.record("gpu", "matmul", 0.0, 0.9)
        profile = profile_hub(hub, horizon=1.0)
        assert profile.gpu_busy_fraction == 0.9
        assert profile.verdict == "compute-bound"

    def test_speculation_account(self):
        hit = make_record(request_id=0, size=1000, complete=1e-3, outcome="hit_now")
        hit.mark_stage("pcie", 0.0, 1e-3)
        miss = make_record(request_id=1, size=1000, submit=1e-3, complete=3e-3,
                           outcome="miss")
        miss.mark_stage("encrypt", 1e-3, 2e-3)
        miss.mark_stage("pcie", 2e-3, 3e-3)
        profile = profile_hub(synthetic_hub([hit, miss]), enc_bandwidth=1e6)
        assert profile.speculation.hits == 1
        assert profile.speculation.misses == 1
        assert profile.speculation.hit_rate == 0.5
        assert profile.speculation.saved_s == 1000 / 1e6


class TestAttributionInvariant:
    @given(
        intervals=st.lists(
            st.tuples(
                st.sampled_from([s for s in STAGES if s != "other"]),
                st.floats(min_value=1e-9, max_value=0.5),
            ),
            min_size=0,
            max_size=12,
        ),
        slack=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=200, deadline=None)
    def test_stages_sum_to_wire_latency(self, intervals, slack):
        """sum(attribution.stages) == e2e latency for any tiling."""
        record = make_record()
        now = 0.0
        for stage, duration in intervals:
            record.mark_stage(stage, now, now + duration)
            now += duration
        record.complete_time = now + slack
        attribution = attribute_request(record)
        assert math.isclose(
            sum(attribution.stages.values()), attribution.total,
            rel_tol=1e-9, abs_tol=1e-15,
        )
        assert all(v >= 0.0 for v in attribution.stages.values())


class TestRealRuns:
    def run_profiled(self, system):
        with recording():
            result, runtime = run_flexgen(
                system, OPT_66B, SyntheticShape(32, 4), batch_size=8, n_requests=8
            )
            machine = runtime.machine
            profile = profile_hub(
                machine.telemetry,
                enc_bandwidth=machine.params.enc_bandwidth_per_thread,
            )
        return profile

    def assert_invariant(self, profile):
        assert profile.requests
        for request in profile.requests:
            assert math.isclose(
                sum(request.stages.values()), request.total,
                rel_tol=1e-9, abs_tol=1e-15,
            )

    def test_cc_baseline_is_encryption_bound(self):
        profile = self.run_profiled(CC)
        self.assert_invariant(profile)
        assert profile.verdict == "encryption-bound"
        assert profile.bucket_share(CRYPTO_STAGES) > 0.5

    def test_pipellm_is_not_encryption_bound(self):
        profile = self.run_profiled(pipellm(8, 2))
        self.assert_invariant(profile)
        assert profile.verdict != "encryption-bound"
        assert profile.speculation.hit_rate > 0.0
        assert profile.speculation.saved_s > 0.0

    def test_renderers_cover_required_content(self):
        profile = self.run_profiled(CC)
        report = render_profile(profile)
        assert "verdict: encryption-bound" in report
        assert "encrypt" in report and "pcie" in report
        waterfall = render_waterfall(profile.requests[0])
        assert "= wire latency" in waterfall
        assert f"request {profile.requests[0].request_id}" in waterfall
