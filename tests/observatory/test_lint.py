"""Wall-clock hygiene: no real time inside the simulated stack."""

from pathlib import Path

import repro
from repro.observatory import ALLOWED_WALL_CLOCK_FILES, wall_clock_call_sites

SRC = Path(repro.__file__).parent


class TestRepoIsClean:
    def test_no_wall_clock_outside_cli_and_dashboard(self):
        """The satellite assertion: simulated code never reads real time."""
        assert wall_clock_call_sites(SRC) == []

    def test_allowlist_is_exactly_cli_and_dashboard(self):
        assert set(ALLOWED_WALL_CLOCK_FILES) == {
            "cli.py", "observatory/dashboard.py"
        }

    def test_serve_modules_are_scanned_and_clean(self):
        """The serving front end is simulated code: zero wall-clock reads."""
        serve = SRC / "serve"
        names = {p.name for p in serve.glob("*.py")}
        assert {"admission.py", "api.py", "frontend.py",
                "load.py", "pipeline.py"} <= names
        assert wall_clock_call_sites(serve, allowed=()) == []

    def test_allowed_files_do_use_wall_clock(self):
        """If the allowlist went stale the lint would silently weaken."""
        sites = wall_clock_call_sites(SRC, allowed=())
        flagged = {site.split(":")[0] for site in sites}
        # time.sleep pacing in the dashboard is not a *read*, so only
        # the CLI must show up — but nothing outside the allowlist may.
        assert "cli.py" in flagged
        assert flagged <= set(ALLOWED_WALL_CLOCK_FILES)


class TestDetection:
    def write(self, tmp_path, name, body):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return path

    def test_flags_time_time(self, tmp_path):
        self.write(tmp_path, "mod.py", "import time\nstart = time.time()\n")
        sites = wall_clock_call_sites(tmp_path)
        assert sites == ["mod.py:2 time.time()"]

    def test_flags_bare_monotonic_and_perf_counter(self, tmp_path):
        self.write(
            tmp_path, "mod.py",
            "from time import monotonic, perf_counter\n"
            "a = monotonic()\nb = perf_counter()\n",
        )
        sites = wall_clock_call_sites(tmp_path)
        assert [s.split(" ")[1] for s in sites] == ["monotonic()", "perf_counter()"]

    def test_ignores_simulated_time_attributes(self, tmp_path):
        self.write(
            tmp_path, "mod.py",
            "now = sim.now\nelapsed = machine.sim.now - start\n"
            "t = self.time\n",
        )
        assert wall_clock_call_sites(tmp_path) == []

    def test_respects_allowlist(self, tmp_path):
        self.write(tmp_path, "cli.py", "import time\nstart = time.time()\n")
        assert wall_clock_call_sites(tmp_path) == []
        assert wall_clock_call_sites(tmp_path, allowed=()) != []
