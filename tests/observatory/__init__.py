"""Performance-observatory tests."""
